// Geo-sharded fleet inference service on the simulated clock.
//
// N cars emit observations with exponential interarrival times; a
// consistent-hash ShardRouter assigns each car to one of `shards` shard
// workers, each pinned to a testbed:: topology site and running its own
// DynamicBatcher behind its own fault::CircuitBreaker. Each worker forms
// batches (flush on cap or age-out) and executes each batch as ONE
// predict_batch call through the GEMM backbone, priced by the
// gpu::perf_model batched latency. Placement semantics mirror
// core::Continuum:
//
//   OnDevice  every batch runs on the edge device spec
//   Cloud     batches ship to the shard's site; responses pay RTT+jitter;
//             the shard's breaker guards the site — denied or
//             probe-failed batches fail over to the edge spec
//   Hybrid    per-batch cost gate: the cheaper of edge vs RTT+cloud wins
//             (cloud still behind the breaker)
//
// Failure tolerance: a HealthMonitor heartbeats every shard's site on the
// virtual clock (wire `site_probe` to a chaos-partitioned net::Network).
// A shard whose site stays unreachable past the health timeout is
// declared dead: its queued requests are rerouted to surviving shards
// (bounded churn — consistent hashing moves only the dead shard's cars)
// and its future arrivals route around it; when the site heals, exactly
// those cars return. A batch already executing when its shard dies
// completes (its responses are modeled as already in flight).
//
// Elasticity: when options.autoscaler.enabled, an AutoScaler control loop
// samples the fleet every tick and calls resize() against its target
// bands. resize() grows by readmitting retired slots / appending fresh
// workers (each levelled with the incumbent model — compiled plan
// included — before it can see traffic, and admitted dead when its site
// probes dark) and shrinks by draining the top slots' queues into the
// survivors before retiring them from the ring. Slots are never
// destroyed, so in-flight event-queue callbacks stay valid; a retired
// slot idles until the next grow readmits it. Every applied resize is a
// ScaleEvent in the report, and an always-on structural invariant guards
// the consistent-hash churn contract: a grow only moves cars TO the new
// shards, a shrink only moves the retired shards' cars.
//
// Admission control: when a car's shard already holds queue_budget
// requests — or no shard is alive at all — the arrival is shed and the
// car's own edge tier answers it per-sample (graceful degradation, never
// an error). Everything runs on one util::EventQueue with per-car and
// per-shard Rng splits, so a seed pins the arrival schedule, the batch
// boundaries, the failover AND autoscale timelines, and the whole
// ServeReport bit-for-bit — including runs with chaos-injected site
// partitions or load spikes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/continuum.hpp"
#include "serve/autoscaler.hpp"
#include "serve/batcher.hpp"
#include "serve/health.hpp"
#include "serve/model_registry.hpp"
#include "serve/replication.hpp"
#include "serve/report.hpp"
#include "serve/shard_router.hpp"
#include "util/event_queue.hpp"
#include "util/rng.hpp"

namespace autolearn::serve {

/// One offered-load window: the fleet's arrival rate is multiplied by
/// `factor` at `at` and restored to 1 at `at + duration` (duration 0 =
/// the spike lasts to the end of the run). The chaos engine's
/// FaultKind::LoadSpike drives the same knob via attach_load.
struct LoadSpike {
  double at = 0.0;
  double duration = 0.0;
  double factor = 4.0;
};

struct FleetOptions {
  std::size_t cars = 8;
  double duration_s = 10.0;            // arrival window (virtual seconds)
  double mean_interarrival_s = 0.1;    // per car, exponential
  BatcherConfig batcher;
  core::Placement placement = core::Placement::Cloud;
  /// Device specs, RTT/jitter, flops_scale, breaker config, cloud_probe,
  /// and the tracer/metrics sinks all come from here — the serving tier
  /// reuses the continuum's cost model wholesale.
  core::ContinuumOptions continuum;
  /// Admission control, per shard: arrivals finding this many requests
  /// pending at their shard are shed to per-sample edge execution.
  std::size_t queue_budget = 64;
  /// Observation geometry for synthetic fleet frames; must match the
  /// served model's input (ml::ModelConfig defaults).
  std::size_t img_w = 32;
  std::size_t img_h = 24;
  std::uint64_t seed = 1;
  /// Graph-compile served models for the batcher's max_batch cap
  /// (registry.set_plan_batch): steady-state inference runs the static
  /// arena plan with zero per-batch heap allocation. Off = interpreted
  /// per-layer path (the pre-plan behavior, used by the bench A/B).
  bool compile_plans = true;

  // --- sharding ------------------------------------------------------------
  /// Shard workers the fleet STARTS with (1 = the pre-sharding
  /// single-worker service, bit-for-bit). The autoscaler may move the
  /// active count within its own [min_shards, max_shards] clamp.
  std::size_t shards = 1;
  /// testbed:: topology site each shard is pinned to, cycled when shorter
  /// than `shards`. Empty: testbed::shard_sites() (the two principal
  /// Chameleon sites, alternating). Scaled-in shards keep cycling the
  /// same list.
  std::vector<std::string> sites;
  /// Virtual ring points per shard (consistent-hash smoothing).
  std::size_t ring_replicas = 64;
  /// Heartbeat cadence and death timeout for the health monitor. The
  /// monitor only runs when `site_probe` is set — with no probe there is
  /// nothing that can fail.
  HealthOptions health;
  /// Reachability of a shard's pinned site at virtual time `now`; wire to
  /// a chaos-partitioned network, e.g.
  ///   opt.site_probe = [&net](const std::string& site, double) {
  ///     return net.route(testbed::kCampusGateway, site).has_value();
  ///   };
  /// Drives BOTH the per-batch breaker probe and the health monitor's
  /// heartbeats. Unset: fall back to continuum.cloud_probe (all sites
  /// share one cloud), else always reachable.
  std::function<bool(const std::string& site, double now)> site_probe;

  // --- autoscaling ---------------------------------------------------------
  /// Control-loop bands and hysteresis; disabled by default, so existing
  /// fixed-shard runs are untouched.
  AutoScalerOptions autoscaler;
  /// Deterministic offered-load windows (e.g. a 4x rush hour) scheduled
  /// at run() time — the stimulus the autoscale experiments drive.
  std::vector<LoadSpike> load_spikes;

  /// Appends every violation (prefix "fleet." / nested struct prefixes)
  /// without throwing.
  void check(ConfigIssues& out) const;
  /// Throw-on-first shim over check().
  void validate() const;
};

class FleetService {
 public:
  /// Single-registry mode: every shard worker reads `registry` (shared,
  /// unreplicated — canary rollouts need the replicated constructor).
  /// The service borrows the queue so tests can co-schedule hot-swaps or
  /// chaos on the same clock. Scaled-in shards read the same registry.
  FleetService(util::EventQueue& queue, ModelRegistry& registry,
               FleetOptions options);

  /// Replicated mode: shard i reads `registry.shard(i)`; the registry
  /// must have at least options.shards replicas (extras idle until a
  /// scale-up claims them). This is the path canary rollouts and
  /// rollbacks run through; a scale-up past the replica count calls
  /// registry.add_replica(), so the newcomer serves the incumbent model
  /// (compiled plan included) before it admits traffic.
  FleetService(util::EventQueue& queue, ReplicatedRegistry& registry,
               FleetOptions options);

  /// Runs the full scenario: arrivals for duration_s, then drains the
  /// queue (partial batches force-flush). Call once.
  ServeReport run();

  /// Takes the fleet to `target` active shards (grow or shrink) at the
  /// current virtual time; records a ScaleEvent and enforces the bounded-
  /// churn invariant. Returns false (and does nothing) when the target
  /// equals the active count or the run is already draining. This is the
  /// AutoScaler's Resizer; tests may call it directly on the queue.
  bool resize(std::size_t target, const std::string& reason);

  /// Offered-load multiplier applied to every car's arrival rate from now
  /// on (mean interarrival divided by `factor`). The chaos engine's
  /// LoadSpike faults call this via ChaosEngine::attach_load.
  void set_load_factor(double factor);
  double load_factor() const { return load_factor_; }

  /// Shard 0's breaker (single-shard compatibility accessor).
  const fault::CircuitBreaker& breaker() const { return breaker(0); }
  const fault::CircuitBreaker& breaker(std::size_t shard) const;
  const ShardRouter& router() const { return router_; }
  /// Null when no site_probe was configured.
  const HealthMonitor* health() const { return health_.get(); }
  /// Null when options.autoscaler.enabled is false.
  const AutoScaler* autoscaler() const { return scaler_.get(); }
  /// Admitted (non-retired) workers right now.
  std::size_t active_shards() const { return active_shards_; }

 private:
  struct Shard {
    std::string site;
    ModelRegistry* registry = nullptr;
    std::unique_ptr<DynamicBatcher> batcher;
    std::unique_ptr<fault::CircuitBreaker> breaker;
    util::Rng jitter_rng{0};
    bool busy = false;
    bool deadline_armed = false;
    bool awaiting_recovery = false;
    bool retired = false;  // scaled out; slot idles until readmitted
    std::size_t denied_batches = 0;
    std::size_t cloud_requests = 0;
    double recovery_latency_s = 0.0;
  };

  void init(std::vector<ModelRegistry*> registries);
  void wire_breaker(std::size_t shard);
  void schedule_arrival(std::size_t car);
  void on_arrival(std::size_t car);
  void shed_request(ServeRequest request, std::size_t shard);
  void try_dispatch(std::size_t shard);
  void arm_deadline(std::size_t shard);
  void dispatch_batch(std::size_t shard);
  Tier choose_tier(std::size_t shard, double now, std::size_t batch,
                   std::uint64_t flops, gpu::Precision precision);
  bool site_reachable(std::size_t shard, double now) const;
  void on_shard_down(std::size_t shard);
  void on_shard_up(std::size_t shard);
  void deliver(ServeRecord record);
  void set_queue_gauge(std::size_t shard);
  ml::Sample make_sample(util::Rng& rng,
                         const ml::DrivingModel& model) const;
  std::uint64_t scaled_flops(const ml::DrivingModel& model) const;
  /// One autoscaler tick's fleet snapshot; drains the sampling window.
  ScaleSignals sample_signals(double now);
  /// Admits shard slot `s` (readmit or fresh), levelling its model and
  /// probing its site before it can attract traffic.
  void admit_shard(std::size_t s, double now);
  /// Routes a drained request to its owning live shard or sheds it.
  void reroute(ServeRequest request, std::vector<bool>& touched);

  util::EventQueue& queue_;
  FleetOptions options_;
  ShardRouter router_;
  std::vector<Shard> shards_;
  std::unique_ptr<HealthMonitor> health_;
  std::unique_ptr<AutoScaler> scaler_;
  ReplicatedRegistry* replicated_ = nullptr;  // null in single-registry mode
  ModelRegistry* base_registry_ = nullptr;    // single-registry mode source
  std::vector<std::string> sites_;            // resolved site cycle
  util::Rng rng_;
  std::vector<util::Rng> car_rng_;

  std::size_t active_shards_ = 0;
  double load_factor_ = 1.0;
  // Autoscaler sampling window, drained every tick.
  std::vector<double> window_queued_;
  std::size_t window_sheds_ = 0;
  std::size_t window_arrivals_ = 0;

  std::uint64_t next_id_ = 1;
  bool draining_ = false;
  bool ran_ = false;

  ServeReport report_;
};

}  // namespace autolearn::serve
