// Fleet inference service on the simulated clock.
//
// N cars emit observations with exponential interarrival times into a
// shared service queue; a dynamic batcher forms batches (flush on cap or
// age-out) and a placement-aware worker executes each batch as ONE
// predict_batch call through the GEMM backbone, priced by the
// gpu::perf_model batched latency. Placement semantics mirror
// core::Continuum:
//
//   OnDevice  every batch runs on the edge device spec
//   Cloud     batches ship to the cloud device; responses pay RTT+jitter;
//             the circuit breaker guards the cloud — denied or
//             probe-failed batches fail over to the edge spec
//   Hybrid    per-batch cost gate: the cheaper of edge vs RTT+cloud wins
//             (cloud still behind the breaker)
//
// Admission control: when the queue already holds queue_budget requests a
// new arrival is shed — the car's own edge tier answers it per-sample
// (graceful degradation, never an error). Everything runs on one
// util::EventQueue with per-car Rng splits, so a seed pins the arrival
// schedule, the batch boundaries, and the whole ServeReport bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "core/continuum.hpp"
#include "serve/batcher.hpp"
#include "serve/model_registry.hpp"
#include "serve/report.hpp"
#include "util/event_queue.hpp"
#include "util/rng.hpp"

namespace autolearn::serve {

struct FleetOptions {
  std::size_t cars = 8;
  double duration_s = 10.0;            // arrival window (virtual seconds)
  double mean_interarrival_s = 0.1;    // per car, exponential
  BatcherConfig batcher;
  core::Placement placement = core::Placement::Cloud;
  /// Device specs, RTT/jitter, flops_scale, breaker config, cloud_probe,
  /// and the tracer/metrics sinks all come from here — the serving tier
  /// reuses the continuum's cost model wholesale.
  core::ContinuumOptions continuum;
  /// Admission control: arrivals beyond this many pending requests are
  /// shed to per-sample edge execution.
  std::size_t queue_budget = 64;
  /// Observation geometry for synthetic fleet frames; must match the
  /// served model's input (ml::ModelConfig defaults).
  std::size_t img_w = 32;
  std::size_t img_h = 24;
  std::uint64_t seed = 1;

  void validate() const;
};

class FleetService {
 public:
  /// The service borrows the queue (so tests can co-schedule hot-swaps or
  /// chaos on the same clock) and reads the registry at every dispatch.
  FleetService(util::EventQueue& queue, ModelRegistry& registry,
               FleetOptions options);

  /// Runs the full scenario: arrivals for duration_s, then drains the
  /// queue (partial batches force-flush). Call once.
  ServeReport run();

  const fault::CircuitBreaker& breaker() const { return breaker_; }

 private:
  void schedule_arrival(std::size_t car);
  void on_arrival(std::size_t car);
  void shed_request(ServeRequest request);
  void try_dispatch();
  void arm_deadline();
  void dispatch_batch();
  Tier choose_tier(double now, std::size_t batch, std::uint64_t flops);
  void deliver(ServeRecord record);
  void set_queue_gauge();
  ml::Sample make_sample(util::Rng& rng,
                         const ml::DrivingModel& model) const;
  std::uint64_t scaled_flops(const ml::DrivingModel& model) const;

  util::EventQueue& queue_;
  ModelRegistry& registry_;
  FleetOptions options_;
  DynamicBatcher batcher_;
  fault::CircuitBreaker breaker_;
  util::Rng rng_;
  std::vector<util::Rng> car_rng_;
  util::Rng jitter_rng_{0};

  std::uint64_t next_id_ = 1;
  bool worker_busy_ = false;
  bool deadline_armed_ = false;
  bool draining_ = false;
  bool ran_ = false;
  bool awaiting_recovery_ = false;
  std::size_t denied_batches_ = 0;
  std::size_t cloud_requests_ = 0;
  double recovery_latency_s_ = 0.0;

  ServeReport report_;
};

}  // namespace autolearn::serve
