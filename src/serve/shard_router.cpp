#include "serve/shard_router.hpp"

#include <algorithm>
#include <stdexcept>

namespace autolearn::serve {

void ShardRouterConfig::check(ConfigIssues& out) const {
  if (shards == 0) {
    out.emplace_back("router.shards", "must be >= 1");
  }
  if (replicas == 0) {
    out.emplace_back("router.replicas", "must be >= 1");
  }
}

void ShardRouterConfig::validate() const {
  ConfigIssues issues;
  check(issues);
  if (!issues.empty()) throw issues.front();
}

std::uint64_t hash_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double expected_remap_fraction(std::size_t from, std::size_t to) {
  if (from == to || from == 0 || to == 0) return 0.0;
  const std::size_t hi = std::max(from, to);
  const std::size_t delta = hi - std::min(from, to);
  return static_cast<double>(delta) / static_cast<double>(hi);
}

std::vector<ShardRouter::Point> ShardRouter::points_for(
    const ShardRouterConfig& config, std::size_t shard) {
  std::vector<Point> points;
  points.reserve(config.replicas);
  const std::uint64_t shard_seed = hash_mix(config.salt ^ (shard + 1));
  for (std::size_t r = 0; r < config.replicas; ++r) {
    points.push_back({hash_mix(shard_seed ^ (r + 1)), shard});
  }
  return points;
}

ShardRouter::ShardRouter(ShardRouterConfig config) : config_(config) {
  config_.validate();
  ring_.reserve(config_.shards * config_.replicas);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    const std::vector<Point> points = points_for(config_, s);
    ring_.insert(ring_.end(), points.begin(), points.end());
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.shard < b.shard;  // collision tie-break, still deterministic
  });
  alive_.assign(config_.shards, true);
  alive_count_ = config_.shards;
}

bool ShardRouter::alive(std::size_t shard) const {
  if (shard >= config_.shards) {
    throw std::out_of_range("ShardRouter::alive: bad shard index");
  }
  return alive_[shard];
}

void ShardRouter::set_alive(std::size_t shard, bool alive) {
  if (shard >= config_.shards) {
    throw std::out_of_range("ShardRouter::set_alive: bad shard index");
  }
  if (alive_[shard] == alive) return;
  alive_[shard] = alive;
  alive_count_ += alive ? 1 : std::size_t(-1);
}

void ShardRouter::resize(std::size_t shards) {
  if (shards == 0) {
    throw ConfigError("router.shards", "resize target must be >= 1");
  }
  if (shards == config_.shards) return;
  const auto less = [](const Point& a, const Point& b) {
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.shard < b.shard;
  };
  if (shards > config_.shards) {
    // Grow: merge the new shards' points into the sorted ring. The
    // incumbents' points are untouched, so only keys whose first live
    // point is now one of the inserts change owner.
    for (std::size_t s = config_.shards; s < shards; ++s) {
      std::vector<Point> points = points_for(config_, s);
      std::sort(points.begin(), points.end(), less);
      std::vector<Point> merged;
      merged.reserve(ring_.size() + points.size());
      std::merge(ring_.begin(), ring_.end(), points.begin(), points.end(),
                 std::back_inserter(merged), less);
      ring_ = std::move(merged);
      alive_.push_back(true);
      ++alive_count_;
    }
  } else {
    // Shrink: retire the top indices wholesale. A retired shard's points
    // leave the ring whether it was alive or dead, so a dead shard can
    // never be "scaled back in" by a later grow — regrowth readmits the
    // index with the same points but a fresh (live) state.
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [shards](const Point& p) {
                                 return p.shard >= shards;
                               }),
                ring_.end());
    for (std::size_t s = shards; s < config_.shards; ++s) {
      if (alive_[s]) --alive_count_;
    }
    alive_.resize(shards);
  }
  config_.shards = shards;
}

std::size_t ShardRouter::shard_for(std::uint64_t key) const {
  if (alive_count_ == 0) {
    throw std::logic_error("ShardRouter::shard_for: no live shard");
  }
  const std::uint64_t h = hash_mix(key ^ config_.salt);
  // First ring point at or after h, then walk clockwise to a live shard.
  std::size_t idx =
      static_cast<std::size_t>(
          std::lower_bound(ring_.begin(), ring_.end(), h,
                           [](const Point& p, std::uint64_t v) {
                             return p.hash < v;
                           }) -
          ring_.begin());
  for (std::size_t step = 0; step < ring_.size(); ++step) {
    const Point& p = ring_[(idx + step) % ring_.size()];
    if (alive_[p.shard]) return p.shard;
  }
  throw std::logic_error("ShardRouter::shard_for: ring walk found no shard");
}

std::vector<std::size_t> ShardRouter::mapping(std::uint64_t n) const {
  std::vector<std::size_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t key = 0; key < n; ++key) {
    out.push_back(shard_for(key));
  }
  return out;
}

}  // namespace autolearn::serve
