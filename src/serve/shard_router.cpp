#include "serve/shard_router.hpp"

#include <algorithm>
#include <stdexcept>

#include "serve/errors.hpp"

namespace autolearn::serve {

void ShardRouterConfig::validate() const {
  if (shards == 0) {
    throw ConfigError("router.shards", "must be >= 1");
  }
  if (replicas == 0) {
    throw ConfigError("router.replicas", "must be >= 1");
  }
}

std::uint64_t hash_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

ShardRouter::ShardRouter(ShardRouterConfig config) : config_(config) {
  config_.validate();
  ring_.reserve(config_.shards * config_.replicas);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    const std::uint64_t shard_seed = hash_mix(config_.salt ^ (s + 1));
    for (std::size_t r = 0; r < config_.replicas; ++r) {
      ring_.push_back({hash_mix(shard_seed ^ (r + 1)), s});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.shard < b.shard;  // collision tie-break, still deterministic
  });
  alive_.assign(config_.shards, true);
  alive_count_ = config_.shards;
}

bool ShardRouter::alive(std::size_t shard) const {
  if (shard >= config_.shards) {
    throw std::out_of_range("ShardRouter::alive: bad shard index");
  }
  return alive_[shard];
}

void ShardRouter::set_alive(std::size_t shard, bool alive) {
  if (shard >= config_.shards) {
    throw std::out_of_range("ShardRouter::set_alive: bad shard index");
  }
  if (alive_[shard] == alive) return;
  alive_[shard] = alive;
  alive_count_ += alive ? 1 : std::size_t(-1);
}

std::size_t ShardRouter::shard_for(std::uint64_t key) const {
  if (alive_count_ == 0) {
    throw std::logic_error("ShardRouter::shard_for: no live shard");
  }
  const std::uint64_t h = hash_mix(key ^ config_.salt);
  // First ring point at or after h, then walk clockwise to a live shard.
  std::size_t idx =
      static_cast<std::size_t>(
          std::lower_bound(ring_.begin(), ring_.end(), h,
                           [](const Point& p, std::uint64_t v) {
                             return p.hash < v;
                           }) -
          ring_.begin());
  for (std::size_t step = 0; step < ring_.size(); ++step) {
    const Point& p = ring_[(idx + step) % ring_.size()];
    if (alive_[p.shard]) return p.shard;
  }
  throw std::logic_error("ShardRouter::shard_for: ring walk found no shard");
}

std::vector<std::size_t> ShardRouter::mapping(std::uint64_t n) const {
  std::vector<std::size_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t key = 0; key < n; ++key) {
    out.push_back(shard_for(key));
  }
  return out;
}

}  // namespace autolearn::serve
