// Consistent-hash router assigning cars to shard workers.
//
// The fleet's cars are spread over N shard workers with a classic
// consistent-hash ring: each shard contributes `replicas` virtual points
// hashed onto a 64-bit ring, and a car maps to the first live point at or
// after its own hash (wrapping). The payoff is bounded rebalance churn:
// when a shard dies, ONLY the cars that mapped to its points move (to the
// next live point clockwise); every other car keeps its shard, and when
// the shard heals exactly those cars move back. The hash is a fixed
// SplitMix64 finalizer — not std::hash — so the mapping is part of the
// seed contract and identical across platforms and runs.
//
// resize(n) is the elastic half of the same contract: a shard's ring
// points are a pure function of (salt, shard index, replica index), so
// growing N -> N+1 only inserts the new shard's points (stealing roughly
// a 1/(N+1) key fraction from the incumbents) and shrinking removes
// exactly the retired shard's points (only its keys spill clockwise).
// Shrinking then growing back to N restores the original assignment
// bit-for-bit — the autoscaler's churn tests pin all three properties.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/errors.hpp"

namespace autolearn::serve {

struct ShardRouterConfig {
  std::size_t shards = 1;
  /// Virtual points per shard. More points smooth the car distribution
  /// (at 64 the max/min shard load ratio stays under ~1.5 for fleets of
  /// hundreds of cars); fewer make the ring cheaper to search.
  std::size_t replicas = 64;
  /// Salt folded into every hash; lets two routers over the same shard
  /// count draw independent rings.
  std::uint64_t salt = 0x9e3779b97f4a7c15ULL;

  /// Appends every violation (prefix "router.") without throwing.
  void check(ConfigIssues& out) const;
  /// Throw-on-first shim over check().
  void validate() const;
};

/// Deterministic 64-bit mix (SplitMix64 finalizer). Exposed because the
/// router's tests and the ring's documentation both reference it.
std::uint64_t hash_mix(std::uint64_t x);

/// Expected key fraction remapped by a resize between `from` and `to`
/// shards (all live): |to - from| / max(from, to) — the consistent-hash
/// "ships in the ring" bound the churn tests assert against (with slack
/// for ring-position variance at finite replica counts).
double expected_remap_fraction(std::size_t from, std::size_t to);

class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterConfig config = {});

  std::size_t shards() const { return config_.shards; }
  std::size_t alive_count() const { return alive_count_; }
  bool any_alive() const { return alive_count_ > 0; }
  bool alive(std::size_t shard) const;

  /// Marks a shard dead (its keys spill to the next live ring points) or
  /// live again (exactly those keys return). Idempotent.
  void set_alive(std::size_t shard, bool alive);

  /// Grows or shrinks the ring to `shards` workers while keys keep
  /// routing. Grow appends shards [old, n) — each enters live and steals
  /// only the keys whose hashes land on its points. Shrink retires the
  /// top indices [n, old) — ring points removed entirely (dead or alive),
  /// only their keys spill clockwise. Deterministic: the same (salt,
  /// shard, replica) triples always hash to the same ring positions, so
  /// resize(n) after resize(m) depends only on the final n.
  void resize(std::size_t shards);

  /// Owning live shard for a key (car id). Throws std::logic_error when
  /// no shard is alive — callers gate on any_alive() and shed instead.
  std::size_t shard_for(std::uint64_t key) const;

  /// Current key -> shard mapping for keys [0, n). Churn between two
  /// mappings is what the failover and autoscaler tests bound.
  std::vector<std::size_t> mapping(std::uint64_t n) const;

  const ShardRouterConfig& config() const { return config_; }

 private:
  struct Point {
    std::uint64_t hash;
    std::size_t shard;
  };

  static std::vector<Point> points_for(const ShardRouterConfig& config,
                                       std::size_t shard);

  ShardRouterConfig config_;
  std::vector<Point> ring_;  // sorted by hash
  std::vector<bool> alive_;
  std::size_t alive_count_ = 0;
};

}  // namespace autolearn::serve
