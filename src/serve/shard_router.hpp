// Consistent-hash router assigning cars to shard workers.
//
// The fleet's cars are spread over N shard workers with a classic
// consistent-hash ring: each shard contributes `replicas` virtual points
// hashed onto a 64-bit ring, and a car maps to the first live point at or
// after its own hash (wrapping). The payoff is bounded rebalance churn:
// when a shard dies, ONLY the cars that mapped to its points move (to the
// next live point clockwise); every other car keeps its shard, and when
// the shard heals exactly those cars move back. The hash is a fixed
// SplitMix64 finalizer — not std::hash — so the mapping is part of the
// seed contract and identical across platforms and runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace autolearn::serve {

struct ShardRouterConfig {
  std::size_t shards = 1;
  /// Virtual points per shard. More points smooth the car distribution
  /// (at 64 the max/min shard load ratio stays under ~1.5 for fleets of
  /// hundreds of cars); fewer make the ring cheaper to search.
  std::size_t replicas = 64;
  /// Salt folded into every hash; lets two routers over the same shard
  /// count draw independent rings.
  std::uint64_t salt = 0x9e3779b97f4a7c15ULL;

  void validate() const;
};

/// Deterministic 64-bit mix (SplitMix64 finalizer). Exposed because the
/// router's tests and the ring's documentation both reference it.
std::uint64_t hash_mix(std::uint64_t x);

class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterConfig config = {});

  std::size_t shards() const { return config_.shards; }
  std::size_t alive_count() const { return alive_count_; }
  bool any_alive() const { return alive_count_ > 0; }
  bool alive(std::size_t shard) const;

  /// Marks a shard dead (its keys spill to the next live ring points) or
  /// live again (exactly those keys return). Idempotent.
  void set_alive(std::size_t shard, bool alive);

  /// Owning live shard for a key (car id). Throws std::logic_error when
  /// no shard is alive — callers gate on any_alive() and shed instead.
  std::size_t shard_for(std::uint64_t key) const;

  /// Current key -> shard mapping for keys [0, n). Churn between two
  /// mappings is what the failover tests bound.
  std::vector<std::size_t> mapping(std::uint64_t n) const;

  const ShardRouterConfig& config() const { return config_; }

 private:
  struct Point {
    std::uint64_t hash;
    std::size_t shard;
  };

  ShardRouterConfig config_;
  std::vector<Point> ring_;  // sorted by hash
  std::vector<bool> alive_;
  std::size_t alive_count_ = 0;
};

}  // namespace autolearn::serve
