#include "testbed/deployment.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace autolearn::testbed {

const char* to_string(DeployState s) {
  switch (s) {
    case DeployState::Queued: return "queued";
    case DeployState::Provisioning: return "provisioning";
    case DeployState::Configuring: return "configuring";
    case DeployState::Active: return "active";
    case DeployState::Failed: return "failed";
  }
  return "?";
}

ImageSpec ImageSpec::autolearn_trainer() {
  ImageSpec img;
  img.name = "ubuntu20.04-cuda";
  img.provision_s = 540.0;
  img.packages = {{"cudnn", 120.0},
                  {"tensorflow", 180.0},
                  {"donkeycar", 90.0}};
  return img;
}

ImageSpec ImageSpec::jupyter_server() {
  ImageSpec img;
  img.name = "basic-jupyter-server";
  img.provision_s = 420.0;
  img.packages = {{"jupyter", 60.0}};
  return img;
}

DeploymentService::DeploymentService(LeaseManager& leases,
                                     util::EventQueue& queue)
    : leases_(leases), queue_(queue) {}

std::uint64_t DeploymentService::deploy(
    std::uint64_t lease_id, ImageSpec image,
    std::function<void(const Deployment&)> on_ready) {
  const Lease& lease = leases_.lease(lease_id);
  if (lease.status == LeaseStatus::Cancelled ||
      lease.status == LeaseStatus::Ended) {
    throw std::logic_error("deploy: lease is not usable");
  }
  if (lease.node_ids.empty()) throw std::logic_error("deploy: empty lease");

  const std::uint64_t id = next_id_++;
  Deployment d;
  d.id = id;
  d.lease_id = lease_id;
  d.node_id = lease.node_ids.front();
  d.image = image;
  d.started_at = queue_.now();
  deployments_[id] = d;

  double config_time = 0;
  for (const auto& [pkg, secs] : image.packages) config_time += secs;

  deployments_[id].state = DeployState::Provisioning;
  queue_.schedule_in(image.provision_s, [this, id] {
    deployments_.at(id).state = DeployState::Configuring;
  });
  queue_.schedule_in(
      image.provision_s + config_time,
      [this, id, on_ready = std::move(on_ready)] {
        Deployment& dep = deployments_.at(id);
        dep.state = DeployState::Active;
        dep.ready_at = queue_.now();
        AUTOLEARN_LOG(Info, "deploy")
            << dep.image.name << " active on " << dep.node_id;
        if (on_ready) on_ready(dep);
      });
  return id;
}

const Deployment& DeploymentService::deployment(std::uint64_t id) const {
  const auto it = deployments_.find(id);
  if (it == deployments_.end()) {
    throw std::invalid_argument("deploy: unknown id");
  }
  return it->second;
}

std::size_t DeploymentService::active_count() const {
  std::size_t n = 0;
  for (const auto& [id, d] : deployments_) {
    n += d.state == DeployState::Active;
  }
  return n;
}

}  // namespace autolearn::testbed
