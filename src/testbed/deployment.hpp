// Bare-metal image deployment (§3.3: a notebook "reserves Chameleon
// hardware, deploys Ubuntu 20.04 CUDA image with accelerator support, and
// then installs and configures all the required dependencies").
//
// Deployments run against an active lease: provisioning (flash + boot)
// takes simulated minutes on bare metal, then dependency installation
// takes additional time per configured package group. State transitions
// ride the shared event queue.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "testbed/lease.hpp"
#include "util/event_queue.hpp"

namespace autolearn::testbed {

enum class DeployState { Queued, Provisioning, Configuring, Active, Failed };

const char* to_string(DeployState s);

struct ImageSpec {
  std::string name;           // e.g. "ubuntu20.04-cuda"
  double provision_s = 540.0; // bare-metal flash+boot (~9 simulated min)
  /// Dependency groups installed after boot (donkey, tensorflow, cudnn...)
  std::vector<std::pair<std::string, double>> packages;

  /// The AutoLearn training appliance of §3.3.
  static ImageSpec autolearn_trainer();
  /// Chameleon's Basic Jupyter Server Appliance (§3.5).
  static ImageSpec jupyter_server();
};

struct Deployment {
  std::uint64_t id = 0;
  std::uint64_t lease_id = 0;
  std::string node_id;
  ImageSpec image;
  DeployState state = DeployState::Queued;
  double started_at = 0.0;
  double ready_at = 0.0;
};

class DeploymentService {
 public:
  DeploymentService(LeaseManager& leases, util::EventQueue& queue);

  /// Deploys the image on the first node of the lease. The lease must not
  /// be cancelled/ended. on_ready fires when the node reaches Active.
  std::uint64_t deploy(std::uint64_t lease_id, ImageSpec image,
                       std::function<void(const Deployment&)> on_ready = {});

  const Deployment& deployment(std::uint64_t id) const;
  std::size_t active_count() const;

 private:
  LeaseManager& leases_;
  util::EventQueue& queue_;
  std::map<std::uint64_t, Deployment> deployments_;
  std::uint64_t next_id_ = 1;
};

}  // namespace autolearn::testbed
