#include "testbed/identity.hpp"

#include <stdexcept>

namespace autolearn::testbed {

void IdentityService::add_user(const std::string& username,
                               const std::string& institution) {
  if (username.empty()) throw std::invalid_argument("identity: empty user");
  users_.insert_or_assign(username, User{username, institution});
}

bool IdentityService::has_user(const std::string& username) const {
  return users_.count(username) > 0;
}

Project& IdentityService::create_project(const std::string& id,
                                         const std::string& title,
                                         ProjectDomain domain,
                                         const std::string& pi) {
  if (!has_user(pi)) throw std::invalid_argument("identity: unknown PI " + pi);
  if (projects_.count(id)) {
    throw std::invalid_argument("identity: duplicate project " + id);
  }
  Project p;
  p.id = id;
  p.title = title;
  p.domain = domain;
  p.pi = pi;
  p.members.insert(pi);
  return projects_.emplace(id, std::move(p)).first->second;
}

void IdentityService::add_member(const std::string& project_id,
                                 const std::string& username) {
  if (!has_user(username)) {
    throw std::invalid_argument("identity: unknown user " + username);
  }
  auto it = projects_.find(project_id);
  if (it == projects_.end()) {
    throw std::invalid_argument("identity: unknown project " + project_id);
  }
  it->second.members.insert(username);
}

const Project& IdentityService::project(const std::string& project_id) const {
  const auto it = projects_.find(project_id);
  if (it == projects_.end()) {
    throw std::invalid_argument("identity: unknown project " + project_id);
  }
  return it->second;
}

bool IdentityService::is_member(const std::string& project_id,
                                const std::string& username) const {
  const auto it = projects_.find(project_id);
  return it != projects_.end() && it->second.active &&
         it->second.members.count(username) > 0;
}

void IdentityService::deactivate_project(const std::string& project_id) {
  auto it = projects_.find(project_id);
  if (it == projects_.end()) {
    throw std::invalid_argument("identity: unknown project " + project_id);
  }
  it->second.active = false;
}

Session IdentityService::login(const std::string& username) {
  if (!has_user(username)) {
    throw std::invalid_argument("identity: unknown user " + username);
  }
  Session s;
  s.username = username;
  s.token = "tok-" + std::to_string(next_token_++) + "-" + username;
  tokens_[s.token] = username;
  return s;
}

std::optional<std::string> IdentityService::user_for_token(
    const std::string& token) const {
  const auto it = tokens_.find(token);
  if (it == tokens_.end()) return std::nullopt;
  return it->second;
}

}  // namespace autolearn::testbed
