// Federated identity and projects (§3.2: "users can log into the testbed
// with their institutional credentials via federated identity login";
// "to gain access all educational users need to do is request a project in
// computer science education").
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace autolearn::testbed {

enum class ProjectDomain { Education, Research };

struct User {
  std::string username;
  std::string institution;
};

struct Project {
  std::string id;           // e.g. "CHI-edu-231042"
  std::string title;
  ProjectDomain domain = ProjectDomain::Education;
  std::string pi;           // username of the PI
  std::set<std::string> members;
  bool active = true;
};

/// A logged-in session token binding a user to the testbed.
struct Session {
  std::string token;
  std::string username;
};

class IdentityService {
 public:
  /// Registers a user (idempotent on username).
  void add_user(const std::string& username, const std::string& institution);
  bool has_user(const std::string& username) const;

  /// Creates a project; the PI becomes a member. Throws on duplicate id.
  Project& create_project(const std::string& id, const std::string& title,
                          ProjectDomain domain, const std::string& pi);
  /// Adds a member; both must exist.
  void add_member(const std::string& project_id, const std::string& username);
  const Project& project(const std::string& project_id) const;
  bool is_member(const std::string& project_id,
                 const std::string& username) const;
  void deactivate_project(const std::string& project_id);

  /// Federated login: the user must exist; returns a session token.
  Session login(const std::string& username) ;
  /// Validates a token.
  std::optional<std::string> user_for_token(const std::string& token) const;

  std::size_t user_count() const { return users_.size(); }
  std::size_t project_count() const { return projects_.size(); }

 private:
  std::map<std::string, User> users_;
  std::map<std::string, Project> projects_;
  std::map<std::string, std::string> tokens_;  // token -> username
  std::size_t next_token_ = 1;
};

}  // namespace autolearn::testbed
