#include "testbed/inventory.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace autolearn::testbed {

void Inventory::add_nodes(const std::string& site, const NodeType& type,
                          std::size_t count) {
  // Validates the GPU name against the performance-model catalogue.
  gpu::device(type.gpu);
  const std::size_t existing = count_of_type(type.name);
  for (std::size_t i = 0; i < count; ++i) {
    Node n;
    n.site = site;
    n.type = type;
    n.id = site + "/" + type.name + "-" + std::to_string(existing + i);
    nodes_.push_back(std::move(n));
  }
}

Inventory Inventory::chameleon() {
  Inventory inv;
  const NodeType rtx{"gpu_rtx6000", "RTX6000", 1, gpu::Interconnect::None};
  const NodeType v100{"gpu_v100", "V100", 4, gpu::Interconnect::PCIe};
  const NodeType v100nv{"gpu_v100_nvlink", "v100NVLINK", 4,
                        gpu::Interconnect::NVLink};
  const NodeType p100{"gpu_p100", "P100", 4, gpu::Interconnect::PCIe};
  const NodeType a100{"gpu_a100", "A100", 4, gpu::Interconnect::NVLink};
  const NodeType m40{"gpu_m40", "M40", 1, gpu::Interconnect::None};
  const NodeType k80{"gpu_k80", "K80", 1, gpu::Interconnect::None};
  const NodeType mi100{"gpu_mi100", "MI100", 1, gpu::Interconnect::None};
  // 40 single-RTX6000 nodes split across the two principal sites.
  inv.add_nodes("CHI@UC", rtx, 20);
  inv.add_nodes("CHI@TACC", rtx, 20);
  // Sets of 4 nodes each with 4x V100 / P100 / A100.
  inv.add_nodes("CHI@UC", v100, 4);
  inv.add_nodes("CHI@UC", v100nv, 4);
  inv.add_nodes("CHI@TACC", p100, 4);
  inv.add_nodes("CHI@TACC", a100, 4);
  // Smaller numbers of other architectures.
  inv.add_nodes("CHI@UC", m40, 2);
  inv.add_nodes("CHI@TACC", k80, 2);
  inv.add_nodes("CHI@TACC", mi100, 2);
  return inv;
}

std::vector<const Node*> Inventory::nodes_of_type(
    const std::string& type_name) const {
  std::vector<const Node*> out;
  for (const Node& n : nodes_) {
    if (n.type.name == type_name) out.push_back(&n);
  }
  return out;
}

std::vector<std::string> Inventory::sites() const {
  std::set<std::string> s;
  for (const Node& n : nodes_) s.insert(n.site);
  return {s.begin(), s.end()};
}

std::size_t Inventory::count_of_type(const std::string& type_name) const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(), [&](const Node& n) {
        return n.type.name == type_name;
      }));
}

const Node& Inventory::node(const std::string& id) const {
  for (const Node& n : nodes_) {
    if (n.id == id) return n;
  }
  throw std::invalid_argument("inventory: unknown node " + id);
}

}  // namespace autolearn::testbed
