// Hardware inventory (§3.2): "a large investment in accelerators ranging
// from 40 nodes with a single Nvidia RTX6000 GPU for general use, to sets
// of 4 nodes each with 4x Nvidia V100, P100, or A100 Datacenter GPUs and
// InfiniBand interconnects ... Smaller numbers of nodes with other
// architectures (Nvidia M40, K80, AMD MI100)".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gpu/perf_model.hpp"

namespace autolearn::testbed {

struct NodeType {
  std::string name;        // e.g. "gpu_rtx6000"
  std::string gpu;         // device name in gpu::device()
  int gpu_count = 1;
  gpu::Interconnect interconnect = gpu::Interconnect::None;
};

struct Node {
  std::string id;          // e.g. "chi-uc-rtx6000-07"
  std::string site;        // "CHI@UC" or "CHI@TACC"
  NodeType type;
};

class Inventory {
 public:
  /// Builds the paper's accelerator fleet across the two principal sites.
  static Inventory chameleon();

  /// Empty inventory for custom setups.
  Inventory() = default;

  void add_nodes(const std::string& site, const NodeType& type,
                 std::size_t count);

  const std::vector<Node>& nodes() const { return nodes_; }
  std::vector<const Node*> nodes_of_type(const std::string& type_name) const;
  std::vector<std::string> sites() const;
  std::size_t count_of_type(const std::string& type_name) const;
  const Node& node(const std::string& id) const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace autolearn::testbed
