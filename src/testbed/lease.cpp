#include "testbed/lease.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace autolearn::testbed {

const char* to_string(LeaseStatus s) {
  switch (s) {
    case LeaseStatus::Pending: return "pending";
    case LeaseStatus::Active: return "active";
    case LeaseStatus::Ended: return "ended";
    case LeaseStatus::Cancelled: return "cancelled";
    case LeaseStatus::Preempted: return "preempted";
  }
  return "?";
}

LeaseManager::LeaseManager(const Inventory& inventory)
    : inventory_(inventory) {}

bool LeaseManager::node_free(const std::string& node_id, double start,
                             double end) const {
  for (const auto& [id, lease] : leases_) {
    if (lease.status == LeaseStatus::Cancelled ||
        lease.status == LeaseStatus::Ended ||
        lease.status == LeaseStatus::Preempted) {
      continue;
    }
    if (lease.end <= start || lease.start >= end) continue;  // no overlap
    if (std::find(lease.node_ids.begin(), lease.node_ids.end(), node_id) !=
        lease.node_ids.end()) {
      return false;
    }
  }
  return true;
}

std::size_t LeaseManager::available(const std::string& node_type, double start,
                                    double end) const {
  std::size_t free = 0;
  for (const Node* n : inventory_.nodes_of_type(node_type)) {
    free += node_free(n->id, start, end);
  }
  return free;
}

std::optional<std::uint64_t> LeaseManager::request(const LeaseRequest& req) {
  if (req.count == 0 || req.duration <= 0) {
    throw std::invalid_argument("lease: bad request");
  }
  const double end = req.start + req.duration;
  std::vector<std::string> chosen;
  for (const Node* n : inventory_.nodes_of_type(req.node_type)) {
    if (chosen.size() == req.count) break;
    if (node_free(n->id, req.start, end)) chosen.push_back(n->id);
  }
  if (chosen.size() < req.count) {
    ++rejected_;
    AUTOLEARN_LOG(Info, "lease")
        << "conflict: " << req.count << "x " << req.node_type << " at "
        << req.start << " unavailable for " << req.project_id;
    return std::nullopt;
  }
  Lease lease;
  lease.id = next_id_++;
  lease.project_id = req.project_id;
  lease.node_type = req.node_type;
  lease.node_ids = std::move(chosen);
  lease.start = req.start;
  lease.end = end;
  leases_[lease.id] = lease;
  return lease.id;
}

std::optional<std::uint64_t> LeaseManager::request_on_demand(
    const std::string& project_id, const std::string& node_type,
    std::size_t count, double now, double duration) {
  LeaseRequest req;
  req.project_id = project_id;
  req.node_type = node_type;
  req.count = count;
  req.start = now;
  req.duration = duration;
  return request(req);
}

const Lease& LeaseManager::lease(std::uint64_t id) const {
  const auto it = leases_.find(id);
  if (it == leases_.end()) throw std::invalid_argument("lease: unknown id");
  return it->second;
}

void LeaseManager::cancel(std::uint64_t id) {
  auto it = leases_.find(id);
  if (it == leases_.end()) throw std::invalid_argument("lease: unknown id");
  if (it->second.status == LeaseStatus::Ended) {
    throw std::logic_error("lease: cannot cancel an ended lease");
  }
  it->second.status = LeaseStatus::Cancelled;
}

void LeaseManager::preempt(std::uint64_t id, double now) {
  auto it = leases_.find(id);
  if (it == leases_.end()) throw std::invalid_argument("lease: unknown id");
  Lease& lease = it->second;
  if (lease.status == LeaseStatus::Ended ||
      lease.status == LeaseStatus::Cancelled ||
      lease.status == LeaseStatus::Preempted) {
    throw std::logic_error("lease: cannot preempt a finished lease");
  }
  // Trim the reservation to what was actually held so utilization stays
  // truthful; a never-started lease held zero node-seconds.
  lease.end = std::max(lease.start, std::min(lease.end, now));
  lease.status = LeaseStatus::Preempted;
  ++preempted_;
  AUTOLEARN_LOG(Warn, "lease")
      << "lease " << id << " (" << lease.project_id << ", "
      << lease.node_ids.size() << "x " << lease.node_type
      << ") preempted at " << now;
}

std::vector<std::uint64_t> LeaseManager::live_leases(
    const std::string& node_type, double now) const {
  std::vector<std::uint64_t> out;
  for (const auto& [id, lease] : leases_) {
    if (lease.node_type != node_type) continue;
    if (lease.status == LeaseStatus::Ended ||
        lease.status == LeaseStatus::Cancelled ||
        lease.status == LeaseStatus::Preempted) {
      continue;
    }
    if (now < lease.end) out.push_back(id);
  }
  return out;
}

void LeaseManager::tick(double now) {
  for (auto& [id, lease] : leases_) {
    if (lease.status == LeaseStatus::Cancelled ||
        lease.status == LeaseStatus::Preempted) {
      continue;
    }
    if (now >= lease.end) {
      lease.status = LeaseStatus::Ended;
    } else if (now >= lease.start) {
      lease.status = LeaseStatus::Active;
    }
  }
}

double LeaseManager::utilization(const std::string& node_type, double t0,
                                 double t1) const {
  if (t1 <= t0) throw std::invalid_argument("lease: bad window");
  const auto nodes = inventory_.nodes_of_type(node_type);
  if (nodes.empty()) return 0.0;
  double reserved = 0;
  for (const auto& [id, lease] : leases_) {
    if (lease.status == LeaseStatus::Cancelled) continue;
    if (lease.node_type != node_type) continue;
    const double lo = std::max(t0, lease.start);
    const double hi = std::min(t1, lease.end);
    if (hi > lo) {
      reserved += (hi - lo) * static_cast<double>(lease.node_ids.size());
    }
  }
  return reserved /
         ((t1 - t0) * static_cast<double>(nodes.size()));
}

}  // namespace autolearn::testbed
