// Resource leasing (§3.2: "All hardware is available either on-demand or
// via advance reservations so that users can reserve required resources
// ahead of time, for example, to manage resource scarcity or to guarantee
// resource availability at a specific time slot for a class or a
// demonstration").
//
// A lease binds concrete nodes to a project over a [start, end) interval.
// The manager keeps a per-node calendar and refuses overlapping
// assignments; advance reservations therefore guarantee the nodes are
// there when the class starts.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "testbed/inventory.hpp"

namespace autolearn::testbed {

enum class LeaseStatus { Pending, Active, Ended, Cancelled, Preempted };

const char* to_string(LeaseStatus s);

struct Lease {
  std::uint64_t id = 0;
  std::string project_id;
  std::string node_type;
  std::vector<std::string> node_ids;
  double start = 0.0;  // virtual time, seconds
  double end = 0.0;
  LeaseStatus status = LeaseStatus::Pending;
};

struct LeaseRequest {
  std::string project_id;
  std::string node_type;
  std::size_t count = 1;
  double start = 0.0;   // request start (>= now for advance reservations)
  double duration = 3600.0;
};

class LeaseManager {
 public:
  explicit LeaseManager(const Inventory& inventory);

  /// Tries to reserve `count` nodes of the type over the interval. Returns
  /// nullopt when not enough capacity is free (the conflict case).
  std::optional<std::uint64_t> request(const LeaseRequest& req);

  /// On-demand convenience: starts at `now`.
  std::optional<std::uint64_t> request_on_demand(const std::string& project_id,
                                                 const std::string& node_type,
                                                 std::size_t count, double now,
                                                 double duration);

  const Lease& lease(std::uint64_t id) const;
  void cancel(std::uint64_t id);

  /// Fault injection: the provider reclaims the nodes early (a Chameleon
  /// lease ending mid-session). The lease's end is trimmed to `now`, the
  /// nodes free up immediately, and the status becomes Preempted. Pending
  /// leases lose their reservation outright.
  void preempt(std::uint64_t id, double now);

  /// Leases of the node type live (Pending or Active) at time `now` —
  /// the chaos engine's preemption targets.
  std::vector<std::uint64_t> live_leases(const std::string& node_type,
                                         double now) const;

  std::size_t preempted_count() const { return preempted_; }

  /// Advances lease states for virtual time t (Pending->Active->Ended).
  void tick(double now);

  /// Nodes of the type free over the whole interval.
  std::size_t available(const std::string& node_type, double start,
                        double end) const;

  /// Fraction of node-seconds of this type reserved within [t0, t1).
  double utilization(const std::string& node_type, double t0, double t1) const;

  std::size_t total_leases() const { return leases_.size(); }
  std::size_t rejected_requests() const { return rejected_; }

 private:
  bool node_free(const std::string& node_id, double start, double end) const;

  const Inventory& inventory_;
  std::map<std::uint64_t, Lease> leases_;
  std::uint64_t next_id_ = 1;
  std::size_t rejected_ = 0;
  std::size_t preempted_ = 0;
};

}  // namespace autolearn::testbed
