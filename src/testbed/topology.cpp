#include "testbed/topology.hpp"

#include <stdexcept>

namespace autolearn::testbed {

net::Network chameleon_network(const TopologyOptions& options) {
  if (options.cars.empty()) {
    throw std::invalid_argument("topology: need at least one car");
  }
  net::Network n;
  n.add_host(kCampusGateway);
  n.add_host(kSiteUC);
  n.add_host(kSiteTACC);
  // Campus reaches the nearest site over Internet2; the sites talk to each
  // other over the FABRIC managed-latency connection.
  n.add_duplex(kCampusGateway, kSiteUC, net::Link::campus_to_cloud());
  n.add_duplex(kSiteUC, kSiteTACC,
               net::Link::fabric_managed(options.fabric_latency_s));
  for (const std::string& car : options.cars) {
    n.add_host(car);
    n.add_duplex(car, kCampusGateway, net::Link::edge_wifi());
  }
  return n;
}

std::vector<std::string> shard_sites(std::size_t shards) {
  std::vector<std::string> sites;
  sites.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    sites.push_back(s % 2 == 0 ? kSiteUC : kSiteTACC);
  }
  return sites;
}

}  // namespace autolearn::testbed
