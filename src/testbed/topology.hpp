// Canonical continuum network topology (§3.2): a car's Raspberry Pi on
// campus Wi-Fi, a campus gateway, the two principal Chameleon sites, and
// the FABRIC connection between them ("the two principal Chameleon sites
// are connected to the FABRIC networking testbed creating potential to
// support cloud experiments with managed latency").
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"

namespace autolearn::testbed {

struct TopologyOptions {
  std::vector<std::string> cars = {"car-01"};
  /// One-way managed latency of the FABRIC link between CHI@UC and
  /// CHI@TACC (the knob managed-latency experiments turn).
  double fabric_latency_s = 0.012;
};

/// Host names used by the canonical topology.
inline const char* kCampusGateway = "campus-gw";
inline const char* kSiteUC = "chi-uc";
inline const char* kSiteTACC = "chi-tacc";

/// Builds the car <-> campus <-> CHI@UC <-> (FABRIC) <-> CHI@TACC graph.
net::Network chameleon_network(const TopologyOptions& options = {});

/// Site assignment for `shards` fleet shard workers: the two principal
/// Chameleon sites, alternating (shard 0 on CHI@UC, shard 1 on CHI@TACC,
/// shard 2 on CHI@UC, ...). Losing one site takes out half the shards,
/// which is the failure mode the geo-sharded serving tests exercise.
std::vector<std::string> shard_sites(std::size_t shards);

}  // namespace autolearn::testbed
