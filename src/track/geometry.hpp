// 2D vector and angle helpers shared by the track, vehicle, and camera
// modules. The world frame is meters, x east, y north, headings in radians
// counter-clockwise from +x.
#pragma once

#include <cmath>

namespace autolearn::track {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double k) const { return {x * k, y * k}; }
  Vec2 operator/(double k) const { return {x / k, y / k}; }
  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }

  double dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// z-component of the 3D cross product; >0 means o is to the left.
  double cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double norm() const { return std::sqrt(x * x + y * y); }
  double norm2() const { return x * x + y * y; }
  Vec2 normalized() const {
    const double n = norm();
    return n > 0 ? Vec2{x / n, y / n} : Vec2{0, 0};
  }
  /// Perpendicular (rotated +90 degrees).
  Vec2 perp() const { return {-y, x}; }
  Vec2 rotated(double angle) const {
    const double c = std::cos(angle), s = std::sin(angle);
    return {x * c - y * s, x * s + y * c};
  }
};

inline Vec2 operator*(double k, const Vec2& v) { return v * k; }

inline double distance(const Vec2& a, const Vec2& b) { return (a - b).norm(); }

/// Unit heading vector for an angle.
inline Vec2 heading_vec(double heading) {
  return {std::cos(heading), std::sin(heading)};
}

/// Wraps an angle to (-pi, pi].
inline double wrap_angle(double a) {
  while (a > M_PI) a -= 2 * M_PI;
  while (a <= -M_PI) a += 2 * M_PI;
  return a;
}

/// Smallest signed difference a - b wrapped to (-pi, pi].
inline double angle_diff(double a, double b) { return wrap_angle(a - b); }

}  // namespace autolearn::track
