#include "track/path_builder.hpp"

#include <cmath>
#include <stdexcept>

namespace autolearn::track {

PathBuilder::PathBuilder(Vec2 start, double start_heading, double step)
    : start_pos_(start),
      start_heading_(start_heading),
      pos_(start),
      heading_(start_heading),
      step_(step) {
  if (step <= 0) throw std::invalid_argument("PathBuilder: step must be > 0");
  emit(pos_, heading_, 0.0);
}

void PathBuilder::emit(Vec2 pos, double heading, double curvature) {
  samples_.push_back(PathSample{pos, wrap_angle(heading), curvature, length_});
}

PathBuilder& PathBuilder::straight(double length) {
  if (length <= 0) throw std::invalid_argument("straight: length must be > 0");
  const Vec2 dir = heading_vec(heading_);
  const int n = std::max(1, static_cast<int>(std::ceil(length / step_)));
  const double s0 = length_;
  for (int i = 1; i <= n; ++i) {
    const double d = length * i / n;
    length_ = s0 + d;  // from segment start, avoiding accumulation drift
    emit(pos_ + dir * d, heading_, 0.0);
  }
  pos_ += dir * length;
  return *this;
}

PathBuilder& PathBuilder::arc(double radius, double angle) {
  if (radius <= 0) throw std::invalid_argument("arc: radius must be > 0");
  if (angle == 0) throw std::invalid_argument("arc: angle must be nonzero");
  const double sign = angle > 0 ? 1.0 : -1.0;
  // Center of the turning circle is perpendicular to the heading.
  const Vec2 center = pos_ + heading_vec(heading_).perp() * (sign * radius);
  const double arc_len = std::abs(angle) * radius;
  const int n = std::max(1, static_cast<int>(std::ceil(arc_len / step_)));
  const double start_heading = heading_;
  const double s0 = length_;
  for (int i = 1; i <= n; ++i) {
    const double a = angle * i / n;
    // Position on the circle: rotate the start point around the center.
    const Vec2 p = center + (pos_ - center).rotated(a);
    length_ = s0 + arc_len * i / n;
    emit(p, start_heading + a, sign / radius);
  }
  pos_ = center + (pos_ - center).rotated(angle);
  heading_ = wrap_angle(start_heading + angle);
  return *this;
}

std::vector<PathSample> PathBuilder::build(bool close_loop,
                                           double tolerance) const {
  if (samples_.size() < 2) {
    throw std::logic_error("PathBuilder: path has no segments");
  }
  if (close_loop) {
    const double gap = distance(pos_, start_pos_);
    if (gap > tolerance) {
      throw std::logic_error("PathBuilder: loop does not close (gap " +
                             std::to_string(gap) + " m)");
    }
    if (std::abs(angle_diff(heading_, start_heading_)) > 0.05) {
      throw std::logic_error("PathBuilder: loop heading does not close");
    }
  }
  return samples_;
}

}  // namespace autolearn::track
