// Composes a closed centerline from straight and arc segments.
//
// Tracks in AutoLearn (the paper's tape oval, the Waveshare commercial
// track, custom classroom layouts) are sequences of straights and constant-
// radius arcs. The builder walks segments from a start pose and emits a
// densely sampled polyline with exact headings and curvatures, which Track
// then indexes by arc length.
#pragma once

#include <vector>

#include "track/geometry.hpp"

namespace autolearn::track {

/// One densely-sampled point of a centerline.
struct PathSample {
  Vec2 pos;
  double heading = 0.0;    // radians, CCW from +x
  double curvature = 0.0;  // 1/m, >0 turning left
  double s = 0.0;          // cumulative arc length from path start
};

class PathBuilder {
 public:
  /// step: sampling interval along the path in meters.
  explicit PathBuilder(Vec2 start = {0, 0}, double start_heading = 0.0,
                       double step = 0.02);

  /// Appends a straight segment of the given length (> 0).
  PathBuilder& straight(double length);

  /// Appends a constant-radius arc. radius > 0; angle in radians, positive
  /// turns left (CCW), negative turns right. |angle| may exceed 2*pi.
  PathBuilder& arc(double radius, double angle);

  /// Total length laid down so far.
  double length() const { return length_; }

  /// Current pen pose (useful for asserting a layout closes).
  Vec2 position() const { return pos_; }
  double heading() const { return heading_; }

  /// Finishes the path. If close_loop, verifies the pen returned to the
  /// start (within tolerance) and marks the path closed; throws otherwise.
  std::vector<PathSample> build(bool close_loop = true,
                                double tolerance = 0.05) const;

 private:
  void emit(Vec2 pos, double heading, double curvature);

  std::vector<PathSample> samples_;
  Vec2 start_pos_;
  double start_heading_;
  Vec2 pos_;
  double heading_;
  double step_;
  double length_ = 0.0;
};

}  // namespace autolearn::track
