#include "track/track.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/units.hpp"

namespace autolearn::track {

Track::Track(std::string name, std::vector<PathSample> centerline,
             double width)
    : name_(std::move(name)), samples_(std::move(centerline)), width_(width) {
  if (samples_.size() < 8) {
    throw std::invalid_argument("Track: centerline too short");
  }
  if (width_ <= 0) throw std::invalid_argument("Track: width must be > 0");
  length_ = samples_.back().s;
  if (length_ <= 0) throw std::invalid_argument("Track: zero length");
  build_grid();
}

double Track::wrap_s(double s) const {
  s = std::fmod(s, length_);
  if (s < 0) s += length_;
  return s;
}

std::size_t Track::index_at(double s) const {
  // Samples are uniformly spaced to within segment rounding; binary search
  // keeps this exact.
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), s,
      [](double v, const PathSample& smp) { return v < smp.s; });
  const std::size_t i = static_cast<std::size_t>(it - samples_.begin());
  return i == 0 ? 0 : i - 1;
}

Vec2 Track::position_at(double s) const {
  s = wrap_s(s);
  const std::size_t i = index_at(s);
  const std::size_t j = (i + 1) % samples_.size();
  const double seg = (j == 0 ? length_ : samples_[j].s) - samples_[i].s;
  const double t = seg > 0 ? (s - samples_[i].s) / seg : 0.0;
  return samples_[i].pos + (samples_[j].pos - samples_[i].pos) * t;
}

double Track::heading_at(double s) const {
  s = wrap_s(s);
  const std::size_t i = index_at(s);
  const std::size_t j = (i + 1) % samples_.size();
  const double seg = (j == 0 ? length_ : samples_[j].s) - samples_[i].s;
  const double t = seg > 0 ? (s - samples_[i].s) / seg : 0.0;
  return wrap_angle(samples_[i].heading +
                    t * angle_diff(samples_[j].heading, samples_[i].heading));
}

double Track::curvature_at(double s) const {
  return samples_[index_at(wrap_s(s))].curvature;
}

Vec2 Track::left_boundary_at(double s) const {
  return position_at(s) + heading_vec(heading_at(s)).perp() * half_width();
}

Vec2 Track::right_boundary_at(double s) const {
  return position_at(s) - heading_vec(heading_at(s)).perp() * half_width();
}

void Track::build_grid() {
  double min_x = std::numeric_limits<double>::max(), min_y = min_x;
  double max_x = -min_x, max_y = -min_x;
  for (const auto& smp : samples_) {
    min_x = std::min(min_x, smp.pos.x);
    min_y = std::min(min_y, smp.pos.y);
    max_x = std::max(max_x, smp.pos.x);
    max_y = std::max(max_y, smp.pos.y);
  }
  // Pad by a couple of lane widths so near-track queries land in the grid.
  const double pad = 2 * width_ + 1.0;
  grid_.min_x = min_x - pad;
  grid_.min_y = min_y - pad;
  grid_.nx = static_cast<std::size_t>((max_x - min_x + 2 * pad) / grid_.cell) + 1;
  grid_.ny = static_cast<std::size_t>((max_y - min_y + 2 * pad) / grid_.cell) + 1;
  grid_.cells.assign(grid_.nx * grid_.ny, {});
  for (std::uint32_t k = 0; k < samples_.size(); ++k) {
    const auto cx = static_cast<std::size_t>(
        (samples_[k].pos.x - grid_.min_x) / grid_.cell);
    const auto cy = static_cast<std::size_t>(
        (samples_[k].pos.y - grid_.min_y) / grid_.cell);
    grid_.cells[cy * grid_.nx + cx].push_back(k);
  }
}

Projection Track::project(const Vec2& p) const {
  // Search the spatial grid ring-by-ring until a candidate is found, then
  // one extra ring to guarantee the true nearest sample is not missed.
  double best_d2 = std::numeric_limits<double>::max();
  std::size_t best = 0;
  const double fx = (p.x - grid_.min_x) / grid_.cell;
  const double fy = (p.y - grid_.min_y) / grid_.cell;
  const long cx = static_cast<long>(std::floor(fx));
  const long cy = static_cast<long>(std::floor(fy));
  const long max_ring =
      static_cast<long>(std::max(grid_.nx, grid_.ny)) + 1;
  bool found = false;
  long settle_rings = -1;
  for (long ring = 0; ring <= max_ring; ++ring) {
    if (found) {
      if (settle_rings < 0) settle_rings = ring + 1;
      if (ring > settle_rings) break;
    }
    for (long dy = -ring; dy <= ring; ++dy) {
      for (long dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        const long gx = cx + dx, gy = cy + dy;
        if (gx < 0 || gy < 0 || gx >= static_cast<long>(grid_.nx) ||
            gy >= static_cast<long>(grid_.ny)) {
          continue;
        }
        for (std::uint32_t k :
             grid_.cells[static_cast<std::size_t>(gy) * grid_.nx +
                         static_cast<std::size_t>(gx)]) {
          const double d2 = (samples_[k].pos - p).norm2();
          if (d2 < best_d2) {
            best_d2 = d2;
            best = k;
            found = true;
          }
        }
      }
    }
  }
  if (!found) {
    // Point far outside the padded grid: fall back to a linear scan.
    for (std::size_t k = 0; k < samples_.size(); ++k) {
      const double d2 = (samples_[k].pos - p).norm2();
      if (d2 < best_d2) {
        best_d2 = d2;
        best = k;
      }
    }
  }

  const PathSample& smp = samples_[best];
  // Refine along the local tangent for sub-sample accuracy.
  const Vec2 tangent = heading_vec(smp.heading);
  const Vec2 rel = p - smp.pos;
  const double along = rel.dot(tangent);

  Projection out;
  out.s = wrap_s(smp.s + along);
  out.center_point = smp.pos + tangent * along;
  out.lateral = rel.cross(tangent) * -1.0;  // >0 when p is left of travel
  out.heading = smp.heading;
  out.curvature = smp.curvature;
  out.on_track = std::abs(out.lateral) <= half_width();
  return out;
}

double Track::progress_delta(double s_prev, double s_now) const {
  double d = wrap_s(s_now) - wrap_s(s_prev);
  if (d > length_ / 2) d -= length_;
  if (d < -length_ / 2) d += length_;
  return d;
}

Track Track::from_builder(std::string name, const PathBuilder& builder,
                          double width) {
  return Track(std::move(name), builder.build(/*close_loop=*/true), width);
}

Track Track::paper_oval() {
  // Paper (§3.3): inner line 330 in, outer line 509 in, average width
  // 27.59 in. Model the tape oval as a stadium: two straights of length L
  // and two semicircular ends of centerline radius r, lane width w.
  //   inner perimeter = 2L + 2*pi*(r - w/2) = 8.382 m   (330 in)
  //   outer perimeter = 2L + 2*pi*(r + w/2) = 12.929 m  (509 in)
  // The difference fixes 2*pi*w = 4.547 m -> w = 0.724 m, within 3% of the
  // paper's measured average width (27.59 in = 0.701 m) — the published
  // dimensions are mutually consistent with a stadium shape. We keep the
  // measured width and the implied centerline perimeter
  // (330+509)/2 in = 10.655 m, and choose a turn radius that fits a
  // classroom floor.
  const double width = util::inches_to_meters(27.59);
  const double perimeter = util::inches_to_meters((330.0 + 509.0) / 2.0);
  const double turn_radius = 1.20;
  const double straight_len = (perimeter - 2 * M_PI * turn_radius) / 2.0;
  PathBuilder b({0, 0}, 0.0, 0.01);
  b.straight(straight_len)
      .arc(turn_radius, M_PI)
      .straight(straight_len)
      .arc(turn_radius, M_PI);
  return from_builder("paper-oval", b, width);
}

Track Track::waveshare() {
  // Waveshare PiRacer Pro mat analogue: rounded rectangle with an S-bend on
  // one long side, lane width ~0.45 m. Dimensions chosen to fit the
  // commercial 3.5 x 2.5 m mat footprint.
  const double width = 0.45;
  const double r = 0.55;
  PathBuilder b({0, 0}, 0.0, 0.01);
  // The S-bend displaces the front straight by +0.9 m in both x and y; the
  // back straight covers the x offset and the left side straight is 0.9 m
  // longer than the right side to cover the y offset, closing the loop.
  b.straight(1.0)
      .arc(0.45, M_PI / 2)   // S-bend out
      .arc(0.45, -M_PI / 2)  // S-bend back
      .straight(0.6)
      .arc(r, M_PI / 2)      // corner 1
      .straight(1.1)         // right side
      .arc(r, M_PI / 2)      // corner 2
      .straight(2.5)         // back straight
      .arc(r, M_PI / 2)      // corner 3
      .straight(2.0)         // left side
      .arc(r, M_PI / 2);     // corner 4
  return from_builder("waveshare", b, width);
}

Track Track::square_loop(double side, double corner_radius, double width) {
  if (side <= 2 * corner_radius) {
    throw std::invalid_argument("square_loop: side too short for corners");
  }
  const double straight = side - 2 * corner_radius;
  PathBuilder b({0, 0}, 0.0, 0.01);
  for (int i = 0; i < 4; ++i) {
    b.straight(straight).arc(corner_radius, M_PI / 2);
  }
  return from_builder("square-loop", b, width);
}

}  // namespace autolearn::track
