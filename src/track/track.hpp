// Closed driving track with arc-length indexing.
//
// A Track owns a densely sampled closed centerline plus a (possibly
// varying) lane half-width. It answers the geometric queries the rest of
// the system needs:
//   * the expert pilot looks ahead along the centerline,
//   * the camera renders the lane boundaries,
//   * the evaluator projects the car onto the track to detect off-track
//     excursions and measure lap progress.
#pragma once

#include <string>
#include <vector>

#include "track/geometry.hpp"
#include "track/path_builder.hpp"

namespace autolearn::track {

/// Result of projecting a world point onto the track.
struct Projection {
  double s = 0.0;             // arc length of the nearest centerline point
  double lateral = 0.0;       // signed offset, >0 left of travel direction
  double heading = 0.0;       // centerline heading at s
  double curvature = 0.0;     // centerline curvature at s
  Vec2 center_point;          // nearest centerline point
  bool on_track = false;      // |lateral| <= half-width at s
};

class Track {
 public:
  /// Builds from centerline samples (as produced by PathBuilder::build with
  /// close_loop) and a constant lane width (full width, meters).
  Track(std::string name, std::vector<PathSample> centerline, double width);

  const std::string& name() const { return name_; }
  /// Total centerline length in meters.
  double length() const { return length_; }
  /// Full lane width in meters.
  double width() const { return width_; }
  double half_width() const { return width_ / 2; }

  /// Wraps an arc length into [0, length).
  double wrap_s(double s) const;

  /// Centerline pose at arc length s (interpolated, s wraps around).
  Vec2 position_at(double s) const;
  double heading_at(double s) const;
  double curvature_at(double s) const;

  /// Point on the left/right lane boundary at arc length s.
  Vec2 left_boundary_at(double s) const;
  Vec2 right_boundary_at(double s) const;

  /// Nearest-centerline projection of a world point. Exact within the
  /// sampling resolution (~2 cm for the presets).
  Projection project(const Vec2& p) const;

  /// Signed forward progress from s_prev to s_now, unwrapping the lap
  /// seam: moving forward across the finish line yields a small positive
  /// delta rather than -length.
  double progress_delta(double s_prev, double s_now) const;

  const std::vector<PathSample>& centerline() const { return samples_; }

  // --- Presets -----------------------------------------------------------

  /// The paper's default track: an orange-tape stadium oval with inner line
  /// 330 in, outer line 509 in, and average width 27.59 in (SC-W'23, §3.3,
  /// Fig. 3a). Geometry derivation in the .cpp.
  static Track paper_oval();

  /// A Waveshare-style commercial track: rounded rectangle with an S-bend
  /// chicane, similar complexity to the PiRacer Pro mat (Fig. 3b).
  static Track waveshare();

  /// Simple custom layouts for "modify the shape of the track" exercises.
  static Track square_loop(double side = 3.0, double corner_radius = 0.8,
                           double width = 0.7);

  /// Generic constructor from a builder.
  static Track from_builder(std::string name, const PathBuilder& builder,
                            double width);

 private:
  std::size_t index_at(double s) const;

  std::string name_;
  std::vector<PathSample> samples_;
  double width_;
  double length_;
  // Spatial grid for project(): cell -> sample indices, keyed on
  // floor(x/cell), floor(y/cell).
  struct Grid {
    double cell = 0.5;
    double min_x = 0, min_y = 0;
    std::size_t nx = 0, ny = 0;
    std::vector<std::vector<std::uint32_t>> cells;
  } grid_;
  void build_grid();
};

}  // namespace autolearn::track
