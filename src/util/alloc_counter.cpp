#include "util/alloc_counter.hpp"

#include <atomic>

namespace autolearn::util {
namespace {

// Relaxed is enough: tests read the counter on the same thread that ran
// the code under test, and cross-thread counts only need eventual totals.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

void note_allocation() {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace autolearn::util
