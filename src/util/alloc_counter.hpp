// Heap-allocation accounting for zero-allocation assertions.
//
// The counter itself lives here (always compiled, near-zero cost: one
// relaxed atomic add per observed allocation), but it only ticks when a
// translation unit that overrides the global operator new/delete set
// forwards to note_allocation(). The test tree links exactly one such TU
// (tests/alloc_hooks.cpp) into the binaries that assert allocation-free
// steady states — production binaries keep the stock allocator untouched.
#pragma once

#include <cstddef>
#include <cstdint>

namespace autolearn::util {

/// Total operator-new calls observed so far in this process (0 unless the
/// alloc hooks TU is linked in). Monotonic; never reset.
std::uint64_t allocation_count();

/// Called by the test-only operator new overrides.
void note_allocation();

/// Delta-measurement helper:
///   AllocCounterScope scope;
///   ... code under test ...
///   EXPECT_EQ(scope.delta(), 0u);
class AllocCounterScope {
 public:
  AllocCounterScope() : start_(allocation_count()) {}
  std::uint64_t delta() const { return allocation_count() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace autolearn::util
