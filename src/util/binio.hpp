// Raw little-endian POD stream helpers shared by the checkpoint codec and
// the ml serialization paths. Reads report truncation by returning false
// (callers turn that into their own typed errors); writes never fail
// silently because the callers check the stream once per object.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/rng.hpp"

namespace autolearn::util {

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>, "write_pod: POD only");
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

/// Returns false on a short read (truncated stream).
template <typename T>
[[nodiscard]] bool read_pod(std::istream& is, T& value) {
  static_assert(std::is_trivially_copyable_v<T>, "read_pod: POD only");
  is.read(reinterpret_cast<char*>(&value), sizeof value);
  return static_cast<bool>(is);
}

inline void write_string(std::ostream& os, const std::string& s) {
  write_pod(os, static_cast<std::uint64_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

[[nodiscard]] inline bool read_string(std::istream& is, std::string& s) {
  std::uint64_t n = 0;
  if (!read_pod(is, n)) return false;
  s.resize(n);
  is.read(s.data(), static_cast<std::streamsize>(n));
  return static_cast<bool>(is);
}

// RngState is serialized field-by-field (never as one POD blob) so the
// stream carries no indeterminate struct padding.
inline void write_rng_state(std::ostream& os, const RngState& st) {
  for (const std::uint64_t word : st.s) write_pod(os, word);
  write_pod(os, st.cached_normal);
  write_pod(os, static_cast<std::uint8_t>(st.has_cached_normal));
}

[[nodiscard]] inline bool read_rng_state(std::istream& is, RngState& st) {
  for (std::uint64_t& word : st.s) {
    if (!read_pod(is, word)) return false;
  }
  if (!read_pod(is, st.cached_normal)) return false;
  std::uint8_t flag = 0;
  if (!read_pod(is, flag)) return false;
  st.has_cached_normal = flag != 0;
  return true;
}

inline void write_f32_span(std::ostream& os, const float* data,
                           std::size_t n) {
  os.write(reinterpret_cast<const char*>(data),
           static_cast<std::streamsize>(n * sizeof(float)));
}

[[nodiscard]] inline bool read_f32_span(std::istream& is, float* data,
                                        std::size_t n) {
  is.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(n * sizeof(float)));
  return static_cast<bool>(is);
}

}  // namespace autolearn::util
