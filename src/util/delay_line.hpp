// Fixed-timestep latency pipeline.
//
// The closed-loop driving simulation advances with a fixed control period.
// Latency anywhere in the loop (camera capture, network RTT to the cloud,
// inference time, actuation lag) is modeled by pushing values into a
// DelayLine and reading them back `delay` seconds later. A value pushed at
// step k with delay d becomes visible at the first step whose time is
// >= t(k) + d; until the first value matures, a caller-provided default is
// returned.
#pragma once

#include <cstddef>
#include <deque>
#include <stdexcept>

namespace autolearn::util {

template <typename T>
class DelayLine {
 public:
  /// dt: control period in seconds. initial: value reported before the
  /// first pushed value matures.
  DelayLine(double dt, T initial) : dt_(dt), current_(std::move(initial)) {
    if (dt <= 0) throw std::invalid_argument("DelayLine: dt must be > 0");
  }

  /// Pushes a value produced now that becomes visible after `delay` secs.
  /// Values must be pushed in time order; delays may vary per push
  /// (e.g. jittered network latency). If a later push matures before an
  /// earlier one (out-of-order delivery), the stale value is dropped when
  /// the fresher one matures — matching a control loop that always uses
  /// the newest command available.
  void push(T value, double delay) {
    if (delay < 0) throw std::invalid_argument("DelayLine: negative delay");
    pending_.push_back(Entry{now_ + delay, std::move(value)});
  }

  /// Advances one control period and returns the freshest matured value
  /// (or the previous/initial value if nothing matured yet).
  const T& step() {
    now_ += dt_;
    // Take the latest entry with ready_time <= now, dropping everything
    // older than it.
    std::size_t last_ready = pending_.size();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      // Epsilon absorbs accumulated floating error from repeated += dt so a
      // delay that is an exact multiple of dt matures on the expected step.
      if (pending_[i].ready_time <= now_ + 1e-9) last_ready = i;
    }
    if (last_ready != pending_.size()) {
      current_ = std::move(pending_[last_ready].value);
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<std::ptrdiff_t>(last_ready) + 1);
    }
    return current_;
  }

  /// Freshest matured value without advancing time.
  const T& value() const { return current_; }

  double now() const { return now_; }
  std::size_t in_flight() const { return pending_.size(); }

 private:
  struct Entry {
    double ready_time;
    T value;
  };
  double dt_;
  double now_ = 0.0;
  T current_;
  std::deque<Entry> pending_;
};

}  // namespace autolearn::util
