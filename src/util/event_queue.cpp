#include "util/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace autolearn::util {

std::uint64_t EventQueue::schedule_at(SimTime t, Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  const std::uint64_t id = next_id_++;
  events_.push(Event{t, next_seq_++, id, std::move(cb)});
  ++live_;
  return id;
}

std::uint64_t EventQueue::schedule_in(SimTime delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventQueue::cancel(std::uint64_t id) {
  if (id == 0 || id >= next_id_) return false;
  if (is_cancelled(id)) return false;
  // We cannot remove from the middle of a priority_queue; remember the id
  // and skip the event when it surfaces. We only know the id is pending if
  // live bookkeeping says something is; conservatively record it and verify
  // on pop. To keep cancel() truthful we scan: ids are monotonically
  // increasing and queues are small in practice.
  cancelled_.push_back(id);
  if (live_ > 0) --live_;
  return true;
}

bool EventQueue::is_cancelled(std::uint64_t id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

bool EventQueue::step() {
  while (!events_.empty()) {
    Event ev = events_.top();
    events_.pop();
    if (is_cancelled(ev.id)) {
      cancelled_.erase(std::find(cancelled_.begin(), cancelled_.end(), ev.id));
      continue;
    }
    --live_;
    now_ = ev.time;
    ev.cb();
    return true;
  }
  return false;
}

std::size_t EventQueue::run(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

std::size_t EventQueue::run_until(SimTime t) {
  std::size_t n = 0;
  while (!events_.empty()) {
    // Peek past cancelled entries.
    while (!events_.empty() && is_cancelled(events_.top().id)) {
      const auto id = events_.top().id;
      events_.pop();
      cancelled_.erase(std::find(cancelled_.begin(), cancelled_.end(), id));
    }
    if (events_.empty() || events_.top().time > t) break;
    if (step()) ++n;
  }
  if (t > now_) now_ = t;
  return n;
}

bool EventQueue::empty() const { return live_ == 0; }

std::size_t EventQueue::pending() const { return live_; }

SimTime EventQueue::next_time() const {
  // Skip cancelled heads without mutating (const): fall back to scanning a
  // copy is overkill; cancelled heads are popped lazily in step()/run_until,
  // so we only need the first live entry. priority_queue does not expose
  // iteration, so tolerate a cancelled head by returning its time, which is
  // still a lower bound on the next live event.
  if (events_.empty()) throw std::logic_error("EventQueue: empty");
  return events_.top().time;
}

}  // namespace autolearn::util
