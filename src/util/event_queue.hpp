// Discrete-event simulation core.
//
// The continuum simulation (network transfers, container start-up,
// heartbeats, lease calendars) advances on a shared virtual clock. Events
// are (time, sequence, callback) tuples processed in time order; ties break
// by insertion order so runs are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace autolearn::util {

/// Virtual time in seconds since simulation start.
using SimTime = double;

/// A single-threaded discrete-event scheduler.
///
/// Usage:
///   EventQueue q;
///   q.schedule_at(1.5, [] { ... });
///   q.run_until(10.0);
class EventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules cb at absolute virtual time t (must be >= now()).
  /// Returns an id usable with cancel().
  std::uint64_t schedule_at(SimTime t, Callback cb);

  /// Schedules cb `delay` seconds from now.
  std::uint64_t schedule_in(SimTime delay, Callback cb);

  /// Cancels a pending event. Returns false if it already ran, was
  /// cancelled, or never existed.
  bool cancel(std::uint64_t id);

  /// Runs events until the queue drains or `limit` events fired.
  /// Returns the number of events processed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs events with time <= t, then advances the clock to exactly t.
  std::size_t run_until(SimTime t);

  /// Pops and runs exactly one event if present; returns whether one ran.
  bool step();

  bool empty() const;
  std::size_t pending() const;

  /// Time of the earliest pending event; only valid when !empty().
  SimTime next_time() const;

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // tie-breaker for determinism
    std::uint64_t id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::vector<std::uint64_t> cancelled_;  // ids to skip (lazy deletion)
  std::size_t live_ = 0;                  // non-cancelled events in queue

  bool is_cancelled(std::uint64_t id) const;
};

}  // namespace autolearn::util
