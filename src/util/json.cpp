#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <cmath>
#include <cstdio>

namespace autolearn::util {

bool Json::as_bool() const {
  if (type_ != Type::Bool) throw JsonError("json: not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::Number) throw JsonError("json: not a number");
  return num_;
}

long long Json::as_int() const {
  return static_cast<long long>(std::llround(as_number()));
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) throw JsonError("json: not a string");
  return str_;
}

const JsonArray& Json::as_array() const {
  if (type_ != Type::Array) throw JsonError("json: not an array");
  return arr_;
}

JsonArray& Json::as_array() {
  if (type_ != Type::Array) throw JsonError("json: not an array");
  return arr_;
}

const JsonObject& Json::as_object() const {
  if (type_ != Type::Object) throw JsonError("json: not an object");
  return obj_;
}

JsonObject& Json::as_object() {
  if (type_ != Type::Object) throw JsonError("json: not an object");
  return obj_;
}

const Json* Json::get(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = get(key);
  if (!v) throw JsonError("json: missing key '" + key + "'");
  return *v;
}

void Json::set(const std::string& key, Json value) {
  if (type_ != Type::Object) throw JsonError("json: not an object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj_.emplace_back(key, std::move(value));
}

void Json::push_back(Json value) {
  if (type_ != Type::Array) throw JsonError("json: not an array");
  arr_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (type_ == Type::Array) return arr_.size();
  if (type_ == Type::Object) return obj_.size();
  throw JsonError("json: size() on scalar");
}

const Json& Json::operator[](std::size_t i) const {
  const auto& a = as_array();
  if (i >= a.size()) throw JsonError("json: index out of range");
  return a[i];
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::Null: return true;
    case Type::Bool: return bool_ == other.bool_;
    case Type::Number: return num_ == other.num_;
    case Type::String: return str_ == other.str_;
    case Type::Array: return arr_ == other.arr_;
    case Type::Object: return obj_ == other.obj_;
  }
  return false;
}

namespace {

void escape_to(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_to(std::string& out, double v) {
  if (v == std::llround(v) && std::abs(v) < 1e15) {
    out += std::to_string(std::llround(v));
    return;
  }
  // Shortest decimal representation that round-trips, so serialized files
  // are stable across parse/dump cycles.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

}  // namespace

void Json::dump_impl(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
                 : "";
  const std::string pad_close =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: number_to(out, num_); break;
    case Type::String: escape_to(out, str_); break;
    case Type::Array: {
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        out += pad;
        arr_[i].dump_impl(out, indent, depth + 1);
      }
      if (!arr_.empty()) out += pad_close;
      out += ']';
      break;
    }
    case Type::Object: {
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        out += pad;
        escape_to(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_impl(out, indent, depth + 1);
      }
      if (!obj_.empty()) out += pad_close;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("json parse error at offset " + std::to_string(pos_) +
                    ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': return Json(string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default: return number();
    }
  }

  Json object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(obj));
      }
      fail("expected ',' or '}'");
    }
  }

  Json array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(arr));
      }
      fail("expected ',' or ']'");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit");
            }
            // Encode BMP code point as UTF-8 (surrogate pairs unsupported —
            // metadata in this codebase is ASCII).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    double out = 0;
    const auto res = std::from_chars(s_.data() + start, s_.data() + pos_, out);
    if (res.ec != std::errc() || res.ptr != s_.data() + pos_ || pos_ == start) {
      fail("bad number");
    }
    return Json(out);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace autolearn::util
