// Minimal JSON value, parser, and serializer.
//
// The tub data format (catalog / catalog_manifest / manifest.json files),
// hub artifact metadata, and model checkpoints store structured metadata as
// JSON. This is a small, strict implementation: UTF-8 pass-through strings,
// doubles for all numbers, ordered object keys (insertion order preserved
// so files round-trip stably).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace autolearn::util {

class Json;
using JsonArray = std::vector<Json>;
/// Object preserving insertion order (vector of pairs, linear lookup —
/// objects in this codebase are small).
using JsonObject = std::vector<std::pair<std::string, Json>>;

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double d) : type_(Type::Number), num_(d) {}
  Json(int i) : type_(Type::Number), num_(i) {}
  Json(long long i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Json(std::size_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(JsonArray a) : type_(Type::Array), arr_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::Object), obj_(std::move(o)) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const;
  double as_number() const;
  long long as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonObject& as_object() const;
  JsonObject& as_object();

  /// Object access. get() returns nullptr when the key is absent.
  const Json* get(const std::string& key) const;
  /// Throws JsonError when absent.
  const Json& at(const std::string& key) const;
  /// Inserts or replaces.
  void set(const std::string& key, Json value);
  bool contains(const std::string& key) const { return get(key) != nullptr; }

  /// Array append.
  void push_back(Json value);
  std::size_t size() const;
  const Json& operator[](std::size_t i) const;

  /// Serializes compactly; indent > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// Strict parser; throws JsonError with an offset on malformed input.
  static Json parse(const std::string& text);

  bool operator==(const Json& other) const;

 private:
  void dump_impl(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

}  // namespace autolearn::util
