#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace autolearn::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_io_mu;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (level < g_level.load()) return;
  std::scoped_lock lock(g_io_mu);
  std::cerr << "[" << level_name(level) << "] " << component << ": " << message
            << "\n";
}

}  // namespace autolearn::util
