// Leveled logging with a process-global threshold.
//
// Simulation components log orchestration events (lease granted, container
// started, transfer finished) at Info; benches usually raise the threshold
// to Warn so tables stay clean. Logging is synchronized so interleaved
// worker threads produce whole lines.
#pragma once

#include <sstream>
#include <string>

namespace autolearn::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets/gets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one formatted line "[LEVEL] component: message" to stderr.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// Stream-style helper: LOG(Info, "edge") << "device " << id << " ready";
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { log_line(level_, component_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace autolearn::util

#define AUTOLEARN_LOG(level, component) \
  ::autolearn::util::LogStream(::autolearn::util::LogLevel::level, component)
