#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace autolearn::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // Guard against the all-zero state, which xoshiro cannot leave.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r > limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

Rng Rng::split() { return Rng(next_u64() ^ 0xa3c59ac2f1036e07ULL); }

RngState Rng::state() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.cached_normal = cached_normal_;
  st.has_cached_normal = has_cached_normal_;
  return st;
}

void Rng::set_state(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace autolearn::util
