// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in AutoLearn (vehicle noise, dataset
// generation, weight initialization, network jitter) draws from an Rng
// seeded explicitly, so experiments are reproducible bit-for-bit across
// runs. The generator is xoshiro256**, seeded through SplitMix64 per the
// reference implementation; it is small, fast, and statistically strong
// enough for simulation workloads.
#pragma once

#include <cstdint>
#include <vector>

namespace autolearn::util {

/// Complete serializable Rng state (the xoshiro words plus the Box-Muller
/// cache), so checkpointed components resume their random streams
/// bit-for-bit. POD on purpose — checkpoints write it raw.
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

/// xoshiro256** PRNG with convenience distributions.
///
/// Not thread-safe: give each thread (or each simulated entity) its own
/// stream via split(), which derives an independent generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single seed using SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface so <random> distributions work too.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of true.
  bool chance(double p);

  /// Exponentially distributed value with the given mean (mean = 1/lambda).
  double exponential(double mean);

  /// Derives an independent generator: used to hand child components their
  /// own deterministic stream without sharing state.
  Rng split();

  /// Checkpoint support: the full generator state, restorable exactly.
  RngState state() const;
  void set_state(const RngState& state);

  /// In-place Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace autolearn::util
