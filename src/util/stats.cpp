#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autolearn::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) *
             static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s2 = 0;
  for (double v : values_) s2 += (v - m) * (v - m);
  return std::sqrt(s2 / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::percentile(double p) const {
  if (values_.empty()) throw std::logic_error("Samples: empty");
  if (p < 0 || p > 100) throw std::invalid_argument("percentile out of range");
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace autolearn::util
