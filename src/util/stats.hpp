// Streaming and batch statistics used by the evaluation harness and the
// benchmark tables: online mean/variance (Welford), min/max, and
// percentiles over collected samples.
#pragma once

#include <cstddef>
#include <vector>

namespace autolearn::util {

/// Welford online accumulator: O(1) memory mean/variance/min/max.
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Merges another accumulator (parallel reduction).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample container with percentile queries (keeps all values).
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  std::size_t count() const { return values_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolation percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace autolearn::util
