#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace autolearn::util {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TablePrinter: no headers");
  }
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("TablePrinter: row wider than header");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::num(long long v) { return std::to_string(v); }

void TablePrinter::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title.empty()) os << "\n== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool right = looks_numeric(row[c]);
      os << (right ? std::right : std::left) << std::setw(static_cast<int>(widths[c]))
         << row[c] << " | ";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << " \n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::to_string(const std::string& title) const {
  std::ostringstream os;
  print(os, title);
  return os.str();
}

}  // namespace autolearn::util
