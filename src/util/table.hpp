// Monospace table rendering for benchmark output.
//
// Every experiment bench prints its paper-style result table through this
// one printer so EXPERIMENTS.md rows can be copied verbatim from bench
// output. Columns auto-size; numeric cells are right-aligned.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace autolearn::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` digits after the point.
  static std::string num(double v, int precision = 2);
  /// Integer cell.
  static std::string num(long long v);

  /// Renders with a header rule and column separators.
  void print(std::ostream& os, const std::string& title = "") const;
  std::string to_string(const std::string& title = "") const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace autolearn::util
