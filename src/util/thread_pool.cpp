#include "util/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <exception>

namespace autolearn::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::scoped_lock lock(mu_);
    tasks_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] {
        return stop_ || !tasks_.empty() ||
               (raw_fn_ != nullptr && raw_next_ < raw_parts_);
      });
      if (raw_fn_ != nullptr && raw_next_ < raw_parts_) {
        run_raw_chunks(lock);
        continue;
      }
      if (tasks_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void ThreadPool::run_raw_chunks(std::unique_lock<std::mutex>& lock) {
  // The region description is copied out before unlocking: the caller
  // clears the raw_* fields once raw_done_ reaches raw_parts_, which can
  // happen while this thread still runs its last chunk.
  const RawChunkFn fn = raw_fn_;
  void* const ctx = raw_ctx_;
  const std::size_t begin = raw_begin_, end = raw_end_, chunk = raw_chunk_;
  while (raw_fn_ == fn && raw_next_ < raw_parts_) {
    const std::size_t i = raw_next_++;
    const std::size_t b = begin + i * chunk;
    const std::size_t e = std::min(end, b + chunk);
    lock.unlock();
    std::exception_ptr err;
    try {
      fn(ctx, b, e);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err && !raw_error_) raw_error_ = err;
    if (++raw_done_ == raw_parts_) raw_done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for_chunks_raw(std::size_t begin, std::size_t end,
                                         RawChunkFn fn, void* ctx,
                                         std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Same inline fast path as parallel_for_chunks: tiny ranges and
  // single-worker pools never touch the region machinery.
  if (n <= grain || workers_.size() <= 1) {
    fn(ctx, begin, end);
    return;
  }
  // One region at a time; competing callers queue here (no allocation —
  // mutex waits are intrusive).
  std::scoped_lock owner(raw_owner_mu_);
  std::exception_ptr err;
  {
    std::unique_lock lock(mu_);
    raw_fn_ = fn;
    raw_ctx_ = ctx;
    raw_begin_ = begin;
    raw_end_ = end;
    raw_parts_ = std::min(n, workers_.size() + 1);
    raw_chunk_ = (n + raw_parts_ - 1) / raw_parts_;
    raw_next_ = 0;
    raw_done_ = 0;
    raw_error_ = nullptr;
    cv_.notify_all();
    // The caller contributes work instead of just blocking.
    run_raw_chunks(lock);
    raw_done_cv_.wait(lock, [this] { return raw_done_ == raw_parts_; });
    raw_fn_ = nullptr;
    raw_ctx_ = nullptr;
    err = raw_error_;
    raw_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) fn(i);
      },
      grain);
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Inline fast path: tiny ranges and single-worker pools gain nothing
  // from the enqueue/future round trip (and the single-worker case keeps
  // serial-pool runs free of any scheduling at all).
  if (n <= grain || workers_.size() <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t parts = std::min(n, workers_.size() + 1);
  const std::size_t chunk = (n + parts - 1) / parts;
  std::vector<std::future<void>> futures;
  futures.reserve(parts - 1);
  std::size_t b = begin;
  // First (parts-1) chunks go to the pool; the last runs on this thread so
  // the caller contributes work instead of just blocking.
  for (std::size_t p = 0; p + 1 < parts && b < end; ++p) {
    const std::size_t e = std::min(end, b + chunk);
    futures.push_back(submit([&fn, b, e] { fn(b, e); }));
    b = e;
  }
  if (b < end) fn(b, end);
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

namespace {
ThreadPool* shared_override = nullptr;
}  // namespace

std::size_t ThreadPool::env_thread_override() {
  const char* env = std::getenv("AUTOLEARN_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == nullptr || *end != '\0') return 0;
  return static_cast<std::size_t>(v);
}

ThreadPool& ThreadPool::shared() {
  if (shared_override != nullptr) return *shared_override;
  static ThreadPool pool(env_thread_override());
  return pool;
}

ThreadPool::ScopedOverride::ScopedOverride(ThreadPool& pool)
    : prev_(shared_override) {
  shared_override = &pool;
}

ThreadPool::ScopedOverride::~ScopedOverride() { shared_override = prev_; }

}  // namespace autolearn::util
