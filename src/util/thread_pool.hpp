// RAII worker-thread pool with a blocking parallel_for.
//
// Follows the Core Guidelines concurrency rules: threads are joined in the
// destructor (never detached), all shared state is guarded by scoped locks,
// and user tasks never run while pool-internal locks are held.
//
// AutoLearn uses the pool for data-parallel inner loops (GEMM and
// convolution in ml/, dataset generation in data/), so the primary
// primitive is parallel_for over an index range with static chunking.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace autolearn::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers. Pending tasks are drained before shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future observes completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for every i in [begin, end), partitioned into contiguous
  /// chunks across the workers plus the calling thread. Blocks until all
  /// iterations finish. Exceptions from fn propagate to the caller
  /// (the first one observed). Ranges of at most `grain` iterations — and
  /// every range when the pool has a single worker — run inline on the
  /// calling thread with no enqueue or future overhead.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Chunked variant: fn(chunk_begin, chunk_end) — lower overhead when the
  /// body is a tight loop.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t grain = 1);

  /// Raw chunk body: fn(ctx, chunk_begin, chunk_end).
  using RawChunkFn = void (*)(void* ctx, std::size_t begin, std::size_t end);

  /// Allocation-free parallel_for_chunks: the region is described by a
  /// plain function pointer + context instead of a std::function, and
  /// workers claim chunks from fixed pool-resident state, so a steady-state
  /// call performs zero heap allocation (the compiled-plan execution path
  /// depends on this — see ml/plan.hpp). Chunking matches
  /// parallel_for_chunks exactly: contiguous chunks, workers + 1 parts,
  /// tiny ranges and single-worker pools run inline on the caller.
  /// Exceptions from fn propagate to the caller (first observed).
  /// Concurrent raw regions from different threads serialize against each
  /// other; do not start one from inside a pool task.
  void parallel_for_chunks_raw(std::size_t begin, std::size_t end,
                               RawChunkFn fn, void* ctx,
                               std::size_t grain = 1);

  /// Process-wide shared pool, created on first use with default size.
  /// Use for library internals so each training run does not spawn its
  /// own set of workers. The AUTOLEARN_THREADS environment variable, when
  /// set to a positive integer, fixes the worker count of the pool created
  /// here (reproducible thread counts for benchmarks and CI).
  static ThreadPool& shared();

  /// Parsed AUTOLEARN_THREADS value; 0 when unset, empty, or invalid.
  static std::size_t env_thread_override();

  /// RAII redirect of shared() to a caller-owned pool, used by tests and
  /// benchmarks to pin the worker count seen by library internals. Not
  /// thread-safe: install and remove from the main thread only, while no
  /// parallel section is in flight.
  class ScopedOverride {
   public:
    explicit ScopedOverride(ThreadPool& pool);
    ~ScopedOverride();
    ScopedOverride(const ScopedOverride&) = delete;
    ScopedOverride& operator=(const ScopedOverride&) = delete;

   private:
    ThreadPool* prev_;
  };

 private:
  void worker_loop();
  /// Claims and runs raw-region chunks until none remain. Caller must hold
  /// `lock` (on mu_); the lock is released while a chunk body runs.
  void run_raw_chunks(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;

  // Active raw region (guarded by mu_; raw_owner_mu_ serializes regions).
  std::mutex raw_owner_mu_;
  std::condition_variable raw_done_cv_;
  RawChunkFn raw_fn_ = nullptr;
  void* raw_ctx_ = nullptr;
  std::size_t raw_begin_ = 0;
  std::size_t raw_end_ = 0;
  std::size_t raw_chunk_ = 0;
  std::size_t raw_parts_ = 0;
  std::size_t raw_next_ = 0;
  std::size_t raw_done_ = 0;
  std::exception_ptr raw_error_;
};

}  // namespace autolearn::util
