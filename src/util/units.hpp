// Unit helpers. The paper specifies the default track in inches (inner line
// 330 in, outer 509 in, average width 27.59 in); the simulation works in
// meters and seconds throughout.
#pragma once

namespace autolearn::util {

inline constexpr double kMetersPerInch = 0.0254;

constexpr double inches_to_meters(double in) { return in * kMetersPerInch; }
constexpr double meters_to_inches(double m) { return m / kMetersPerInch; }

constexpr double ms_to_s(double ms) { return ms / 1000.0; }
constexpr double s_to_ms(double s) { return s * 1000.0; }

constexpr double mph_to_mps(double mph) { return mph * 0.44704; }

constexpr double kib(double n) { return n * 1024.0; }
constexpr double mib(double n) { return n * 1024.0 * 1024.0; }
constexpr double gib(double n) { return n * 1024.0 * 1024.0 * 1024.0; }

}  // namespace autolearn::util
