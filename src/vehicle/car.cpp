#include "vehicle/car.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autolearn::vehicle {

DriveCommand DriveCommand::clamped() const {
  return DriveCommand{std::clamp(steering, -1.0, 1.0),
                      std::clamp(throttle, -1.0, 1.0)};
}

NoiseProfile NoiseProfile::sim() { return NoiseProfile{}; }

NoiseProfile NoiseProfile::real_car() {
  NoiseProfile p;
  p.steering_noise = 0.015;  // servo chatter + surface irregularity
  p.steering_bias = 0.02;    // slightly off-center trim
  p.throttle_noise = 0.04;   // battery sag / ESC granularity
  p.position_noise = 0.002;  // wheel slip, carpet fibers
  p.grip_limit = 4.0;        // m/s^2 before the tires wash out
  return p;
}

Car::Car(CarConfig config, util::Rng rng)
    : config_(config), rng_(rng) {
  if (config_.wheelbase <= 0 || config_.max_wheel_angle <= 0 ||
      config_.max_speed <= 0 || config_.steer_tau <= 0 ||
      config_.speed_tau <= 0 || config_.brake_tau <= 0) {
    throw std::invalid_argument("CarConfig: non-positive parameter");
  }
}

void Car::reset(const track::Vec2& pos, double heading, double speed) {
  state_ = CarState{};
  state_.pos = pos;
  state_.heading = track::wrap_angle(heading);
  state_.speed = std::max(0.0, speed);
}

double Car::lateral_accel() const {
  const double kappa = std::tan(state_.wheel_angle) / config_.wheelbase;
  return state_.speed * state_.speed * std::abs(kappa);
}

void Car::step(const DriveCommand& raw, double dt) {
  if (dt <= 0) throw std::invalid_argument("Car::step: dt must be > 0");
  const DriveCommand cmd = raw.clamped();
  const NoiseProfile& nz = config_.noise;

  // Servo: first-order lag toward the commanded wheel angle, plus the real
  // car's bias and chatter.
  double target_angle = cmd.steering * config_.max_wheel_angle;
  target_angle += nz.steering_bias;
  if (nz.steering_noise > 0) target_angle += rng_.normal(0, nz.steering_noise);
  const double ka = std::min(1.0, dt / config_.steer_tau);
  state_.wheel_angle += (target_angle - state_.wheel_angle) * ka;
  state_.wheel_angle = std::clamp(state_.wheel_angle,
                                  -config_.max_wheel_angle * 1.2,
                                  config_.max_wheel_angle * 1.2);

  // Drivetrain: throttle >= 0 sets a speed target; negative throttle brakes
  // toward zero (no reverse in closed-loop driving).
  double target_speed =
      cmd.throttle >= 0 ? cmd.throttle * config_.max_speed : 0.0;
  if (nz.throttle_noise > 0) {
    target_speed *= std::max(0.0, 1.0 + rng_.normal(0, nz.throttle_noise));
  }
  const double tau =
      target_speed < state_.speed ? config_.brake_tau : config_.speed_tau;
  const double kv = std::min(1.0, dt / tau);
  state_.speed += (target_speed - state_.speed) * kv;
  state_.speed = std::max(0.0, state_.speed);

  // Tire slip: beyond the grip limit the front washes out and the
  // effective steering angle shrinks (understeer).
  double effective_angle = state_.wheel_angle;
  const double a_lat = lateral_accel();
  if (a_lat > nz.grip_limit) {
    effective_angle *= nz.grip_limit / a_lat;
  }

  // Kinematic bicycle pose integration.
  const double yaw_rate =
      state_.speed * std::tan(effective_angle) / config_.wheelbase;
  state_.heading = track::wrap_angle(state_.heading + yaw_rate * dt);
  state_.pos += track::heading_vec(state_.heading) * (state_.speed * dt);

  if (nz.position_noise > 0) {
    state_.pos += track::Vec2{rng_.normal(0, nz.position_noise),
                              rng_.normal(0, nz.position_noise)};
  }
}

}  // namespace autolearn::vehicle
