// Small-scale self-driving car dynamics (DonkeyCar analogue).
//
// The car is a kinematic bicycle: steering and throttle commands in
// [-1, 1] drive a servo-lagged wheel angle and a first-order speed
// response; the pose integrates tan(delta)/wheelbase yaw rate. A
// NoiseProfile distinguishes the clean Unity-style simulator ("sim") from
// the physical car ("real"): the real profile adds steering bias and
// noise, throttle noise, tire slip (understeer beyond the grip limit) and
// process noise — the imperfections that make the paper's digital-twin
// exercises interesting.
#pragma once

#include "track/geometry.hpp"
#include "util/rng.hpp"

namespace autolearn::vehicle {

/// Normalized pilot output: what the joystick / web controller / model
/// produces each control period.
struct DriveCommand {
  double steering = 0.0;  // [-1, 1], >0 steers left
  double throttle = 0.0;  // [-1, 1], <0 brakes

  DriveCommand clamped() const;
};

/// Full kinematic state of the car in the world frame.
struct CarState {
  track::Vec2 pos;            // meters
  double heading = 0.0;       // radians CCW from +x
  double speed = 0.0;         // m/s, >= 0
  double wheel_angle = 0.0;   // actual (lagged) front wheel angle, radians
};

/// Actuation imperfections. All noise is per-control-step gaussian unless
/// noted; zeros give the ideal simulator.
struct NoiseProfile {
  double steering_noise = 0.0;   // stddev added to the wheel angle (rad)
  double steering_bias = 0.0;    // constant wheel-angle offset (rad)
  double throttle_noise = 0.0;   // stddev on the speed target (fraction)
  double position_noise = 0.0;   // stddev of per-step position jitter (m)
  double grip_limit = 1e9;       // max lateral accel before understeer m/s^2

  static NoiseProfile sim();       // ideal: all zeros, infinite grip
  static NoiseProfile real_car();  // calibrated to a 1/16-scale RC car
};

struct CarConfig {
  double wheelbase = 0.17;        // m (1/16-scale chassis)
  double max_wheel_angle = 0.45;  // rad (~26 degrees)
  double max_speed = 2.8;         // m/s at full throttle
  double steer_tau = 0.08;        // servo first-order time constant, s
  double speed_tau = 0.45;        // drivetrain time constant, s
  double brake_tau = 0.25;        // faster response when slowing down
  NoiseProfile noise = NoiseProfile::sim();
};

class Car {
 public:
  Car(CarConfig config, util::Rng rng);

  const CarConfig& config() const { return config_; }
  const CarState& state() const { return state_; }

  /// Places the car (used to start a session at the track start line).
  void reset(const track::Vec2& pos, double heading, double speed = 0.0);

  /// Advances dt seconds under the given command. dt must be positive and
  /// small relative to the time constants (the control loop uses 50 ms).
  void step(const DriveCommand& cmd, double dt);

  /// Lateral acceleration at the current state (v^2 * kappa).
  double lateral_accel() const;

 private:
  CarConfig config_;
  CarState state_;
  util::Rng rng_;
};

}  // namespace autolearn::vehicle
