#include "vehicle/expert.hpp"

#include <algorithm>
#include <cmath>

namespace autolearn::vehicle {

ExpertPilot::ExpertPilot(const track::Track& track, ExpertConfig config,
                         util::Rng rng, CarConfig car)
    : track_(track), config_(config), car_(car), rng_(rng) {}

DriveCommand ExpertPilot::decide(const CarState& state, double dt) {
  const track::Projection proj = track_.project(state.pos);

  // --- Steering: pure pursuit toward a lookahead point ---------------
  const double s_ahead = proj.s + config_.lookahead;
  const track::Vec2 target = track_.position_at(s_ahead);
  const track::Vec2 to_target = target - state.pos;
  const double target_bearing = std::atan2(to_target.y, to_target.x);
  const double alpha = track::angle_diff(target_bearing, state.heading);
  const double ld = std::max(0.2, to_target.norm());
  // Pure pursuit: wheel angle delta = atan(2 L sin(alpha) / ld).
  const double delta =
      std::atan2(2.0 * car_.wheelbase * std::sin(alpha), ld);
  double steering = delta / car_.max_wheel_angle;

  // --- Throttle: slow down for the sharpest curvature ahead -----------
  double max_kappa = 0.0;
  for (double ds = 0; ds <= config_.curvature_horizon; ds += 0.1) {
    max_kappa = std::max(max_kappa, std::abs(track_.curvature_at(proj.s + ds)));
  }
  double v_target = config_.target_speed;
  if (max_kappa > 1e-6) {
    v_target = std::min(v_target,
                        std::sqrt(config_.lat_accel_limit / max_kappa));
  }
  // Extra caution when far off line (recovering).
  if (std::abs(proj.lateral) > 0.15) v_target *= 0.7;
  double throttle =
      v_target / car_.max_speed +
      config_.speed_kp * (v_target - state.speed) / car_.max_speed;

  // --- Human imperfections --------------------------------------------
  if (config_.steering_noise > 0) {
    steering += rng_.normal(0, config_.steering_noise);
  }
  if (mistake_left_ > 0) {
    steering += mistake_sign_ * config_.mistake_magnitude;
    mistake_left_ -= dt;
  } else if (config_.mistake_rate > 0) {
    const double p = config_.mistake_rate * dt / 60.0;
    if (rng_.chance(p)) {
      mistake_left_ = config_.mistake_duration;
      mistake_sign_ = rng_.chance(0.5) ? 1.0 : -1.0;
    }
  }

  return DriveCommand{steering, throttle}.clamped();
}

}  // namespace autolearn::vehicle
