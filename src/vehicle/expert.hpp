// Pure-pursuit expert pilot.
//
// Stands in for the human driving the car with a joystick or the DonkeyCar
// web controller during data collection: it sees ground-truth track
// geometry (the human sees the tape) and produces steering/throttle
// commands. Imperfection knobs model a student driver — steering noise and
// occasional "mistake" episodes that swerve off-line, which produce exactly
// the bad records the paper's tubclean step must remove (E6).
#pragma once

#include "track/track.hpp"
#include "vehicle/car.hpp"

namespace autolearn::vehicle {

struct ExpertConfig {
  double lookahead = 0.55;       // pure-pursuit lookahead distance, m
  double target_speed = 1.6;     // cruise speed on straights, m/s
  double lat_accel_limit = 1.5;  // corner speed limit: v = sqrt(a*R), m/s^2
  double speed_kp = 1.2;         // throttle P gain on speed error
  double curvature_horizon = 1.0;  // how far ahead to scan for corners, m

  // Human-imperfection knobs (zero for a perfect demonstration).
  double steering_noise = 0.0;   // stddev added to the steering command
  double mistake_rate = 0.0;     // mistakes per simulated minute
  double mistake_duration = 0.8; // seconds a mistake episode lasts
  double mistake_magnitude = 0.7;  // steering offset during the episode
};

class ExpertPilot {
 public:
  /// car describes the chassis being driven (wheelbase and limits are used
  /// to convert geometry into normalized commands).
  ExpertPilot(const track::Track& track, ExpertConfig config, util::Rng rng,
              CarConfig car = CarConfig{});

  /// Computes the next command for the car's true state. dt is the control
  /// period (used to advance the mistake process).
  DriveCommand decide(const CarState& state, double dt);

  /// True while a mistake episode is active — the data generator tags these
  /// records so tests can verify tubclean finds them.
  bool in_mistake() const { return mistake_left_ > 0; }

  const ExpertConfig& config() const { return config_; }

 private:
  const track::Track& track_;
  ExpertConfig config_;
  CarConfig car_;
  util::Rng rng_;
  double mistake_left_ = 0.0;
  double mistake_sign_ = 1.0;
};

}  // namespace autolearn::vehicle
