#include "workflow/notebook.hpp"

#include <stdexcept>

namespace autolearn::workflow {

const char* to_string(CellStatus s) {
  switch (s) {
    case CellStatus::NotRun: return "not-run";
    case CellStatus::Ok: return "ok";
    case CellStatus::Error: return "error";
  }
  return "?";
}

Notebook::Notebook(std::string title) : title_(std::move(title)) {}

std::size_t Notebook::add_cell(std::string label,
                               std::function<std::string()> body) {
  if (!body) throw std::invalid_argument("notebook: empty cell body");
  Cell cell;
  cell.label = std::move(label);
  cell.body = std::move(body);
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

const Cell& Notebook::cell(std::size_t index) const {
  if (index >= cells_.size()) {
    throw std::out_of_range("notebook: bad cell index");
  }
  return cells_[index];
}

bool Notebook::run_cell(std::size_t index) {
  if (index >= cells_.size()) {
    throw std::out_of_range("notebook: bad cell index");
  }
  Cell& c = cells_[index];
  const std::uint64_t span =
      tracer_ ? tracer_->begin("workflow.cell", "workflow") : 0;
  const auto close_span = [&] {
    if (!tracer_) return;
    util::Json args = util::Json::object();
    args.set("notebook", util::Json(title_));
    args.set("cell", util::Json(c.label));
    args.set("status", util::Json(to_string(c.status)));
    tracer_->end(span, std::move(args));
  };
  try {
    c.output = c.body();
    c.status = CellStatus::Ok;
    close_span();
    if (metrics_) metrics_->counter("workflow.cells_ok").inc();
    if (on_success_) on_success_(c);
    return true;
  } catch (const std::exception& e) {
    c.output = std::string("error: ") + e.what();
    c.status = CellStatus::Error;
    close_span();
    if (metrics_) metrics_->counter("workflow.cells_error").inc();
    return false;
  }
}

std::size_t Notebook::run_all() {
  std::size_t ok = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (!run_cell(i)) break;
    ++ok;
  }
  return ok;
}

void Notebook::clear_state() {
  for (Cell& c : cells_) {
    c.status = CellStatus::NotRun;
    c.output.clear();
  }
}

std::size_t Notebook::cells_ok() const {
  std::size_t n = 0;
  for (const Cell& c : cells_) n += c.status == CellStatus::Ok;
  return n;
}

}  // namespace autolearn::workflow
