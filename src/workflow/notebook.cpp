#include "workflow/notebook.hpp"

#include <stdexcept>

#include "util/binio.hpp"

namespace autolearn::workflow {

const char* to_string(CellStatus s) {
  switch (s) {
    case CellStatus::NotRun: return "not-run";
    case CellStatus::Ok: return "ok";
    case CellStatus::Error: return "error";
  }
  return "?";
}

Notebook::Notebook(std::string title) : title_(std::move(title)) {}

std::size_t Notebook::add_cell(std::string label,
                               std::function<std::string()> body) {
  if (!body) throw std::invalid_argument("notebook: empty cell body");
  Cell cell;
  cell.label = std::move(label);
  cell.body = std::move(body);
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

const Cell& Notebook::cell(std::size_t index) const {
  if (index >= cells_.size()) {
    throw std::out_of_range("notebook: bad cell index");
  }
  return cells_[index];
}

bool Notebook::run_cell(std::size_t index) {
  if (index >= cells_.size()) {
    throw std::out_of_range("notebook: bad cell index");
  }
  Cell& c = cells_[index];
  const std::uint64_t span =
      tracer_ ? tracer_->begin("workflow.cell", "workflow") : 0;
  const auto close_span = [&] {
    if (!tracer_) return;
    util::Json args = util::Json::object();
    args.set("notebook", util::Json(title_));
    args.set("cell", util::Json(c.label));
    args.set("status", util::Json(to_string(c.status)));
    tracer_->end(span, std::move(args));
  };
  try {
    c.output = c.body();
    c.status = CellStatus::Ok;
    close_span();
    if (metrics_) metrics_->counter("workflow.cells_ok").inc();
    if (on_success_) on_success_(c);
    return true;
  } catch (const std::exception& e) {
    c.output = std::string("error: ") + e.what();
    c.status = CellStatus::Error;
    close_span();
    if (metrics_) metrics_->counter("workflow.cells_error").inc();
    return false;
  }
}

std::size_t Notebook::run_all() {
  if (ckpt_store_) {
    restored_cells_.clear();
    ckpt::restore_checkpoint(*ckpt_store_, ckpt_key_, *this);
  }
  std::size_t ok = 0;
  bool prefix_intact = true;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (prefix_intact && i < restored_cells_.size() &&
        restored_cells_[i].first == cells_[i].label) {
      // This cell completed in a previous (preempted) run: replay its
      // recorded output instead of re-executing the body.
      cells_[i].status = CellStatus::Ok;
      cells_[i].output = restored_cells_[i].second;
      ++cells_skipped_;
      ++ok;
      if (tracer_) {
        util::Json args = util::Json::object();
        args.set("notebook", util::Json(title_));
        args.set("cell", util::Json(cells_[i].label));
        tracer_->instant("workflow.cell_skipped", "workflow",
                         std::move(args));
      }
      if (metrics_) metrics_->counter("workflow.cells_skipped").inc();
      continue;
    }
    prefix_intact = false;  // only a leading, label-matching run is trusted
    if (!run_cell(i)) break;
    ++ok;
    if (ckpt_store_) checkpoint_progress();
  }
  return ok;
}

void Notebook::enable_checkpoints(ckpt::CheckpointStore& store,
                                  std::string key) {
  if (key.empty()) throw std::invalid_argument("notebook: empty ckpt key");
  ckpt_store_ = &store;
  ckpt_key_ = std::move(key);
}

void Notebook::checkpoint_progress() {
  ckpt::CheckpointInfo info;
  std::size_t done = 0;
  while (done < cells_.size() && cells_[done].status == CellStatus::Ok) {
    ++done;
  }
  info.step = done;
  info.note = std::string(checkpoint_kind()) + ":" + title_;
  ckpt::save_checkpoint(*ckpt_store_, ckpt_key_, *this, info);
}

void Notebook::save_state(std::ostream& os) {
  // Only the leading run of Ok cells is durable: run_all executes in
  // order, so a later Ok after a failure cannot be trusted as "done".
  std::size_t done = 0;
  while (done < cells_.size() && cells_[done].status == CellStatus::Ok) {
    ++done;
  }
  util::write_string(os, title_);
  util::write_pod(os, static_cast<std::uint64_t>(done));
  for (std::size_t i = 0; i < done; ++i) {
    util::write_string(os, cells_[i].label);
    util::write_string(os, cells_[i].output);
  }
}

void Notebook::load_state(std::istream& is) {
  std::string title;
  if (!util::read_string(is, title)) {
    throw std::runtime_error("notebook: truncated checkpoint");
  }
  std::uint64_t done = 0;
  if (!util::read_pod(is, done)) {
    throw std::runtime_error("notebook: truncated checkpoint");
  }
  std::vector<std::pair<std::string, std::string>> cells;
  cells.reserve(done);
  for (std::uint64_t i = 0; i < done; ++i) {
    std::pair<std::string, std::string> cell;
    if (!util::read_string(is, cell.first) ||
        !util::read_string(is, cell.second)) {
      throw std::runtime_error("notebook: truncated checkpoint");
    }
    cells.push_back(std::move(cell));
  }
  restored_cells_ = std::move(cells);
}

void Notebook::clear_state() {
  for (Cell& c : cells_) {
    c.status = CellStatus::NotRun;
    c.output.clear();
  }
  restored_cells_.clear();
  cells_skipped_ = 0;
}

std::size_t Notebook::cells_ok() const {
  std::size_t n = 0;
  for (const Cell& c : cells_) n += c.status == CellStatus::Ok;
  return n;
}

}  // namespace autolearn::workflow
