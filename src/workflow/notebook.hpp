// Jupyter-notebook workflow engine (§3.5: "combining [configuration] in
// Jupyter cells that can be executed with one click" gives the "zero to
// ready" pathway).
//
// A Notebook is an ordered list of cells; each cell wraps a callable that
// returns its text output. run_all executes cells in order and stops at
// the first failure, mirroring notebook semantics. Cell status and output
// are retained for inspection, and executions can be reported to a hub
// artifact for the §5 metrics.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace autolearn::workflow {

enum class CellStatus { NotRun, Ok, Error };

const char* to_string(CellStatus s);

struct Cell {
  std::string label;
  std::function<std::string()> body;
  CellStatus status = CellStatus::NotRun;
  std::string output;
};

class Notebook {
 public:
  explicit Notebook(std::string title);

  const std::string& title() const { return title_; }

  /// Appends a cell; returns its index.
  std::size_t add_cell(std::string label, std::function<std::string()> body);

  std::size_t cell_count() const { return cells_.size(); }
  const Cell& cell(std::size_t index) const;

  /// Runs one cell ("executing one cell in the corresponding Jupyter
  /// notebook"); captures output or the exception message. Returns success.
  bool run_cell(std::size_t index);

  /// Runs all cells in order, stopping at the first error. Returns the
  /// number of cells that ran successfully.
  std::size_t run_all();

  /// Resets all cells to NotRun.
  void clear_state();

  std::size_t cells_ok() const;
  bool all_ok() const { return cells_ok() == cells_.size(); }

  /// Callback invoked after every successful cell run (e.g. to record a
  /// hub cell-execution event).
  void set_on_cell_success(std::function<void(const Cell&)> cb) {
    on_success_ = std::move(cb);
  }

  /// Wires the observability sinks (either may be null): a
  /// "workflow.cell" span per executed cell (stage boundaries of the
  /// pipeline) plus ok/error counters.
  void instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }

 private:
  std::string title_;
  std::vector<Cell> cells_;
  std::function<void(const Cell&)> on_success_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace autolearn::workflow
