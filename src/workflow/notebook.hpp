// Jupyter-notebook workflow engine (§3.5: "combining [configuration] in
// Jupyter cells that can be executed with one click" gives the "zero to
// ready" pathway).
//
// A Notebook is an ordered list of cells; each cell wraps a callable that
// returns its text output. run_all executes cells in order and stops at
// the first failure, mirroring notebook semantics. Cell status and output
// are retained for inspection, and executions can be reported to a hub
// artifact for the §5 metrics.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace autolearn::workflow {

enum class CellStatus { NotRun, Ok, Error };

const char* to_string(CellStatus s);

struct Cell {
  std::string label;
  std::function<std::string()> body;
  CellStatus status = CellStatus::NotRun;
  std::string output;
};

class Notebook : public ckpt::Checkpointable {
 public:
  explicit Notebook(std::string title);

  const std::string& title() const { return title_; }

  /// Appends a cell; returns its index.
  std::size_t add_cell(std::string label, std::function<std::string()> body);

  std::size_t cell_count() const { return cells_.size(); }
  const Cell& cell(std::size_t index) const;

  /// Runs one cell ("executing one cell in the corresponding Jupyter
  /// notebook"); captures output or the exception message. Returns success.
  bool run_cell(std::size_t index);

  /// Runs all cells in order, stopping at the first error. Returns the
  /// number of cells that ran successfully (skipped-but-complete cells
  /// count as successes).
  ///
  /// With checkpoints enabled, run_all first restores the newest valid
  /// checkpoint and *skips* the leading cells it proves complete (matched
  /// by label, outputs replayed from the checkpoint) — a preempted
  /// notebook re-run repeats only the cells that had not finished. Every
  /// successful cell commits a new checkpoint generation.
  std::size_t run_all();

  /// Durable completion tracking through the checkpoint store under `key`.
  void enable_checkpoints(ckpt::CheckpointStore& store, std::string key);

  /// Cells skipped by run_all because a checkpoint already held them.
  std::size_t cells_skipped() const { return cells_skipped_; }

  const char* checkpoint_kind() const override { return "workflow.notebook"; }
  void save_state(std::ostream& os) override;
  void load_state(std::istream& is) override;

  /// Resets all cells to NotRun.
  void clear_state();

  std::size_t cells_ok() const;
  bool all_ok() const { return cells_ok() == cells_.size(); }

  /// Callback invoked after every successful cell run (e.g. to record a
  /// hub cell-execution event).
  void set_on_cell_success(std::function<void(const Cell&)> cb) {
    on_success_ = std::move(cb);
  }

  /// Wires the observability sinks (either may be null): a
  /// "workflow.cell" span per executed cell (stage boundaries of the
  /// pipeline) plus ok/error counters.
  void instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }

 private:
  void checkpoint_progress();

  std::string title_;
  std::vector<Cell> cells_;
  std::function<void(const Cell&)> on_success_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  ckpt::CheckpointStore* ckpt_store_ = nullptr;
  std::string ckpt_key_;
  /// (label, output) of the completed-cell prefix from the last restore.
  std::vector<std::pair<std::string, std::string>> restored_cells_;
  std::size_t cells_skipped_ = 0;
};

}  // namespace autolearn::workflow
