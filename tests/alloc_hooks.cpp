// Test-only global allocator instrumentation: every operator new variant
// forwards to malloc and ticks util::note_allocation(), so tests can
// assert a code region performed zero heap allocations
// (ml_plan_alloc_test). Linked ONLY into binaries that need the counter —
// never into the libraries — so production allocation behavior is
// untouched. malloc-backed on purpose: sanitizers interpose malloc/free,
// so ASan runs keep full tracking through these overrides.
#include <cstdlib>
#include <new>

#include "util/alloc_counter.hpp"

namespace {

void* counted_alloc(std::size_t size) {
  autolearn::util::note_allocation();
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  autolearn::util::note_allocation();
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
