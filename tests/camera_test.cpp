#include <gtest/gtest.h>

#include <cmath>

#include "camera/camera.hpp"
#include "camera/image.hpp"
#include "track/track.hpp"
#include "vehicle/car.hpp"

namespace autolearn::camera {
namespace {

vehicle::CarState state_at(const track::Track& t, double s,
                           double lateral = 0.0, double heading_off = 0.0) {
  vehicle::CarState st;
  const track::Vec2 c = t.position_at(s);
  const double h = t.heading_at(s);
  st.pos = c + track::heading_vec(h).perp() * lateral;
  st.heading = track::wrap_angle(h + heading_off);
  return st;
}

TEST(Image, ConstructionAndAccess) {
  Image img(4, 3, 0.5f);
  EXPECT_EQ(img.width(), 4u);
  EXPECT_EQ(img.height(), 3u);
  EXPECT_EQ(img.size(), 12u);
  EXPECT_FLOAT_EQ(img.at(2, 1), 0.5f);
  img.at(2, 1) = 0.9f;
  EXPECT_FLOAT_EQ(img.at_checked(2, 1), 0.9f);
  EXPECT_THROW(img.at_checked(4, 0), std::out_of_range);
  EXPECT_THROW(img.at_checked(0, 3), std::out_of_range);
  EXPECT_THROW(Image(0, 5), std::invalid_argument);
}

TEST(Image, MeanAndClamp) {
  Image img(2, 2);
  img.at(0, 0) = -1.0f;
  img.at(1, 0) = 2.0f;
  img.at(0, 1) = 0.5f;
  img.at(1, 1) = 0.5f;
  EXPECT_FLOAT_EQ(img.mean(), 0.5f);
  img.clamp();
  EXPECT_FLOAT_EQ(img.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.at(1, 0), 1.0f);
}

TEST(Camera, ConfigValidation) {
  CameraConfig bad;
  bad.width = 0;
  EXPECT_THROW(Camera(bad, util::Rng(1)), std::invalid_argument);
  bad = CameraConfig{};
  bad.fov_deg = 0;
  EXPECT_THROW(Camera(bad, util::Rng(1)), std::invalid_argument);
  bad = CameraConfig{};
  bad.mount_height = 0;
  EXPECT_THROW(Camera(bad, util::Rng(1)), std::invalid_argument);
}

TEST(Camera, RendersExpectedDimensions) {
  const track::Track t = track::Track::paper_oval();
  Camera cam(CameraConfig{}, util::Rng(1));
  const Image img = cam.render(t, state_at(t, 0.5));
  EXPECT_EQ(img.width(), CameraConfig{}.width);
  EXPECT_EQ(img.height(), CameraConfig{}.height);
}

TEST(Camera, TopRowsAreSky) {
  const track::Track t = track::Track::paper_oval();
  CameraConfig cfg;
  Camera cam(cfg, util::Rng(1));
  const Image img = cam.render(t, state_at(t, 0.5));
  // With an 18-degree downward pitch the top row is above the horizon.
  for (std::size_t x = 0; x < img.width(); ++x) {
    EXPECT_FLOAT_EQ(img.at(x, 0), cfg.sky);
  }
}

TEST(Camera, BottomRowSeesTrackSurfaceWhenCentered) {
  const track::Track t = track::Track::paper_oval();
  CameraConfig cfg;
  Camera cam(cfg, util::Rng(1));
  const Image img = cam.render(t, state_at(t, 0.5));
  // The pixel directly in front of a centered car looks at the surface.
  const float v = img.at(img.width() / 2, img.height() - 1);
  EXPECT_GT(v, cfg.floor);
  EXPECT_LT(v, cfg.tape);
}

TEST(Camera, SeesTapeSomewhere) {
  const track::Track t = track::Track::paper_oval();
  CameraConfig cfg;
  Camera cam(cfg, util::Rng(1));
  const Image img = cam.render(t, state_at(t, 0.5));
  float max_v = 0;
  for (float p : img.pixels()) max_v = std::max(max_v, p);
  // Tape is the brightest ground feature; near geometry is barely
  // attenuated, so some pixel should be close to the tape intensity.
  EXPECT_GT(max_v, 0.7f);
}

TEST(Camera, SimRenderIsDeterministic) {
  const track::Track t = track::Track::paper_oval();
  Camera cam1(CameraConfig{}, util::Rng(1));
  Camera cam2(CameraConfig{}, util::Rng(2));
  const Image a = cam1.render(t, state_at(t, 1.0));
  const Image b = cam2.render(t, state_at(t, 1.0));
  EXPECT_EQ(a.pixels(), b.pixels());
}

TEST(Camera, RealProfileAddsNoise) {
  const track::Track t = track::Track::paper_oval();
  CameraConfig cfg;
  cfg.noise = CameraNoise::real_car();
  Camera cam(cfg, util::Rng(3));
  const Image a = cam.render(t, state_at(t, 1.0));
  const Image b = cam.render(t, state_at(t, 1.0));
  EXPECT_NE(a.pixels(), b.pixels());
}

TEST(Camera, LateralOffsetShiftsImage) {
  // When the car sits left of center, the left tape line moves toward the
  // image center: the column-weighted brightness center shifts right.
  const track::Track t = track::Track::paper_oval();
  Camera cam(CameraConfig{}, util::Rng(1));
  auto brightness_center = [](const Image& img) {
    double num = 0, den = 0;
    for (std::size_t y = img.height() / 2; y < img.height(); ++y) {
      for (std::size_t x = 0; x < img.width(); ++x) {
        const double w = img.at(x, y);
        num += w * static_cast<double>(x);
        den += w;
      }
    }
    return num / den;
  };
  const Image centered = cam.render(t, state_at(t, 0.8, 0.0));
  const Image left = cam.render(t, state_at(t, 0.8, +0.15));
  const Image right = cam.render(t, state_at(t, 0.8, -0.15));
  EXPECT_GT(brightness_center(left), brightness_center(centered) - 5);
  // The two offset frames must differ measurably.
  double diff = 0;
  for (std::size_t i = 0; i < left.pixels().size(); ++i) {
    diff += std::abs(left.pixels()[i] - right.pixels()[i]);
  }
  EXPECT_GT(diff / static_cast<double>(left.size()), 0.01);
}

TEST(Camera, HeadingOffsetChangesView) {
  const track::Track t = track::Track::paper_oval();
  Camera cam(CameraConfig{}, util::Rng(1));
  const Image straight = cam.render(t, state_at(t, 0.8, 0.0, 0.0));
  const Image yawed = cam.render(t, state_at(t, 0.8, 0.0, 0.3));
  EXPECT_NE(straight.pixels(), yawed.pixels());
}

TEST(Camera, OffTrackViewIsMostlyFloor) {
  const track::Track t = track::Track::paper_oval();
  CameraConfig cfg;
  Camera cam(cfg, util::Rng(1));
  vehicle::CarState st;
  st.pos = {0.0, -5.0};  // well off the track
  st.heading = M_PI;     // facing away
  const Image img = cam.render(t, st);
  // Ground pixels should all be floor-valued (attenuated).
  int bright = 0;
  for (float p : img.pixels()) bright += (p > 0.3f);
  EXPECT_LT(bright, static_cast<int>(img.size() / 10));
}

TEST(Camera, CustomResolutionRespected) {
  const track::Track t = track::Track::paper_oval();
  CameraConfig cfg;
  cfg.width = 64;
  cfg.height = 48;
  Camera cam(cfg, util::Rng(1));
  const Image img = cam.render(t, state_at(t, 0.5));
  EXPECT_EQ(img.width(), 64u);
  EXPECT_EQ(img.height(), 48u);
}


// Property sweep: for every preset track and several poses, the rendered
// frame carries usable lane signal — some tape pixels, sky on top when the
// pitch allows, and determinism under the sim profile.
class CameraTrackSweep
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(CameraTrackSweep, FrameCarriesLaneSignal) {
  const auto [name, frac] = GetParam();
  const track::Track t = std::string(name) == "paper-oval"
                             ? track::Track::paper_oval()
                             : std::string(name) == "waveshare"
                                   ? track::Track::waveshare()
                                   : track::Track::square_loop();
  Camera cam(CameraConfig{}, util::Rng(9));
  const double s = frac * t.length();
  const Image img = cam.render(t, state_at(t, s));
  // Ground rows contain both surface and brighter tape-ish pixels.
  float lo = 1.0f, hi = 0.0f;
  for (std::size_t y = img.height() / 2; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      lo = std::min(lo, img.at(x, y));
      hi = std::max(hi, img.at(x, y));
    }
  }
  EXPECT_GT(hi - lo, 0.15f) << name << " s=" << s;
  // Deterministic under the sim profile.
  Camera cam2(CameraConfig{}, util::Rng(1234));
  EXPECT_EQ(cam2.render(t, state_at(t, s)).pixels(),
            cam.render(t, state_at(t, s)).pixels());
}

INSTANTIATE_TEST_SUITE_P(
    TrackPoses, CameraTrackSweep,
    ::testing::Combine(::testing::Values("paper-oval", "waveshare",
                                         "square-loop"),
                       ::testing::Values(0.05, 0.3, 0.62, 0.9)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, double>>& i) {
      std::string name = std::get<0>(i.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + std::to_string(static_cast<int>(
                               std::get<1>(i.param) * 100));
    });

}  // namespace
}  // namespace autolearn::camera
