// Chaos-engine integration: deterministic fault timelines, retry/backoff
// under injected faults, container failure paths, lease preemption, and the
// acceptance scenario — a mid-evaluation partition tripping the hybrid
// pilot's circuit breaker without killing the run.
#include <gtest/gtest.h>

#include "core/continuum.hpp"
#include "edge/container.hpp"
#include "edge/registry.hpp"
#include "fault/chaos.hpp"
#include "net/transfer.hpp"
#include "testbed/lease.hpp"
#include "track/track.hpp"

namespace autolearn {
namespace {

using fault::ChaosEngine;
using fault::FaultKind;
using fault::FaultSpec;

/// The car <-> campus <-> cloud topology every test uses.
net::Network make_continuum() {
  net::Network net;
  net.add_host("car-01");
  net.add_host("campus");
  net.add_host("chi-uc");
  net.add_duplex("car-01", "campus", net::Link::edge_wifi());
  net.add_duplex("campus", "chi-uc", net::Link::campus_to_cloud());
  return net;
}

// --- determinism -----------------------------------------------------------

TEST(Chaos, SameSeedAndPlanSameTimeline) {
  const std::vector<FaultSpec> plan = {
      {FaultKind::Partition, 2.0, 3.0, "chi-uc"},
      {FaultKind::LinkDegrade, 4.0, 2.0, "car-01", "campus", 4.0, 0.2, 0.5},
      {FaultKind::Partition, 9.0, 1.0, "campus"},
  };
  fault::ChaosReport reports[2];
  for (int run = 0; run < 2; ++run) {
    util::EventQueue queue;
    net::Network net = make_continuum();
    ChaosEngine engine(queue, /*seed=*/7);
    engine.attach_network(net);
    engine.inject_plan(plan);
    queue.run_until(20.0);
    reports[run] = engine.report();
  }
  EXPECT_TRUE(reports[0] == reports[1]);
  EXPECT_EQ(reports[0].injected, 3u);
  EXPECT_EQ(reports[0].recovered, 3u);
  EXPECT_DOUBLE_EQ(reports[0].partition_s, 4.0);
  EXPECT_DOUBLE_EQ(reports[0].degraded_link_s, 2.0);
  EXPECT_EQ(reports[0].count(FaultKind::Partition), 2u);
  EXPECT_EQ(reports[0].count(FaultKind::Partition, /*recoveries=*/true), 2u);
}

TEST(Chaos, RandomPlanIsSeedReproducible) {
  fault::RandomPlanOptions opt;
  opt.horizon_s = 30.0;
  opt.faults = 6;
  opt.partition_host = "chi-uc";
  opt.link_from = "car-01";
  opt.link_to = "campus";
  std::vector<FaultSpec> plans[2];
  for (int run = 0; run < 2; ++run) {
    util::EventQueue queue;
    ChaosEngine engine(queue, /*seed=*/123);
    plans[run] = engine.random_plan(opt);
  }
  ASSERT_EQ(plans[0].size(), 6u);
  ASSERT_EQ(plans[0].size(), plans[1].size());
  for (std::size_t i = 0; i < plans[0].size(); ++i) {
    EXPECT_EQ(plans[0][i].kind, plans[1][i].kind) << i;
    EXPECT_DOUBLE_EQ(plans[0][i].at, plans[1][i].at) << i;
    EXPECT_DOUBLE_EQ(plans[0][i].duration, plans[1][i].duration) << i;
    EXPECT_EQ(plans[0][i].target, plans[1][i].target) << i;
    if (i > 0) EXPECT_GE(plans[0][i].at, plans[0][i - 1].at);
  }
}

TEST(Chaos, InjectValidatesAttachmentAndTime) {
  util::EventQueue queue;
  ChaosEngine engine(queue);
  EXPECT_THROW(engine.inject({FaultKind::Partition, 1.0, 1.0, "chi-uc"}),
               std::logic_error);
  net::Network net = make_continuum();
  engine.attach_network(net);
  queue.schedule_at(5.0, [] {});
  queue.run_until(5.0);
  FaultSpec past{FaultKind::Partition, 1.0, 1.0, "chi-uc"};
  EXPECT_THROW(engine.inject(past), std::invalid_argument);
}

// --- network fault overlays ------------------------------------------------

TEST(Chaos, PartitionWindowRemovesAndRestoresRoutes) {
  util::EventQueue queue;
  net::Network net = make_continuum();
  ChaosEngine engine(queue, 1);
  engine.attach_network(net);
  engine.inject({FaultKind::Partition, 2.0, 3.0, "campus"});

  EXPECT_TRUE(net.route("car-01", "chi-uc").has_value());
  queue.run_until(2.5);
  EXPECT_TRUE(net.partitioned("campus"));
  EXPECT_FALSE(net.route("car-01", "chi-uc").has_value());
  try {
    util::Rng rng(1);
    net.sample_latency("car-01", "chi-uc", rng);
    FAIL() << "expected UnreachableError";
  } catch (const net::UnreachableError& e) {
    EXPECT_EQ(e.from(), "car-01");
    EXPECT_EQ(e.to(), "chi-uc");
  }
  queue.run_until(6.0);
  EXPECT_FALSE(net.partitioned("campus"));
  EXPECT_TRUE(net.route("car-01", "chi-uc").has_value());
}

TEST(Chaos, LinkDegradeScalesLatencyForTheWindow) {
  util::EventQueue queue;
  net::Network net = make_continuum();
  const double healthy = net.base_latency("car-01", "chi-uc");
  ChaosEngine engine(queue, 1);
  engine.attach_network(net);
  FaultSpec degrade{FaultKind::LinkDegrade, 1.0, 2.0, "campus", "chi-uc"};
  degrade.latency_mult = 10.0;
  engine.inject(degrade);
  queue.run_until(1.5);
  EXPECT_GT(net.base_latency("car-01", "chi-uc"), 2.0 * healthy);
  queue.run_until(4.0);
  EXPECT_DOUBLE_EQ(net.base_latency("car-01", "chi-uc"), healthy);
}

// --- transfers retry through fault windows --------------------------------

TEST(Chaos, TransferBacksOffThroughFlapAndCompletes) {
  util::EventQueue queue;
  net::Network net = make_continuum();
  ChaosEngine engine(queue, 1);
  engine.attach_network(net);
  // Every attempt inside [0, 4) drops; the link then heals.
  engine.inject({FaultKind::TransferFlap, 0.0, 4.0, "car-01", "campus"});

  fault::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_delay_s = 0.5;
  policy.multiplier = 2.0;
  policy.max_delay_s = 8.0;
  policy.jitter = fault::RetryPolicy::Jitter::None;
  net::TransferManager tm(net, queue, util::Rng(9), policy);

  net::TransferResult final_result;
  // Start from inside the event loop so the flap is already applied.
  queue.schedule_at(0.5, [&] {
    tm.start("car-01", "chi-uc", 300'000,
             [&](const net::TransferResult& r) { final_result = r; });
  });
  queue.run_until(60.0);

  EXPECT_EQ(final_result.status, net::TransferStatus::Done);
  EXPECT_GT(final_result.attempts, 1);
  ASSERT_EQ(final_result.attempt_starts.size(),
            static_cast<std::size_t>(final_result.attempts));
  // Consecutive attempts are separated by at least the deterministic
  // exponential backoff (plus the wasted half-transfer).
  double expected_backoff = policy.base_delay_s;
  for (std::size_t i = 1; i < final_result.attempt_starts.size(); ++i) {
    const double gap =
        final_result.attempt_starts[i] - final_result.attempt_starts[i - 1];
    EXPECT_GE(gap, expected_backoff) << "attempt " << i;
    expected_backoff =
        std::min(policy.max_delay_s, expected_backoff * policy.multiplier);
  }
  // The winning attempt started after the flap window closed.
  EXPECT_GE(final_result.attempt_starts.back(), 4.0);
  EXPECT_EQ(tm.completed(), 1u);
  EXPECT_EQ(tm.failed(), 0u);
}

TEST(Chaos, TransferExhaustsRetriesUnderPermanentFlap) {
  util::EventQueue queue;
  net::Network net = make_continuum();
  ChaosEngine engine(queue, 1);
  engine.attach_network(net);
  engine.inject({FaultKind::TransferFlap, 0.0, 0.0, "car-01", "campus"});

  fault::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_s = 0.1;
  policy.jitter = fault::RetryPolicy::Jitter::None;
  net::TransferManager tm(net, queue, util::Rng(9), policy);
  net::TransferResult final_result;
  queue.schedule_at(0.5, [&] {
    tm.start("car-01", "chi-uc", 300'000,
             [&](const net::TransferResult& r) { final_result = r; });
  });
  queue.run_until(60.0);
  EXPECT_EQ(final_result.status, net::TransferStatus::Failed);
  EXPECT_EQ(final_result.attempts, 3);
  EXPECT_EQ(tm.failed(), 1u);
}

// --- containers and devices ------------------------------------------------

struct ChaosEdgeFixture : public ::testing::Test {
  util::EventQueue queue;
  edge::EdgeRegistry registry{queue};

  void enroll(const std::string& name, const std::string& project) {
    registry.register_device(name, project);
    registry.flash_device(name);
    registry.boot_device(name);
    queue.run_until(queue.now() + registry.config().boot_delay_s +
                    registry.config().enroll_delay_s + 1);
  }
};

TEST_F(ChaosEdgeFixture, PartitionedPullFailsThenAutoRestartRecovers) {
  net::Network net;
  net.add_host("registry");
  net.add_host("pi-01");
  net.add_duplex("registry", "pi-01", net::Link::edge_wifi());

  edge::ContainerConfig cfg;
  cfg.auto_restart = true;
  cfg.restart_delay_s = 2.0;
  cfg.max_restarts = 3;
  cfg.pull_retry = fault::RetryPolicy::immediate(1);  // fail fast per pull
  edge::ContainerService svc(registry, queue, cfg);
  svc.use_network(net, "registry", util::Rng(4));
  enroll("pi-01", "CHI-edu-1");

  const double t0 = queue.now();
  ChaosEngine engine(queue, 1);
  engine.attach_network(net);
  // Registry is unreachable for 3 s starting now; the restart at t0+2 still
  // lands inside the window, the one after that succeeds.
  engine.inject({FaultKind::Partition, t0, 3.0, "registry"});
  queue.run_until(t0 + 0.5);

  edge::ContainerSpec spec = edge::ContainerSpec::autolearn_car();
  spec.image_bytes = 3'000'000;  // ~1 s over edge Wi-Fi
  int failed = 0;
  bool running = false;
  const std::uint64_t id = svc.launch(
      "pi-01", "CHI-edu-1", spec, [&](const edge::Container&) { running = true; },
      [&](const edge::Container& c) {
        ++failed;
        EXPECT_EQ(c.state, edge::ContainerState::Failed);
        EXPECT_FALSE(c.failure_reason.empty());
      });
  queue.run_until(t0 + 1.0);
  EXPECT_EQ(svc.container(id).state, edge::ContainerState::Failed);
  EXPECT_GE(failed, 1);
  EXPECT_FALSE(running);

  queue.run_until(t0 + 60.0);
  EXPECT_TRUE(running);
  EXPECT_EQ(svc.container(id).state, edge::ContainerState::Running);
  EXPECT_GE(svc.container(id).restarts, 1);
}

TEST_F(ChaosEdgeFixture, DeviceCrashKillsContainersAndReviveRestores) {
  enroll("pi-01", "CHI-edu-1");
  edge::ContainerService svc(registry, queue);  // legacy downlink pull path
  edge::ContainerSpec spec = edge::ContainerSpec::autolearn_car();
  spec.image_bytes = 4'000'000;
  const std::uint64_t id = svc.launch("pi-01", "CHI-edu-1", spec);
  queue.run_until(queue.now() + 30.0);
  ASSERT_EQ(svc.container(id).state, edge::ContainerState::Running);

  const double t0 = queue.now();
  ChaosEngine engine(queue, 1);
  engine.attach_registry(registry);
  engine.attach_containers(svc);
  engine.inject({FaultKind::DeviceCrash, t0 + 1.0, 50.0, "pi-01"});

  queue.run_until(t0 + 2.0);
  EXPECT_TRUE(registry.is_failed("pi-01"));
  EXPECT_EQ(svc.container(id).state, edge::ContainerState::Failed);
  EXPECT_EQ(svc.container(id).failure_reason, "device crashed");
  EXPECT_EQ(engine.report().count(FaultKind::DeviceCrash), 1u);
  EXPECT_EQ(engine.report().count(FaultKind::ContainerKill), 1u);

  queue.run_until(t0 + 200.0);  // crash window ends; device reboots
  EXPECT_FALSE(registry.is_failed("pi-01"));
  EXPECT_EQ(registry.device("pi-01").state, edge::DeviceState::Ready);
  EXPECT_EQ(engine.report().count(FaultKind::DeviceCrash, true), 1u);
}

// --- lease preemption ------------------------------------------------------

TEST(Chaos, LeasePreemptionFreesNodes) {
  const testbed::Inventory inv = testbed::Inventory::chameleon();
  testbed::LeaseManager lm(inv);
  testbed::LeaseRequest req;
  req.project_id = "CHI-edu-1";
  req.node_type = "gpu_v100";
  req.count = 4;
  req.start = 0.0;
  req.duration = 3600.0;
  const auto id = lm.request(req);
  ASSERT_TRUE(id);
  lm.tick(10.0);
  ASSERT_EQ(lm.lease(*id).status, testbed::LeaseStatus::Active);
  EXPECT_EQ(lm.available("gpu_v100", 10.0, 3600.0), 0u);

  util::EventQueue queue;
  ChaosEngine engine(queue, 1);
  engine.attach_leases(lm);
  queue.schedule_at(100.0, [] {});
  queue.run_until(99.0);
  FaultSpec preempt{FaultKind::LeasePreempt, 100.0, 0.0, "gpu_v100"};
  engine.inject(preempt);
  queue.run_until(101.0);

  EXPECT_EQ(lm.lease(*id).status, testbed::LeaseStatus::Preempted);
  EXPECT_LE(lm.lease(*id).end, 100.0);
  EXPECT_EQ(lm.preempted_count(), 1u);
  EXPECT_TRUE(lm.live_leases("gpu_v100", 101.0).empty());
  // Reclaimed nodes are immediately re-leasable.
  EXPECT_EQ(lm.available("gpu_v100", 101.0, 3600.0), 4u);
  EXPECT_TRUE(lm.request_on_demand("CHI-edu-2", "gpu_v100", 4, 101.0, 600.0));
  EXPECT_EQ(engine.report().count(FaultKind::LeasePreempt), 1u);
  // Preempting a finished lease is an error.
  EXPECT_THROW(lm.preempt(*id, 102.0), std::logic_error);
}

// --- hybrid pilot staleness boundary --------------------------------------

TEST(Chaos, HybridStalenessBoundaryIsInclusive) {
  ml::ModelConfig cfg;
  auto edge_model = ml::make_model(ml::ModelType::Inferred, cfg);
  auto cloud_model = ml::make_model(ml::ModelType::Linear, cfg);
  camera::Image frame(cfg.img_w, cfg.img_h, 0.5f);

  // dt = 1/16 s is exact in binary, so ages are exact multiples of dt. The
  // cloud delay lands in (2 dt, 3 dt]: each command matures two control
  // periods after its stamp and is used at age exactly 2 dt = 0.125 s.
  core::ContinuumOptions opt;
  opt.control_dt = 0.0625;
  opt.network_rtt_s = 0.15;
  opt.rtt_jitter_s = 0.0;
  opt.hybrid_staleness_s = 0.125;  // == the command age at use time
  core::HybridPilot at_boundary(*edge_model, *cloud_model, opt, util::Rng(3));
  for (int i = 0; i < 50; ++i) at_boundary.act(frame);
  EXPECT_GT(at_boundary.cloud_usage(), 0.9);  // <= semantics: still fresh

  opt.hybrid_staleness_s = 0.124;  // one hair under the arrival age
  core::HybridPilot too_stale(*edge_model, *cloud_model, opt, util::Rng(3));
  for (int i = 0; i < 50; ++i) too_stale.act(frame);
  EXPECT_DOUBLE_EQ(too_stale.cloud_usage(), 0.0);
}

TEST(Chaos, OffTrackResetPreservesBreakerAccounting) {
  ml::ModelConfig cfg;
  auto edge_model = ml::make_model(ml::ModelType::Inferred, cfg);
  auto cloud_model = ml::make_model(ml::ModelType::Linear, cfg);
  camera::Image frame(cfg.img_w, cfg.img_h, 0.5f);

  core::ContinuumOptions opt;
  opt.rtt_jitter_s = 0.0;
  opt.breaker.failure_threshold = 2;
  opt.breaker.open_duration_s = 100.0;  // stays open for the whole test
  opt.cloud_probe = [](double) { return false; };
  core::HybridPilot pilot(*edge_model, *cloud_model, opt, util::Rng(3));
  for (int i = 0; i < 5; ++i) pilot.act(frame);
  ASSERT_EQ(pilot.breaker().state(), fault::CircuitBreaker::State::Open);
  ASSERT_EQ(pilot.breaker().times_opened(), 1u);
  const fault::DegradationStats before = pilot.degradation();
  ASSERT_GT(before.denied_calls, 0u);

  // Off-track reset: the evaluator puts the car back on the line. That
  // local intervention must not heal the breaker or erase its accounting.
  pilot.reset();
  EXPECT_EQ(pilot.breaker().state(), fault::CircuitBreaker::State::Open);
  EXPECT_EQ(pilot.breaker().times_opened(), 1u);
  EXPECT_EQ(pilot.degradation().failovers, before.failovers);
  EXPECT_EQ(pilot.degradation().denied_calls, before.denied_calls);
  pilot.act(frame);  // still partitioned: denial accounting continues
  EXPECT_GT(pilot.degradation().denied_calls, before.denied_calls);
}

// --- acceptance: partition mid-evaluation ----------------------------------

/// Runs the Hybrid placement with a car<->cloud partition over
/// [4 s, 8 s) of a 16 s evaluation and returns the result.
eval::EvalResult run_partitioned_hybrid(std::uint64_t seed) {
  const track::Track t = track::Track::paper_oval();
  ml::ModelConfig cfg;
  auto main_model = ml::make_model(ml::ModelType::Linear, cfg);
  auto edge_model = ml::make_model(ml::ModelType::Inferred, cfg);

  net::Network net = make_continuum();
  util::EventQueue queue;
  ChaosEngine engine(queue, seed);
  engine.attach_network(net);
  engine.inject({FaultKind::Partition, 4.0, 4.0, "chi-uc"});

  core::ContinuumOptions copt;
  // RTT longer than one control period: the first command after the
  // breaker re-closes needs two periods to flow back, so the recovery
  // latency is observable (an RTT under dt recovers within the same step).
  copt.network_rtt_s = 0.08;
  copt.rtt_jitter_s = 0.0;
  copt.breaker.failure_threshold = 2;
  copt.breaker.open_duration_s = 0.5;
  copt.cloud_probe = [&net](double) {
    return net.route("car-01", "chi-uc").has_value();
  };

  eval::EvalOptions eopt;
  eopt.duration_s = 16.0;
  eopt.seed = seed;
  eopt.chaos_queue = &queue;
  return core::evaluate_placement(t, *main_model, *edge_model,
                                  core::Placement::Hybrid, copt, eopt);
}

TEST(Chaos, PartitionTripsBreakerAndRecovers) {
  const eval::EvalResult r = run_partitioned_hybrid(21);
  // The run survived the partition end to end.
  EXPECT_EQ(r.steps, 320u);
  EXPECT_GT(r.distance_m, 0.0);
  // The breaker tripped at least once (the initial trip plus any re-trips
  // from failed half-open probes inside the window).
  EXPECT_GE(r.degradation.failovers, 1u);
  EXPECT_GT(r.degradation.denied_calls, 0u);
  // Degraded for roughly the partition window: trip happens a couple of
  // control periods after 4 s, recovery at the first probe past 8 s.
  EXPECT_GT(r.degradation.degraded_time_s, 2.0);
  EXPECT_LT(r.degradation.degraded_time_s, 6.0);
  // Cloud commands steered the car outside the window...
  EXPECT_GT(r.degradation.cloud_usage, 0.5);
  // ...but not during it: 4 s of 16 s partitioned caps usage below 80%.
  EXPECT_LT(r.degradation.cloud_usage, 0.8);
  // Recovery latency: re-close to the first cloud-steered step.
  EXPECT_GT(r.degradation.recovery_latency_s, 0.0);
  EXPECT_LT(r.degradation.recovery_latency_s, 2.0);
}

TEST(Chaos, PartitionedHybridIsSeedReproducible) {
  const eval::EvalResult a = run_partitioned_hybrid(21);
  const eval::EvalResult b = run_partitioned_hybrid(21);
  EXPECT_DOUBLE_EQ(a.distance_m, b.distance_m);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.degradation.failovers, b.degradation.failovers);
  EXPECT_EQ(a.degradation.denied_calls, b.degradation.denied_calls);
  EXPECT_DOUBLE_EQ(a.degradation.degraded_time_s,
                   b.degradation.degraded_time_s);
  EXPECT_DOUBLE_EQ(a.degradation.cloud_usage, b.degradation.cloud_usage);
  EXPECT_DOUBLE_EQ(a.degradation.recovery_latency_s,
                   b.degradation.recovery_latency_s);
}

TEST(Chaos, HealthyHybridReportsNoDegradation) {
  const track::Track t = track::Track::paper_oval();
  ml::ModelConfig cfg;
  auto main_model = ml::make_model(ml::ModelType::Linear, cfg);
  auto edge_model = ml::make_model(ml::ModelType::Inferred, cfg);
  core::ContinuumOptions copt;
  copt.network_rtt_s = 0.02;
  copt.rtt_jitter_s = 0.0;
  eval::EvalOptions eopt;
  eopt.duration_s = 5.0;
  const eval::EvalResult r = core::evaluate_placement(
      t, *main_model, *edge_model, core::Placement::Hybrid, copt, eopt);
  EXPECT_EQ(r.degradation.failovers, 0u);
  EXPECT_EQ(r.degradation.denied_calls, 0u);
  EXPECT_DOUBLE_EQ(r.degradation.degraded_time_s, 0.0);
  EXPECT_GT(r.degradation.cloud_usage, 0.5);
}

}  // namespace
}  // namespace autolearn
