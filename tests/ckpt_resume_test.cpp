// Preemption-safe resume (ctest -L chaos): a fit killed mid-run and
// resumed from its durable checkpoint must continue *bitwise-identically*
// to an uninterrupted fit — same weights, same optimizer moments, same
// RNG streams, same loss history. Covered kill points: the epoch
// boundary, the mid-epoch batch boundary, and right after a GEMM-backed
// train_batch; covered models: linear, rnn, conv3d.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "fault/chaos.hpp"
#include "fault/preempt.hpp"
#include "ml/trainer.hpp"
#include "objectstore/objectstore.hpp"
#include "util/event_queue.hpp"
#include "util/rng.hpp"

namespace autolearn::ml {
namespace {

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.img_w = 32;
  cfg.img_h = 24;
  cfg.lr = 2e-3;
  return cfg;
}

/// Bright vertical band whose column encodes the steering label (same
/// task as ml_training_test).
std::vector<Sample> synthetic_dataset(std::size_t n, const ModelConfig& cfg,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t col = static_cast<std::size_t>(
        rng.uniform_int(2, static_cast<std::int64_t>(cfg.img_w) - 3));
    camera::Image img(cfg.img_w, cfg.img_h, 0.1f);
    for (std::size_t y = 0; y < cfg.img_h; ++y) {
      for (std::size_t dx = 0; dx < 3; ++dx) img.at(col - 1 + dx, y) = 0.9f;
    }
    Sample s;
    for (std::size_t f = 0; f < cfg.seq_len; ++f) s.frames.push_back(img);
    const float steer = static_cast<float>(
        2.0 * static_cast<double>(col) / (cfg.img_w - 1) - 1.0);
    for (std::size_t h = 0; h < cfg.history_len; ++h) {
      s.history.push_back(steer);
      s.history.push_back(0.5f);
    }
    s.steering = steer;
    s.throttle = 0.5f;
    out.push_back(std::move(s));
  }
  return out;
}

std::string full_state(DrivingModel& model) {
  std::ostringstream os;
  model.save_full(os);
  return os.str();
}

// 12 samples at batch 4: 3 batches/epoch, 3 epochs, 2 preemption ticks
// per batch -> 18 ticks total.
constexpr std::size_t kEpochs = 3;
constexpr std::size_t kBatch = 4;
constexpr std::size_t kBatchesTotal = 9;

TrainOptions base_options() {
  TrainOptions opt;
  opt.epochs = kEpochs;
  opt.batch_size = kBatch;
  opt.shuffle_seed = 21;
  return opt;
}

struct Fixture {
  ModelConfig cfg;
  std::vector<Sample> train;
  std::vector<Sample> val;

  explicit Fixture(ModelType type) : cfg(tiny_config()) {
    cfg.seed = 101;
    train = synthetic_dataset(12, cfg, 5);
    val = synthetic_dataset(4, cfg, 6);
    type_ = type;
  }

  std::unique_ptr<DrivingModel> fresh_model() const {
    return make_model(type_, cfg);
  }

  /// The reference run: no store, no kills.
  std::string uninterrupted(TrainResult* result = nullptr) const {
    auto model = fresh_model();
    const TrainResult r = fit(*model, train, val, base_options());
    if (result) *result = r;
    return full_state(*model);
  }

 private:
  ModelType type_;
};

/// Kills a fit at `fire_tick`, then "restarts the process": a fresh model
/// and Trainer resume from the store. Returns the resumed model's full
/// state; `resumed_result` reports what the second run actually did.
std::string kill_and_resume(const Fixture& fx, std::uint64_t fire_tick,
                            std::size_t checkpoint_every_batches,
                            TrainResult* resumed_result) {
  objectstore::ObjectStore os;
  ckpt::CheckpointStore store(os);

  TrainOptions opt = base_options();
  opt.checkpoint_store = &store;
  opt.checkpoint_key = "fit";
  opt.checkpoint_every_batches = checkpoint_every_batches;

  {
    fault::PreemptionToken token;
    token.arm(fire_tick);
    TrainOptions killed = opt;
    killed.preempt = &token;
    auto doomed = fx.fresh_model();
    Trainer trainer(*doomed, fx.train, fx.val, killed);
    EXPECT_THROW(trainer.fit(), fault::PreemptedError);
  }  // the killed process's memory is gone; only the store survives

  auto model = fx.fresh_model();
  Trainer trainer(*model, fx.train, fx.val, opt);
  const TrainResult r = trainer.fit();
  if (resumed_result) *resumed_result = r;
  return full_state(*model);
}

class ResumeBitwise : public ::testing::TestWithParam<ModelType> {};

TEST_P(ResumeBitwise, KilledAtTheEpochBoundary) {
  const Fixture fx(GetParam());
  TrainResult reference;
  const std::string expect = fx.uninterrupted(&reference);

  // Tick 7 is the first boundary tick of epoch 2: epoch 1 is durably
  // checkpointed, epoch 2 has done nothing.
  TrainResult resumed;
  const std::string got = kill_and_resume(fx, 7, 0, &resumed);

  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_epoch, 1u);
  EXPECT_EQ(resumed.batches_run, 2 * (kBatchesTotal / kEpochs));
  ASSERT_EQ(resumed.history.size(), reference.history.size());
  for (std::size_t e = 0; e < reference.history.size(); ++e) {
    EXPECT_EQ(resumed.history[e].train_loss, reference.history[e].train_loss);
    EXPECT_EQ(resumed.history[e].val_loss, reference.history[e].val_loss);
  }
  EXPECT_EQ(got, expect) << "resumed weights/optimizer/RNG diverged";
}

TEST_P(ResumeBitwise, KilledMidEpochAtABatchBoundary) {
  const Fixture fx(GetParam());
  const std::string expect = fx.uninterrupted();

  // Every-batch checkpoints; tick 9 is the boundary tick of epoch 2's
  // second batch, one batch past the last mid-epoch checkpoint.
  TrainResult resumed;
  const std::string got = kill_and_resume(fx, 9, 1, &resumed);

  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_epoch, 1u);
  EXPECT_EQ(resumed.batches_run, 5u);  // epoch 2 batches 2-3 + epoch 3
  EXPECT_EQ(got, expect);
}

TEST_P(ResumeBitwise, KilledMidBatchRightAfterTheGemm) {
  const Fixture fx(GetParam());
  const std::string expect = fx.uninterrupted();

  // Tick 10 lands right after epoch 2 batch 2's train_batch: that batch's
  // gradient step is lost with the process and must be recomputed.
  TrainResult resumed;
  const std::string got = kill_and_resume(fx, 10, 1, &resumed);

  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.batches_run, 5u);
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Models, ResumeBitwise,
                         ::testing::Values(ModelType::Linear, ModelType::Rnn,
                                           ModelType::Conv3d),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(ChaosPreemption, RandomizedKillResumesBitwiseAcrossSeeds) {
  const Fixture fx(ModelType::Linear);
  const std::string expect = fx.uninterrupted();

  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    objectstore::ObjectStore os;
    ckpt::CheckpointStore store(os);
    util::EventQueue queue;
    fault::ChaosEngine chaos(queue, seed);

    TrainOptions opt = base_options();
    opt.checkpoint_store = &store;
    opt.checkpoint_every_batches = 1;

    fault::PreemptionToken token;
    fault::PreemptPlanOptions window;
    window.min_tick = 1;
    window.max_tick = 2 * kBatchesTotal;  // anywhere in the fit
    const std::uint64_t planned = chaos.arm_preemption(token, window);
    EXPECT_GE(planned, window.min_tick);
    EXPECT_LE(planned, window.max_tick);

    std::uint64_t fired_at = 0;
    {
      TrainOptions killed = opt;
      killed.preempt = &token;
      auto doomed = fx.fresh_model();
      Trainer trainer(*doomed, fx.train, fx.val, killed);
      try {
        trainer.fit();
        FAIL() << "preemption never fired (seed " << seed << ")";
      } catch (const fault::PreemptedError& e) {
        fired_at = e.tick();
      }
    }
    EXPECT_EQ(fired_at, planned);
    EXPECT_EQ(chaos.report().preemptions, 1u);

    auto model = fx.fresh_model();
    Trainer trainer(*model, fx.train, fx.val, opt);
    const TrainResult resumed = trainer.fit();
    EXPECT_EQ(full_state(*model), expect) << "seed " << seed;

    // Work accounting: the killed run finished floor(tick/2) batches; the
    // checkpoints let the resume skip (total - batches_run) of them.
    const std::size_t done_before_kill =
        static_cast<std::size_t>(fired_at / 2);
    const std::size_t recovered = kBatchesTotal - resumed.batches_run;
    ASSERT_GE(done_before_kill, recovered);
    chaos.record_preempt_outcome(done_before_kill - recovered, recovered);
    EXPECT_EQ(chaos.report().batches_recovered, recovered);
    EXPECT_EQ(chaos.report().batches_lost, done_before_kill - recovered);
    EXPECT_EQ(chaos.report().count(fault::FaultKind::TrainPreempt), 1u);
    EXPECT_EQ(chaos.report().count(fault::FaultKind::TrainPreempt,
                                   /*recoveries=*/true),
              1u);
  }
}

TEST(ChaosPreemption, ResumeRejectsADifferentDataset) {
  const Fixture fx(ModelType::Linear);
  objectstore::ObjectStore os;
  ckpt::CheckpointStore store(os);

  TrainOptions opt = base_options();
  opt.checkpoint_store = &store;
  {
    fault::PreemptionToken token;
    token.arm(7);
    TrainOptions killed = opt;
    killed.preempt = &token;
    auto doomed = fx.fresh_model();
    Trainer trainer(*doomed, fx.train, fx.val, killed);
    EXPECT_THROW(trainer.fit(), fault::PreemptedError);
  }

  // Resuming over a dataset of a different size must fail loudly, not
  // silently train on misaligned shuffle indices.
  const std::vector<Sample> other = synthetic_dataset(8, fx.cfg, 99);
  auto model = fx.fresh_model();
  Trainer trainer(*model, other, fx.val, opt);
  EXPECT_THROW(trainer.fit(), std::invalid_argument);
}

}  // namespace
}  // namespace autolearn::ml
