// Durable checkpoint subsystem: envelope codec (CRC detection), store
// semantics (atomic staging/commit, generations, retention), corruption
// quarantine with fallback to the previous generation, transfer-routed
// uploads under network faults, and registry warm starts that serve
// without retraining.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "ckpt/checkpoint.hpp"
#include "fault/chaos.hpp"
#include "net/network.hpp"
#include "net/transfer.hpp"
#include "objectstore/objectstore.hpp"
#include "obs/metrics.hpp"
#include "serve/model_registry.hpp"
#include "serve/service.hpp"
#include "util/event_queue.hpp"

namespace autolearn::ckpt {
namespace {

// --- crc32 / envelope ------------------------------------------------------

TEST(Crc32, MatchesTheIeeeCheckValue) {
  // The standard CRC-32 check string.
  const std::string s = "123456789";
  EXPECT_EQ(crc32(s.data(), s.size()), 0xCBF43926u);
  EXPECT_EQ(crc32(s.data(), 0), 0u);
}

CheckpointInfo sample_info() {
  CheckpointInfo info;
  info.epoch = 3;
  info.step = 42;
  info.seed = 7;
  info.note = "ml.trainer";
  info.metrics["val_loss"] = 0.004;
  return info;
}

TEST(Envelope, RoundTripsPayloadAndHeader) {
  const std::string payload = "model-bytes\0with-nul-and-more";
  const auto bytes = encode_envelope(payload, sample_info());
  const DecodedEnvelope env = decode_envelope(bytes);
  EXPECT_EQ(env.payload, payload);
  EXPECT_EQ(env.info.epoch, 3u);
  EXPECT_EQ(env.info.step, 42u);
  EXPECT_EQ(env.info.seed, 7u);
  EXPECT_EQ(env.info.note, "ml.trainer");
}

TEST(Envelope, DetectsFlippedPayloadByte) {
  auto bytes = encode_envelope("the quick brown fox", sample_info());
  bytes.back() ^= 0x01;  // payload is the envelope tail
  try {
    decode_envelope(bytes);
    FAIL() << "corrupt envelope decoded";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointError::Code::CrcMismatch);
  }
}

TEST(Envelope, DetectsTruncation) {
  auto bytes = encode_envelope("some payload that gets cut", sample_info());
  bytes.resize(bytes.size() / 2);
  try {
    decode_envelope(bytes);
    FAIL() << "truncated envelope decoded";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointError::Code::Truncated);
  }
}

TEST(Envelope, RejectsForeignBytes) {
  const std::string junk = "PNG\x89 this is not a checkpoint";
  try {
    decode_envelope(std::vector<std::uint8_t>(junk.begin(), junk.end()));
    FAIL() << "junk decoded";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointError::Code::BadMagic);
  }
}

// --- store semantics -------------------------------------------------------

TEST(CheckpointStore, SavesGenerationsAndLoadsNewest) {
  objectstore::ObjectStore os;
  CheckpointStore store(os);
  CheckpointInfo info = sample_info();
  EXPECT_EQ(store.save("trainer", "v1", info), 1u);
  info.epoch = 4;
  EXPECT_EQ(store.save("trainer", "v2", info), 2u);

  const auto loaded = store.load_latest("trainer");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->payload, "v2");
  EXPECT_EQ(loaded->generation.generation, 2u);
  EXPECT_EQ(loaded->generation.info.epoch, 4u);
  EXPECT_EQ(loaded->quarantined_now, 0u);
  EXPECT_EQ(store.manifest("trainer").size(), 2u);
  // No staging residue after a synchronous commit.
  EXPECT_FALSE(os.get("checkpoints", "trainer#staging").has_value());
}

TEST(CheckpointStore, MissingKeyIsAMissNotACrash) {
  objectstore::ObjectStore os;
  CheckpointStore store(os);
  EXPECT_FALSE(store.load_latest("never-saved").has_value());
  EXPECT_TRUE(store.manifest("never-saved").empty());
}

TEST(CheckpointStore, RetentionKeepsLastK) {
  objectstore::ObjectStore os;
  StoreOptions opt;
  opt.keep_generations = 3;
  CheckpointStore store(os, opt);
  for (int i = 1; i <= 5; ++i) {
    store.save("trainer", "payload-" + std::to_string(i), sample_info());
  }
  const auto gens = store.manifest("trainer");
  ASSERT_EQ(gens.size(), 3u);
  EXPECT_EQ(gens.front().generation, 3u);
  EXPECT_EQ(gens.back().generation, 5u);
  // Dropped generations are gone from the objectstore too.
  EXPECT_FALSE(os.get("checkpoints", "trainer#gen-1").has_value());
  EXPECT_FALSE(os.get("checkpoints", "trainer#gen-2").has_value());
  EXPECT_TRUE(os.get("checkpoints", "trainer#gen-3").has_value());
}

TEST(CheckpointStore, RejectsZeroRetention) {
  objectstore::ObjectStore os;
  StoreOptions opt;
  opt.keep_generations = 0;
  EXPECT_THROW(CheckpointStore(os, opt), std::invalid_argument);
}

TEST(CheckpointStore, CorruptNewestIsQuarantinedAndPreviousServes) {
  objectstore::ObjectStore os;
  CheckpointStore store(os);
  obs::MetricsRegistry metrics;
  store.instrument(nullptr, &metrics);
  store.save("trainer", "good-generation", sample_info());
  store.save("trainer", "bad-generation", sample_info());

  // Flip one payload byte of the newest committed object in place.
  auto obj = os.get("checkpoints", "trainer#gen-2");
  ASSERT_TRUE(obj.has_value());
  auto bytes = obj->bytes;
  bytes.back() ^= 0x40;
  os.put("checkpoints", "trainer#gen-2", bytes, obj->metadata);

  const auto loaded = store.load_latest("trainer");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->payload, "good-generation");
  EXPECT_EQ(loaded->generation.generation, 1u);
  EXPECT_EQ(loaded->quarantined_now, 1u);
  EXPECT_EQ(store.quarantined(), 1u);

  // The corrupt generation is set aside, not deleted, and marked in the
  // manifest so the next load skips it without re-decoding.
  EXPECT_FALSE(os.get("checkpoints", "trainer#gen-2").has_value());
  EXPECT_TRUE(
      os.get("checkpoints", "trainer#gen-2#quarantined").has_value());
  const auto gens = store.manifest("trainer");
  ASSERT_EQ(gens.size(), 2u);
  EXPECT_TRUE(gens.back().quarantined);
  const auto again = store.load_latest("trainer");
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->payload, "good-generation");
  EXPECT_EQ(store.quarantined(), 1u);  // no double quarantine
  EXPECT_EQ(metrics.counter("ckpt.quarantined").value(), 1u);
}

TEST(CheckpointStore, TruncatedUploadFallsBackAGeneration) {
  objectstore::ObjectStore os;
  CheckpointStore store(os);
  store.save("trainer", "intact", sample_info());
  store.truncate_next_upload(0.4);  // torn upload: 40% of the bytes land
  store.save("trainer", "torn-upload-payload", sample_info());

  const auto loaded = store.load_latest("trainer");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->payload, "intact");
  EXPECT_EQ(store.quarantined(), 1u);
  EXPECT_TRUE(store.manifest("trainer").back().quarantined);
}

TEST(CheckpointStore, SpillsEnvelopesToLocalFiles) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "autolearn_ckpt_spill_test";
  fs::remove_all(dir);
  objectstore::ObjectStore os;
  StoreOptions opt;
  opt.spill_dir = dir.string();
  CheckpointStore store(os, opt);
  store.save("exp/run1", "payload", sample_info());
  EXPECT_TRUE(fs::exists(dir / "exp_run1.gen-1.ckpt"));
  fs::remove_all(dir);
}

// --- Checkpointable helpers ------------------------------------------------

struct Counter final : Checkpointable {
  std::uint64_t value = 0;
  const char* checkpoint_kind() const override { return "test.counter"; }
  void save_state(std::ostream& os) override {
    os.write(reinterpret_cast<const char*>(&value), sizeof value);
  }
  void load_state(std::istream& is) override {
    is.read(reinterpret_cast<char*>(&value), sizeof value);
    if (!is) throw std::runtime_error("counter: truncated");
  }
};

TEST(Checkpointable, SaveRestoreRoundTrip) {
  objectstore::ObjectStore os;
  CheckpointStore store(os);
  Counter a;
  a.value = 31337;
  save_checkpoint(store, "counter", a, {});
  Counter b;
  EXPECT_FALSE(restore_checkpoint(store, "other-key", b));
  EXPECT_TRUE(restore_checkpoint(store, "counter", b));
  EXPECT_EQ(b.value, 31337u);
  // The default note records the kind.
  EXPECT_EQ(store.manifest("counter").back().info.note, "test.counter");
}

// --- transfer-routed uploads ----------------------------------------------

struct TransferRig {
  util::EventQueue queue;
  net::Network network;
  net::TransferManager transfers{network, queue, util::Rng(5), 2};
  objectstore::ObjectStore os;
  CheckpointStore store{os};

  TransferRig() {
    network.add_host("edge");
    network.add_host("cloud");
    network.add_duplex("edge", "cloud", net::LinkSpec{});
    store.use_transfer(transfers, "edge", "cloud");
  }
};

TEST(CheckpointStore, TransferRoutedCommitLandsWhenTheQueueRuns) {
  TransferRig rig;
  rig.store.save("trainer", "shipped", sample_info());
  EXPECT_EQ(rig.store.pending_uploads(), 1u);
  // Staged but not committed: nothing visible yet.
  EXPECT_FALSE(rig.store.load_latest("trainer").has_value());
  rig.queue.run();
  EXPECT_EQ(rig.store.pending_uploads(), 0u);
  const auto loaded = rig.store.load_latest("trainer");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->payload, "shipped");
  EXPECT_EQ(rig.store.upload_failures(), 0u);
}

TEST(CheckpointStore, PartitionedUploadFailsAndPreviousStaysCurrent) {
  TransferRig rig;
  rig.store.save("trainer", "landed", sample_info());
  rig.queue.run();
  rig.network.partition_host("cloud");
  rig.store.save("trainer", "lost-in-transit", sample_info());
  rig.queue.run();
  EXPECT_EQ(rig.store.upload_failures(), 1u);
  const auto loaded = rig.store.load_latest("trainer");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->payload, "landed");
}

TEST(ChaosEngine, CheckpointTruncateFaultTearsTheNextUpload) {
  util::EventQueue queue;
  objectstore::ObjectStore os;
  CheckpointStore store(os);
  fault::ChaosEngine chaos(queue, 9);
  chaos.attach_checkpoints(store);
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::CheckpointTruncate;
  spec.at = 0.0;
  spec.truncate_frac = 0.3;
  chaos.inject(spec);
  queue.run();  // the fault arms the torn upload

  store.save("trainer", "lost-to-the-torn-upload", sample_info());
  // The torn envelope's CRC cannot match: it is quarantined at load time
  // and the key has no valid generation left.
  EXPECT_FALSE(store.load_latest("trainer").has_value());
  EXPECT_EQ(store.quarantined(), 1u);

  store.save("trainer", "healthy", sample_info());
  const auto loaded = store.load_latest("trainer");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->payload, "healthy");
  EXPECT_EQ(chaos.report().count(fault::FaultKind::CheckpointTruncate), 1u);
}

// --- registry warm start ---------------------------------------------------

std::shared_ptr<ml::DrivingModel> shared_model(std::uint64_t seed) {
  ml::ModelConfig cfg;
  cfg.seed = seed;
  return std::shared_ptr<ml::DrivingModel>(
      ml::make_model(ml::ModelType::Linear, cfg));
}

ml::Sample probe_sample() {
  ml::Sample s;
  s.frames.emplace_back(32, 24, 0.42f);
  return s;
}

TEST(ModelRegistry, WarmStartRestoresTheNewestValidBundle) {
  objectstore::ObjectStore os;
  CheckpointStore store(os);
  ml::ModelConfig cfg;
  cfg.seed = 77;

  serve::ModelRegistry source;
  source.publish(shared_model(77), "bootstrap");
  EXPECT_FALSE(
      serve::ModelRegistry().checkpoint_current(store, "model", cfg)
          .has_value());  // empty registry: nothing to persist
  const auto gen = source.checkpoint_current(store, "model", cfg);
  ASSERT_TRUE(gen.has_value());
  EXPECT_EQ(*gen, 1u);

  serve::ModelRegistry cold;
  EXPECT_FALSE(cold.warm_start(store, "no-such-key").has_value());
  const auto version = cold.warm_start(store, "model");
  ASSERT_TRUE(version.has_value());
  EXPECT_EQ(*version, 1u);
  const auto snap = cold.current();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->tag, "warm-start:gen-1");
  EXPECT_EQ(snap->model->type(), ml::ModelType::Linear);

  // The restored model computes exactly what the published one did.
  const ml::Sample probe = probe_sample();
  const ml::Prediction a = source.current()->model->predict(probe);
  const ml::Prediction b = snap->model->predict(probe);
  EXPECT_DOUBLE_EQ(a.steering, b.steering);
  EXPECT_DOUBLE_EQ(a.throttle, b.throttle);
}

TEST(ModelRegistry, WarmStartSkipsACorruptNewestGeneration) {
  objectstore::ObjectStore os;
  CheckpointStore store(os);
  ml::ModelConfig cfg;
  cfg.seed = 5;
  serve::ModelRegistry source;
  source.publish(shared_model(5), "v1");
  source.checkpoint_current(store, "model", cfg);
  source.publish(shared_model(6), "v2");
  source.checkpoint_current(store, "model", cfg);

  auto obj = os.get("checkpoints", "model#gen-2");
  ASSERT_TRUE(obj.has_value());
  auto bytes = obj->bytes;
  bytes[bytes.size() / 2] ^= 0xff;
  os.put("checkpoints", "model#gen-2", bytes, obj->metadata);

  serve::ModelRegistry cold;
  const auto version = cold.warm_start(store, "model");
  ASSERT_TRUE(version.has_value());
  EXPECT_EQ(cold.current()->tag, "warm-start:gen-1");
  EXPECT_EQ(store.quarantined(), 1u);
}

TEST(FleetService, ServesFirstRequestFromAWarmStartWithoutRetraining) {
  objectstore::ObjectStore os;
  CheckpointStore store(os);
  ml::ModelConfig cfg;
  cfg.seed = 42;
  {
    serve::ModelRegistry trained;
    trained.publish(shared_model(42), "trained");
    trained.checkpoint_current(store, "fleet-model", cfg);
  }  // process "restarts": only the checkpoint survives

  util::EventQueue queue;
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.warm_start(store, "fleet-model").has_value());

  serve::FleetOptions opt;
  opt.cars = 2;
  opt.duration_s = 0.5;
  opt.mean_interarrival_s = 0.05;
  opt.batcher.max_batch = 4;
  opt.batcher.max_delay_s = 0.01;
  opt.placement = core::Placement::OnDevice;
  opt.seed = 3;
  serve::FleetService service(queue, registry, opt);
  const serve::ServeReport report = service.run();
  EXPECT_GT(report.requests, 0u);
  EXPECT_EQ(report.requests, report.completed + report.shed);
  ASSERT_FALSE(report.records.empty());
  // Every completion was served by the warm-started version 1 model.
  EXPECT_EQ(report.requests_by_version.size(), 1u);
  EXPECT_EQ(report.requests_by_version.begin()->first, 1u);
}

}  // namespace
}  // namespace autolearn::ckpt
