// Golden-trace regression for the preempt-resume scenario
// (ctest -L trace, also labelled ckpt).
//
// One fit is killed mid-epoch by a chaos-armed preemption token, then a
// fresh trainer resumes it from the durable checkpoint store. The trace is
// the behavioral fingerprint of the whole recovery path — checkpoint save
// spans and commit instants, the kill instant, the restore span on resume,
// and the epoch spans on both sides of the kill. Any drift in checkpoint
// cadence, kill placement, or resume position moves an event and fails the
// byte comparison.
//
// Regenerate after an *intended* behavioral change with:
//   AUTOLEARN_REGEN_GOLDEN=1 ./ckpt_trace_test
// and commit the updated tests/golden/ file with the change that moved it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "fault/chaos.hpp"
#include "fault/preempt.hpp"
#include "ml/trainer.hpp"
#include "objectstore/objectstore.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/event_queue.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace autolearn {
namespace {

#ifndef AUTOLEARN_GOLDEN_DIR
#error "ckpt_trace_test requires AUTOLEARN_GOLDEN_DIR"
#endif

ml::ModelConfig tiny_config() {
  ml::ModelConfig cfg;
  cfg.img_w = 32;
  cfg.img_h = 24;
  cfg.lr = 2e-3;
  cfg.seed = 101;
  return cfg;
}

std::vector<ml::Sample> synthetic_dataset(std::size_t n,
                                          const ml::ModelConfig& cfg,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ml::Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t col = static_cast<std::size_t>(
        rng.uniform_int(2, static_cast<std::int64_t>(cfg.img_w) - 3));
    camera::Image img(cfg.img_w, cfg.img_h, 0.1f);
    for (std::size_t y = 0; y < cfg.img_h; ++y) {
      for (std::size_t dx = 0; dx < 3; ++dx) img.at(col - 1 + dx, y) = 0.9f;
    }
    ml::Sample s;
    for (std::size_t f = 0; f < cfg.seq_len; ++f) s.frames.push_back(img);
    s.steering = static_cast<float>(
        2.0 * static_cast<double>(col) / (cfg.img_w - 1) - 1.0);
    s.throttle = 0.5f;
    out.push_back(std::move(s));
  }
  return out;
}

struct PreemptOut {
  std::string trace;
  std::string metrics;
  std::uint64_t planned_tick = 0;
  ml::TrainResult resumed;
  std::size_t quarantined = 0;
};

/// A 3-epoch linear fit with every-batch checkpoints is killed at a
/// chaos-drawn tick, then resumed to completion by a fresh trainer.
PreemptOut run_preempt_resume(std::uint64_t seed) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  util::EventQueue queue;
  objectstore::ObjectStore os;
  ckpt::CheckpointStore store(os);
  store.instrument(&tracer, &metrics);
  fault::ChaosEngine chaos(queue, seed);
  chaos.attach_checkpoints(store);
  chaos.instrument(&tracer, &metrics);

  const ml::ModelConfig cfg = tiny_config();
  const std::vector<ml::Sample> train = synthetic_dataset(12, cfg, 5);
  const std::vector<ml::Sample> val = synthetic_dataset(4, cfg, 6);

  ml::TrainOptions opt;
  opt.epochs = 3;
  opt.batch_size = 4;
  opt.shuffle_seed = 21;
  opt.tracer = &tracer;
  opt.metrics = &metrics;
  opt.checkpoint_store = &store;
  opt.checkpoint_key = "fit";
  opt.checkpoint_every_batches = 1;

  PreemptOut out;
  fault::PreemptionToken token;
  fault::PreemptPlanOptions window;
  window.min_tick = 5;
  window.max_tick = 14;
  out.planned_tick = chaos.arm_preemption(token, window);

  {
    ml::TrainOptions killed = opt;
    killed.preempt = &token;
    auto doomed = ml::make_model(ml::ModelType::Linear, cfg);
    ml::Trainer trainer(*doomed, train, val, killed);
    try {
      trainer.fit();
      throw std::logic_error("preemption never fired");
    } catch (const fault::PreemptedError&) {
    }
  }

  auto model = ml::make_model(ml::ModelType::Linear, cfg);
  ml::Trainer trainer(*model, train, val, opt);
  out.resumed = trainer.fit();
  const std::size_t total_batches = 9;
  const std::size_t recovered = total_batches - out.resumed.batches_run;
  chaos.record_preempt_outcome(
      static_cast<std::size_t>(out.planned_tick / 2) - recovered, recovered);

  out.trace = tracer.dump();
  out.metrics = metrics.to_json().dump();
  out.quarantined = store.quarantined();
  return out;
}

std::string golden_path() {
  return std::string(AUTOLEARN_GOLDEN_DIR) + "/ckpt_preempt_resume.trace.json";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(GoldenCkptTrace, PreemptResumeMatchesSnapshot) {
  const PreemptOut run = run_preempt_resume(17);
  if (std::getenv("AUTOLEARN_REGEN_GOLDEN")) {
    std::ofstream out(golden_path(), std::ios::binary);
    out << run.trace;
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  EXPECT_EQ(run.trace, read_file(golden_path()))
      << "Canonical preempt-resume trace drifted from tests/golden/. If "
         "the behavioral change is intended, run AUTOLEARN_REGEN_GOLDEN=1 "
         "./ckpt_trace_test and commit the new snapshot.";
}

TEST(GoldenCkptTrace, ScenarioCoversTheCheckpointSpanCatalog) {
  const PreemptOut run = run_preempt_resume(17);
  for (const char* needle :
       {"ckpt.save", "ckpt.commit", "ckpt.restore", "chaos.train-preempt",
        "ml.fit", "ml.epoch"}) {
    EXPECT_NE(run.trace.find(needle), std::string::npos)
        << "missing " << needle;
  }
  // The scenario must actually kill and recover.
  EXPECT_TRUE(run.resumed.resumed);
  EXPECT_EQ(run.resumed.epochs_run, 3u);
  EXPECT_EQ(run.quarantined, 0u);
  EXPECT_GT(run.resumed.checkpoints_saved, 0u);
}

TEST(CkptTraceDeterminism, SameSeedSameBytes) {
  const PreemptOut a = run_preempt_resume(17);
  const PreemptOut b = run_preempt_resume(17);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.planned_tick, b.planned_tick);

  // A different chaos seed that draws a different kill tick must move the
  // trace (a colliding draw would legitimately reproduce it, so scan).
  for (std::uint64_t seed = 18; seed < 30; ++seed) {
    const PreemptOut c = run_preempt_resume(seed);
    if (c.planned_tick == a.planned_tick) continue;
    EXPECT_NE(a.trace, c.trace);
    return;
  }
  FAIL() << "12 seeds drew the same kill tick";
}

TEST(CkptTraceDeterminism, ExportIsValidChromeTraceEventFormat) {
  const PreemptOut run = run_preempt_resume(17);
  const util::Json parsed = util::Json::parse(run.trace);
  const auto& events = parsed.at("traceEvents").as_array();
  ASSERT_GT(events.size(), 10u);
  for (const util::Json& e : events) {
    ASSERT_TRUE(e.contains("name"));
    ASSERT_TRUE(e.contains("ph"));
    ASSERT_TRUE(e.contains("ts"));
  }
}

}  // namespace
}  // namespace autolearn
