// Tests for the competition engine, the speed governor (the Fowler SC'23
// poster's reliability idea), and the pre-trained model zoo.
#include <gtest/gtest.h>

#include "core/competition.hpp"
#include "core/model_zoo.hpp"
#include "core/speed_governor.hpp"
#include "cv/pilots.hpp"
#include "ml/trainer.hpp"
#include "track/track.hpp"

namespace autolearn::core {
namespace {

/// Deterministic dummy pilot with a fixed command.
class FixedPilot : public eval::Pilot {
 public:
  FixedPilot(double steering, double throttle, std::string name)
      : cmd_{steering, throttle}, name_(std::move(name)) {}
  vehicle::DriveCommand act(const camera::Image&) override { return cmd_; }
  void reset() override {}
  std::string name() const override { return name_; }

 private:
  vehicle::DriveCommand cmd_;
  std::string name_;
};

// --- competition -------------------------------------------------------------

TEST(Competition, Validation) {
  Competition comp;
  EXPECT_THROW(comp.add_entrant({"", nullptr}), std::invalid_argument);
  EXPECT_THROW(comp.run(), std::logic_error);  // nothing registered
  cv::LineFollowPilot pilot;
  comp.add_entrant({"team-a", [&]() -> eval::Pilot& { return pilot; }});
  EXPECT_THROW(
      comp.add_entrant({"team-a", [&]() -> eval::Pilot& { return pilot; }}),
      std::invalid_argument);  // duplicate
  EXPECT_THROW(comp.add_round(nullptr, {}), std::invalid_argument);
  EXPECT_THROW(comp.run(), std::logic_error);  // no rounds
}

TEST(Competition, BetterPilotWinsSpeedAccuracy) {
  const track::Track oval = track::Track::paper_oval();
  Competition comp(ScoringRule::SpeedAccuracy);
  cv::LineFollowPilot good;
  FixedPilot bad(0.0, 0.8, "straight");
  comp.add_entrant({"line-followers", [&]() -> eval::Pilot& { return good; }});
  comp.add_entrant({"full-send", [&]() -> eval::Pilot& { return bad; }});
  eval::EvalOptions opt;
  opt.duration_s = 30.0;
  comp.add_round(&oval, opt);
  const auto standings = comp.run();
  ASSERT_EQ(standings.size(), 2u);
  EXPECT_EQ(standings[0].team, "line-followers");
  EXPECT_GT(standings[0].total_score, standings[1].total_score);
  EXPECT_LT(standings[0].total_errors, standings[1].total_errors);
  EXPECT_EQ(comp.round_results().size(), 2u);
}

TEST(Competition, GeneralistUsesRankSum) {
  const track::Track oval = track::Track::paper_oval();
  const track::Track square = track::Track::square_loop();
  Competition comp(ScoringRule::Generalist);
  cv::LineFollowPilot a, b;
  cv::LineFollowConfig slow_cfg;
  slow_cfg.throttle = 0.25;
  cv::LineFollowPilot slow(slow_cfg);
  comp.add_entrant({"fast", [&]() -> eval::Pilot& { return a; }});
  comp.add_entrant({"slow", [&]() -> eval::Pilot& { return slow; }});
  eval::EvalOptions opt;
  opt.duration_s = 20.0;
  comp.add_round(&oval, opt);
  comp.add_round(&square, opt);
  const auto standings = comp.run();
  ASSERT_EQ(standings.size(), 2u);
  // The consistently faster pilot has the lower rank sum.
  EXPECT_EQ(standings[0].team, "fast");
  EXPECT_LT(standings[0].rank_sum, standings[1].rank_sum);
  EXPECT_EQ(standings[0].rounds, 2u);
}

// --- speed governor -------------------------------------------------------------

TEST(SpeedGovernor, Validation) {
  cv::LineFollowPilot inner;
  GovernorConfig bad;
  bad.target_speed = 0;
  EXPECT_THROW(SpeedGovernedPilot(inner, bad), std::invalid_argument);
}

TEST(SpeedGovernor, TracksTargetSpeed) {
  const track::Track t = track::Track::paper_oval();
  cv::LineFollowPilot inner;
  GovernorConfig cfg;
  cfg.target_speed = 1.1;
  SpeedGovernedPilot pilot(inner, cfg);
  eval::EvalOptions opt;
  opt.duration_s = 45.0;
  const eval::EvalResult r = run_governed_evaluation(t, pilot, opt);
  EXPECT_GT(r.laps, 1.0);
  // Mean speed lands near the target (start-up transient drags it down a
  // little).
  EXPECT_NEAR(r.mean_speed, cfg.target_speed, 0.15);
}

TEST(SpeedGovernor, ImprovesLapConsistency) {
  const track::Track t = track::Track::paper_oval();
  eval::EvalOptions opt;
  opt.duration_s = 120.0;
  opt.real_profiles = true;  // noise is what makes laps inconsistent

  cv::LineFollowPilot raw;
  const eval::EvalResult ungoverned = eval::run_evaluation(t, raw, opt);

  cv::LineFollowPilot inner;
  GovernorConfig cfg;
  cfg.target_speed = 1.05;
  SpeedGovernedPilot governed(inner, cfg);
  const eval::EvalResult governed_r = run_governed_evaluation(t, governed, opt);

  ASSERT_GE(ungoverned.lap_times.size(), 2u);
  ASSERT_GE(governed_r.lap_times.size(), 2u);
  // The governed car's lap times are at least as consistent.
  EXPECT_LE(lap_time_stddev(governed_r), lap_time_stddev(ungoverned) + 0.05);
}

TEST(SpeedGovernor, LapTimeStddev) {
  eval::EvalResult r;
  EXPECT_EQ(lap_time_stddev(r), 0.0);
  r.lap_times = {10.0};
  EXPECT_EQ(lap_time_stddev(r), 0.0);
  r.lap_times = {10.0, 12.0};
  EXPECT_NEAR(lap_time_stddev(r), std::sqrt(2.0), 1e-9);
}

TEST(SpeedGovernor, NameAndReset) {
  cv::LineFollowPilot inner;
  SpeedGovernedPilot pilot(inner);
  EXPECT_EQ(pilot.name(), "line-follow+governor");
  pilot.set_measured_speed(2.0);
  pilot.reset();
  // After reset the governor assumes a standing start again.
  camera::Image frame(32, 24, 0.4f);
  const vehicle::DriveCommand cmd = pilot.act(frame);
  EXPECT_GT(cmd.throttle, 0.0);  // accelerating from rest toward the target
}

// --- model zoo -----------------------------------------------------------------

TEST(ModelZoo, PublishListLoadRoundTrip) {
  objectstore::ObjectStore store;
  ModelZoo zoo(store);
  auto model = ml::make_model(ml::ModelType::Inferred);
  const auto v = zoo.publish("inferred-oval", *model, "paper-oval", 0.004,
                             0.065);
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(zoo.contains("inferred-oval"));
  EXPECT_FALSE(zoo.contains("ghost"));

  const auto entries = zoo.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].type, ml::ModelType::Inferred);
  EXPECT_EQ(entries[0].track, "paper-oval");
  EXPECT_NEAR(entries[0].steering_mae, 0.065, 1e-9);

  auto restored = zoo.load("inferred-oval");
  EXPECT_EQ(restored->type(), ml::ModelType::Inferred);
  // Same weights -> same predictions.
  camera::Image frame(32, 24, 0.5f);
  ml::Sample s;
  s.frames = {frame};
  EXPECT_NEAR(restored->predict(s).steering, model->predict(s).steering,
              1e-6);
}

TEST(ModelZoo, RepublishBumpsVersion) {
  objectstore::ObjectStore store;
  ModelZoo zoo(store);
  auto model = ml::make_model(ml::ModelType::Linear);
  EXPECT_EQ(zoo.publish("m", *model, "oval", 0.1, 0.1), 1u);
  EXPECT_EQ(zoo.publish("m", *model, "oval", 0.05, 0.08), 2u);
  EXPECT_EQ(zoo.list().size(), 1u);
  EXPECT_EQ(zoo.list()[0].version, 2u);
}

TEST(ModelZoo, FiltersAndBestForTrack) {
  objectstore::ObjectStore store;
  ModelZoo zoo(store);
  auto linear = ml::make_model(ml::ModelType::Linear);
  auto inferred = ml::make_model(ml::ModelType::Inferred);
  zoo.publish("lin-oval", *linear, "paper-oval", 0.01, 0.08);
  zoo.publish("inf-oval", *inferred, "paper-oval", 0.02, 0.06);
  zoo.publish("lin-wave", *linear, "waveshare", 0.03, 0.09);

  EXPECT_EQ(zoo.list_by_type(ml::ModelType::Linear).size(), 2u);
  const auto best = zoo.best_for_track("paper-oval");
  ASSERT_TRUE(best);
  EXPECT_EQ(best->name, "inf-oval");  // lower MAE wins
  EXPECT_FALSE(zoo.best_for_track("mars").has_value());
  EXPECT_THROW(zoo.load("nope"), std::invalid_argument);
}

TEST(ModelZoo, ReusesExistingContainer) {
  objectstore::ObjectStore store;
  store.create_container("models");
  EXPECT_NO_THROW(ModelZoo zoo(store));  // no duplicate-container throw
}

}  // namespace
}  // namespace autolearn::core
