#include <gtest/gtest.h>

#include <filesystem>

#include "core/continuum.hpp"
#include "core/pathway.hpp"
#include "core/pipeline.hpp"
#include "core/twin.hpp"
#include "data/collector.hpp"
#include "data/dataset.hpp"
#include "data/tub.hpp"
#include "ml/trainer.hpp"

namespace autolearn::core {
namespace {

namespace fs = std::filesystem;

fs::path temp_workdir(const std::string& tag) {
  const fs::path p = fs::temp_directory_path() /
                     ("autolearn_core_" + tag + "_" + std::to_string(getpid()));
  fs::remove_all(p);
  fs::create_directories(p);
  return p;
}

// --- pathway ---------------------------------------------------------------

TEST(Pathway, ThreePathsHaveFourPhases) {
  for (PathwayKind k :
       {PathwayKind::Regular, PathwayKind::Classroom, PathwayKind::Digital}) {
    const PathwayPlan plan = make_pathway(k);
    EXPECT_EQ(plan.phases.size(), 4u) << to_string(k);
    EXPECT_FALSE(plan.audience.empty());
  }
}

TEST(Pathway, DigitalPathNeedsNoCar) {
  EXPECT_FALSE(make_pathway(PathwayKind::Digital).needs_physical_car());
  EXPECT_TRUE(make_pathway(PathwayKind::Regular).needs_physical_car());
  EXPECT_TRUE(make_pathway(PathwayKind::Classroom).needs_physical_car());
}

TEST(Pathway, NotebookMaterialization) {
  const PathwayPlan plan = make_pathway(PathwayKind::Digital);
  int runs = 0;
  workflow::Notebook nb = to_notebook(plan, [&](const PhasePlan& p) {
    ++runs;
    return "done: " + p.phase;
  });
  EXPECT_EQ(nb.cell_count(), 4u);
  EXPECT_EQ(nb.run_all(), 4u);
  EXPECT_EQ(runs, 4);
  EXPECT_NE(nb.cell(0).output.find("data collection"), std::string::npos);
  EXPECT_THROW(to_notebook(plan, nullptr), std::invalid_argument);
}

// --- pipeline ---------------------------------------------------------------

TEST(Pipeline, EndToEndSampleDataset) {
  const track::Track t = track::Track::paper_oval();
  PipelineOptions opt;
  opt.collect_duration_s = 60.0;
  opt.model = ml::ModelType::Inferred;
  opt.train.epochs = 6;
  opt.eval.duration_s = 30.0;
  Pipeline pipe(t, opt, temp_workdir("e2e"));
  const PipelineReport report = pipe.run();
  EXPECT_EQ(report.collect.records, 1200u);
  EXPECT_GT(report.train_samples, 900u);
  EXPECT_GT(report.val_samples, 100u);
  EXPECT_LT(report.steering_mae, 0.3);
  EXPECT_GT(report.simulated_gpu_seconds, 0.0);
  EXPECT_GT(report.eval_result.distance_m, 1.0);
  EXPECT_NO_THROW(pipe.model());
}

TEST(Pipeline, CleaningRemovesMistakes) {
  const track::Track t = track::Track::paper_oval();
  PipelineOptions opt;
  opt.data_path = data::DataPath::Simulator;
  opt.collect_duration_s = 60.0;
  opt.driver.mistake_rate = 20.0;
  opt.model = ml::ModelType::Inferred;
  opt.train.epochs = 2;
  opt.eval.duration_s = 5.0;
  Pipeline pipe(t, opt, temp_workdir("clean"));
  const PipelineReport report = pipe.run();
  EXPECT_GT(report.collect.mistake_records, 0u);
  EXPECT_GE(report.clean.deleted, report.collect.mistake_records);
}

TEST(Pipeline, ModelBeforeRunThrows) {
  const track::Track t = track::Track::paper_oval();
  Pipeline pipe(t, PipelineOptions{}, temp_workdir("norun"));
  EXPECT_THROW(pipe.model(), std::logic_error);
}

// --- continuum -----------------------------------------------------------------

TEST(Continuum, PlacementNames) {
  EXPECT_STREQ(to_string(Placement::OnDevice), "on-device");
  EXPECT_STREQ(to_string(Placement::Cloud), "cloud");
  EXPECT_STREQ(to_string(Placement::Hybrid), "hybrid");
}

TEST(Continuum, LatencyModelShapes) {
  ContinuumOptions opt;
  opt.network_rtt_s = 0.05;
  const std::uint64_t small = 2'000'000, big = 40'000'000;
  const double on_device =
      placement_latency_s(Placement::OnDevice, opt, small, big);
  const double cloud = placement_latency_s(Placement::Cloud, opt, small, big);
  const double hybrid =
      placement_latency_s(Placement::Hybrid, opt, small, big);
  // On-device and hybrid respond at the Pi's small-model speed; the cloud
  // pays the network RTT on top of its (fast) GPU inference.
  EXPECT_DOUBLE_EQ(on_device, hybrid);
  EXPECT_GT(cloud, opt.network_rtt_s);
  EXPECT_LT(on_device, cloud);
  // The full-scale deployment (the paper's 160x120 stack) is slower on the
  // Pi in proportion to the scale factor.
  ContinuumOptions full = opt;
  full.flops_scale = 1500.0;
  EXPECT_GT(placement_latency_s(Placement::OnDevice, full, small, big),
            10 * on_device);
}

TEST(Continuum, CloudLatencyGrowsWithRtt) {
  ContinuumOptions a, b;
  a.network_rtt_s = 0.01;
  b.network_rtt_s = 0.3;
  const double la = placement_latency_s(Placement::Cloud, a, 1e6, 1e7);
  const double lb = placement_latency_s(Placement::Cloud, b, 1e6, 1e7);
  EXPECT_NEAR(lb - la, 0.29, 1e-9);
}

TEST(Continuum, HybridPilotUsesCloudWhenFast) {
  ml::ModelConfig cfg;
  auto edge_model = ml::make_model(ml::ModelType::Inferred, cfg);
  auto cloud_model = ml::make_model(ml::ModelType::Linear, cfg);
  ContinuumOptions fast;
  fast.network_rtt_s = 0.02;
  fast.rtt_jitter_s = 0.0;
  HybridPilot pilot(*edge_model, *cloud_model, fast, util::Rng(3));
  camera::Image frame(cfg.img_w, cfg.img_h, 0.5f);
  for (int i = 0; i < 50; ++i) pilot.act(frame);
  EXPECT_GT(pilot.cloud_usage(), 0.8);

  ContinuumOptions slow = fast;
  slow.network_rtt_s = 0.5;  // way beyond staleness
  HybridPilot pilot2(*edge_model, *cloud_model, slow, util::Rng(3));
  pilot2.reset();
  for (int i = 0; i < 50; ++i) pilot2.act(frame);
  EXPECT_LT(pilot2.cloud_usage(), 0.2);
}

TEST(Continuum, EvaluatePlacementRuns) {
  const track::Track t = track::Track::paper_oval();
  ml::ModelConfig cfg;
  auto main_model = ml::make_model(ml::ModelType::Linear, cfg);
  auto edge_model = ml::make_model(ml::ModelType::Inferred, cfg);
  // Warm up flop counters.
  camera::Image frame(cfg.img_w, cfg.img_h, 0.5f);
  ml::Sample s;
  s.frames = {frame, frame, frame};
  main_model->predict(s);
  edge_model->predict(s);

  ContinuumOptions copt;
  eval::EvalOptions eopt;
  eopt.duration_s = 5.0;
  for (Placement p :
       {Placement::OnDevice, Placement::Cloud, Placement::Hybrid}) {
    const eval::EvalResult r =
        evaluate_placement(t, *main_model, *edge_model, p, copt, eopt);
    EXPECT_EQ(r.steps, 100u) << to_string(p);
  }
}

// --- twin ------------------------------------------------------------------------

class ConstantPilot : public eval::Pilot {
 public:
  vehicle::DriveCommand act(const camera::Image&) override {
    return {0.15, 0.4};
  }
  void reset() override {}
  std::string name() const override { return "constant"; }
};

TEST(Twin, ZeroNoiseScaleIsPerfectTwin) {
  const track::Track t = track::Track::paper_oval();
  ConstantPilot pilot;
  TwinOptions opt;
  opt.duration_s = 10.0;
  opt.noise_scale = 0.0;
  const TwinReport r = compare_sim_to_real(t, pilot, opt);
  EXPECT_NEAR(r.position_rmse_m, 0.0, 1e-9);
  EXPECT_NEAR(r.fidelity, 1.0, 1e-9);
}

TEST(Twin, DivergenceGrowsWithNoise) {
  // Short runs: past ~20 s the divergence saturates at the loop size and
  // the ordering washes out, so compare while it is still growing.
  const track::Track t = track::Track::paper_oval();
  ConstantPilot pilot;
  TwinOptions mild, rough;
  mild.duration_s = 8.0;
  mild.noise_scale = 0.25;
  rough.duration_s = 8.0;
  rough.noise_scale = 2.0;
  const TwinReport r_mild = compare_sim_to_real(t, pilot, mild);
  const TwinReport r_rough = compare_sim_to_real(t, pilot, rough);
  EXPECT_GT(r_mild.position_rmse_m, 0.0);
  EXPECT_GT(r_rough.position_rmse_m, r_mild.position_rmse_m);
  EXPECT_LT(r_rough.fidelity, r_mild.fidelity);
  EXPECT_GT(r_mild.fidelity, 0.0);
  EXPECT_LE(r_mild.fidelity, 1.0);
}

TEST(Twin, Validation) {
  const track::Track t = track::Track::paper_oval();
  ConstantPilot pilot;
  TwinOptions bad;
  bad.duration_s = 0;
  EXPECT_THROW(compare_sim_to_real(t, pilot, bad), std::invalid_argument);
  bad = TwinOptions{};
  bad.noise_scale = -1;
  EXPECT_THROW(compare_sim_to_real(t, pilot, bad), std::invalid_argument);
}

TEST(Twin, ReportsBothRunsDistances) {
  const track::Track t = track::Track::paper_oval();
  ConstantPilot pilot;
  TwinOptions opt;
  opt.duration_s = 15.0;
  const TwinReport r = compare_sim_to_real(t, pilot, opt);
  EXPECT_GT(r.sim_distance_m, 0.0);
  EXPECT_GT(r.real_distance_m, 0.0);
}

}  // namespace
}  // namespace autolearn::core
