#include <gtest/gtest.h>

#include "camera/camera.hpp"
#include "cv/features.hpp"
#include "cv/pilots.hpp"
#include "eval/evaluator.hpp"
#include "track/track.hpp"
#include "vehicle/car.hpp"

namespace autolearn::cv {
namespace {

camera::Image uniform(std::size_t w, std::size_t h, float v) {
  return camera::Image(w, h, v);
}

TEST(Sobel, FlatImageHasZeroGradient) {
  const camera::Image grad = sobel_magnitude(uniform(8, 8, 0.5f));
  for (float p : grad.pixels()) EXPECT_FLOAT_EQ(p, 0.0f);
}

TEST(Sobel, VerticalEdgeDetected) {
  camera::Image img(8, 8, 0.0f);
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 4; x < 8; ++x) img.at(x, y) = 1.0f;
  }
  const camera::Image grad = sobel_magnitude(img);
  // Gradient peaks along the boundary columns.
  EXPECT_GT(grad.at(3, 4), 1.0f);
  EXPECT_GT(grad.at(4, 4), 1.0f);
  EXPECT_FLOAT_EQ(grad.at(1, 4), 0.0f);
  EXPECT_FLOAT_EQ(grad.at(6, 4), 0.0f);
}

TEST(Sobel, TinyImagesSafe) {
  EXPECT_NO_THROW(sobel_magnitude(uniform(2, 2, 0.3f)));
  EXPECT_NO_THROW(sobel_magnitude(uniform(1, 5, 0.3f)));
}

TEST(EdgeMap, Binarizes) {
  camera::Image img(8, 8, 0.0f);
  for (std::size_t y = 0; y < 8; ++y) img.at(4, y) = 1.0f;
  const camera::Image edges = edge_map(img, 0.5f);
  for (float p : edges.pixels()) {
    EXPECT_TRUE(p == 0.0f || p == 1.0f);
  }
  EXPECT_GT(edges.at(3, 4) + edges.at(4, 4) + edges.at(5, 4), 0.0f);
}

TEST(LaneCenter, MidpointOfTapePixels) {
  camera::Image img(16, 4, 0.2f);
  img.at(2, 2) = 0.9f;   // left tape
  img.at(12, 2) = 0.9f;  // right tape
  const auto center = row_lane_center(img, 2);
  ASSERT_TRUE(center);
  EXPECT_DOUBLE_EQ(*center, 7.0);
}

TEST(LaneCenter, MissingTapeGivesNullopt) {
  const camera::Image img = uniform(16, 4, 0.2f);
  EXPECT_FALSE(row_lane_center(img, 1).has_value());
  EXPECT_FALSE(row_lane_center(img, 99).has_value());
  // A single tape pixel is not enough to define a centre.
  camera::Image one(16, 4, 0.2f);
  one.at(5, 1) = 0.9f;
  EXPECT_FALSE(row_lane_center(one, 1).has_value());
}

TEST(LaneCenter, OffsetSignMatchesGeometry) {
  const track::Track t = track::Track::paper_oval();
  camera::Camera cam(camera::CameraConfig{}, util::Rng(1));
  // Car displaced left of the centerline: the lane centre appears right of
  // the image centre -> positive offset.
  vehicle::CarState st;
  const double s = 0.8;
  st.pos = t.position_at(s) +
           track::heading_vec(t.heading_at(s)).perp() * 0.15;
  st.heading = t.heading_at(s);
  const auto offset = lane_center_offset(cam.render(t, st));
  ASSERT_TRUE(offset);
  EXPECT_GT(*offset, 0.02);

  st.pos = t.position_at(s) -
           track::heading_vec(t.heading_at(s)).perp() * 0.15;
  const auto offset_right = lane_center_offset(cam.render(t, st));
  ASSERT_TRUE(offset_right);
  EXPECT_LT(*offset_right, -0.02);
}

TEST(Blobs, FindsIsolatedRegions) {
  camera::Image img(16, 16, 0.0f);
  for (std::size_t y = 2; y < 5; ++y) {
    for (std::size_t x = 2; x < 5; ++x) img.at(x, y) = 0.9f;
  }
  for (std::size_t y = 10; y < 14; ++y) {
    for (std::size_t x = 10, xe = 14; x < xe; ++x) img.at(x, y) = 0.8f;
  }
  const auto blobs = find_blobs(img, 0.5f, 4);
  ASSERT_EQ(blobs.size(), 2u);
  EXPECT_EQ(blobs[0].pixels, 9u);
  EXPECT_EQ(blobs[1].pixels, 16u);
  EXPECT_NEAR(blobs[0].center_x(), 3.0, 1e-9);
  EXPECT_NEAR(blobs[1].mean_intensity, 0.8, 1e-5);
}

TEST(Blobs, MinPixelsFilters) {
  camera::Image img(8, 8, 0.0f);
  img.at(1, 1) = 0.9f;  // single pixel
  EXPECT_TRUE(find_blobs(img, 0.5f, 4).empty());
  EXPECT_EQ(find_blobs(img, 0.5f, 1).size(), 1u);
}

TEST(Signal, ClassifiesStopAndGo) {
  camera::Image img(24, 18, 0.3f);
  // A compact 4x4 "stop" patch at intensity 0.98.
  for (std::size_t y = 6; y < 10; ++y) {
    for (std::size_t x = 8; x < 12; ++x) img.at(x, y) = 0.98f;
  }
  EXPECT_EQ(classify_signal(img), Signal::Stop);

  camera::Image go(24, 18, 0.3f);
  for (std::size_t y = 6; y < 10; ++y) {
    for (std::size_t x = 8; x < 12; ++x) go.at(x, y) = 0.75f;
  }
  EXPECT_EQ(classify_signal(go), Signal::Go);
}

TEST(Signal, NoSignalGivesNullopt) {
  EXPECT_FALSE(classify_signal(uniform(24, 18, 0.3f)).has_value());
}

TEST(Signal, ElongatedTapeRejected) {
  camera::Image img(24, 18, 0.3f);
  // A long thin bright line like a lane marking.
  for (std::size_t x = 0; x < 24; ++x) img.at(x, 9) = 0.95f;
  EXPECT_FALSE(classify_signal(img).has_value());
}

TEST(Signal, RenderedPatchDetectedThroughCamera) {
  const track::Track t = track::Track::paper_oval();
  camera::Camera cam(camera::CameraConfig{}, util::Rng(2));
  vehicle::CarState st;
  st.pos = t.position_at(0.3);
  st.heading = t.heading_at(0.3);
  // Place a stop patch half a meter ahead on the centerline.
  camera::GroundPatch patch;
  patch.center = t.position_at(0.78);
  patch.radius = 0.16;
  patch.intensity = 0.98f;
  const camera::Image img = cam.render(t, st, {patch});
  EXPECT_EQ(classify_signal(img), Signal::Stop);
  // Without the patch there is no signal.
  EXPECT_FALSE(classify_signal(cam.render(t, st)).has_value());
}

// --- pilots -------------------------------------------------------------------

TEST(LineFollowPilot, StaysOnOval) {
  const track::Track t = track::Track::paper_oval();
  LineFollowPilot pilot;
  eval::EvalOptions opt;
  opt.duration_s = 60.0;
  const eval::EvalResult r = eval::run_evaluation(t, pilot, opt);
  EXPECT_GT(r.laps, 1.0);
  EXPECT_LT(r.errors, 4u);
}

TEST(LineFollowPilot, SearchesWhenLineLost) {
  LineFollowPilot pilot;
  // All-dark frame: no line visible.
  const vehicle::DriveCommand cmd = pilot.act(uniform(32, 24, 0.1f));
  EXPECT_NE(cmd.steering, 0.0);
  EXPECT_GT(cmd.throttle, 0.0);
}

TEST(WaypointPilot, FollowsRecordedTrace) {
  const track::Track t = track::Track::paper_oval();
  // Record the "GPS" trace along the centerline.
  GpsTrace trace;
  for (double s = 0; s < t.length(); s += 0.1) {
    trace.points.push_back(t.position_at(s));
  }
  WaypointPilot pilot(trace);
  vehicle::Car car(vehicle::CarConfig{}, util::Rng(4));
  car.reset(t.position_at(0), t.heading_at(0));
  double progress = 0, s_prev = 0;
  for (int i = 0; i < 1200; ++i) {
    car.step(pilot.decide(car.state().pos, car.state().heading), 0.05);
    const auto proj = t.project(car.state().pos);
    progress += t.progress_delta(s_prev, proj.s);
    s_prev = proj.s;
    ASSERT_TRUE(proj.on_track) << "left track at step " << i;
  }
  EXPECT_GT(progress, t.length());  // completed at least one lap
}

TEST(WaypointPilot, RejectsShortTrace) {
  GpsTrace trace;
  trace.points = {{0, 0}, {1, 0}};
  EXPECT_THROW(WaypointPilot{trace}, std::invalid_argument);
  GpsTrace empty;
  EXPECT_THROW(empty.nearest({0, 0}), std::logic_error);
}

TEST(GpsTrace, NearestPoint) {
  GpsTrace trace;
  trace.points = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  EXPECT_EQ(trace.nearest({1.1, 0.2}), 1u);
  EXPECT_EQ(trace.nearest({2.9, -0.1}), 3u);
}

TEST(SignalAwarePilot, BrakesOnStopSignal) {
  LineFollowPilot inner;
  SignalAwarePilot pilot(inner);
  camera::Image stop_frame(32, 24, 0.3f);
  for (std::size_t y = 10; y < 14; ++y) {
    for (std::size_t x = 14; x < 18; ++x) stop_frame.at(x, y) = 0.98f;
  }
  const vehicle::DriveCommand cmd = pilot.act(stop_frame);
  EXPECT_LT(cmd.throttle, 0.0);  // braking
  EXPECT_EQ(pilot.stops_observed(), 1u);
  // Hysteresis: still braking just after the signal disappears.
  const vehicle::DriveCommand after = pilot.act(uniform(32, 24, 0.3f));
  EXPECT_LT(after.throttle, 0.0);
  EXPECT_EQ(pilot.stops_observed(), 1u);  // same stop event
}

TEST(SignalAwarePilot, GoSignalDoesNotBrake) {
  LineFollowPilot inner;
  SignalAwarePilot pilot(inner);
  camera::Image go_frame(32, 24, 0.3f);
  for (std::size_t y = 10; y < 14; ++y) {
    for (std::size_t x = 14; x < 18; ++x) go_frame.at(x, y) = 0.75f;
  }
  const vehicle::DriveCommand cmd = pilot.act(go_frame);
  EXPECT_GT(cmd.throttle, 0.0);
  EXPECT_EQ(pilot.stops_observed(), 0u);
}

TEST(SignalAwarePilot, ResetClearsState) {
  LineFollowPilot inner;
  SignalAwarePilot pilot(inner);
  camera::Image stop_frame(32, 24, 0.3f);
  for (std::size_t y = 10; y < 14; ++y) {
    for (std::size_t x = 14; x < 18; ++x) stop_frame.at(x, y) = 0.98f;
  }
  pilot.act(stop_frame);
  pilot.reset();
  const vehicle::DriveCommand cmd = pilot.act(uniform(32, 24, 0.3f));
  EXPECT_GT(cmd.throttle, 0.0);  // hold cleared
  EXPECT_EQ(pilot.name(), "line-follow+signals");
}

}  // namespace
}  // namespace autolearn::cv
