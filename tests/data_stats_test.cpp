#include "data/stats.hpp"

#include <gtest/gtest.h>

#include "testbed/topology.hpp"
#include "util/rng.hpp"

namespace autolearn::data {
namespace {

std::vector<TubRecord> make_records(std::size_t n,
                                    float steering = 0.2f,
                                    float throttle = 0.5f,
                                    float speed = 1.2f) {
  std::vector<TubRecord> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].index = i;
    out[i].steering = steering;
    out[i].throttle = throttle;
    out[i].speed = speed;
  }
  return out;
}

TEST(SessionStats, EmptyIsZero) {
  const SessionStats s = session_stats({});
  EXPECT_EQ(s.records, 0u);
  EXPECT_EQ(s.flagged_ratio(), 0.0);
  EXPECT_EQ(s.steering_histogram.size(), 11u);
}

TEST(SessionStats, MomentsAndExtremes) {
  auto records = make_records(10, 0.0f, 0.6f, 1.0f);
  records[3].steering = 1.0f;
  records[7].steering = -1.0f;
  records[5].speed = 2.5f;
  records[2].mistake = true;
  const SessionStats s = session_stats(records);
  EXPECT_EQ(s.records, 10u);
  EXPECT_EQ(s.flagged, 1u);
  EXPECT_NEAR(s.steering_mean, 0.0, 1e-6);
  EXPECT_GT(s.steering_stddev, 0.3);
  EXPECT_NEAR(s.steering_saturation, 0.2, 1e-9);
  EXPECT_NEAR(s.throttle_mean, 0.6, 1e-6);
  EXPECT_NEAR(s.speed_max, 2.5, 1e-6);
}

TEST(SessionStats, HistogramBucketsSteering) {
  std::vector<TubRecord> records;
  for (float v : {-0.99f, -0.5f, 0.0f, 0.5f, 0.99f}) {
    TubRecord r;
    r.steering = v;
    records.push_back(r);
  }
  const SessionStats s = session_stats(records, 5);
  ASSERT_EQ(s.steering_histogram.size(), 5u);
  for (std::size_t count : s.steering_histogram) EXPECT_EQ(count, 1u);
  EXPECT_THROW(session_stats(records, 0), std::invalid_argument);
}

TEST(JudgeSession, CleanLongSessionUsable) {
  const SessionStats s = session_stats(make_records(1000));
  const SessionVerdict v = judge_session(s);
  EXPECT_TRUE(v.usable);
  EXPECT_TRUE(v.reasons.empty());
}

TEST(JudgeSession, ShortSessionRejected) {
  const SessionStats s = session_stats(make_records(100));
  const SessionVerdict v = judge_session(s);
  EXPECT_FALSE(v.usable);
  ASSERT_FALSE(v.reasons.empty());
  EXPECT_NE(v.reasons[0].find("too short"), std::string::npos);
}

TEST(JudgeSession, TooManyMistakesRejected) {
  auto records = make_records(1000);
  for (std::size_t i = 0; i < 200; ++i) records[i].mistake = true;
  const SessionVerdict v = judge_session(session_stats(records));
  EXPECT_FALSE(v.usable);
}

TEST(JudgeSession, SaturatedSteeringRejected) {
  auto records = make_records(1000);
  for (std::size_t i = 0; i < 300; ++i) records[i].steering = 1.0f;
  const SessionVerdict v = judge_session(session_stats(records));
  EXPECT_FALSE(v.usable);
}

TEST(JudgeSession, StationaryCarRejected) {
  const SessionStats s = session_stats(make_records(1000, 0.1f, 0.5f, 0.0f));
  const SessionVerdict v = judge_session(s);
  EXPECT_FALSE(v.usable);
}

TEST(JudgeSession, MultipleReasonsAccumulate) {
  auto records = make_records(100, 1.0f, 0.5f, 0.0f);
  for (auto& r : records) r.mistake = true;
  const SessionVerdict v = judge_session(session_stats(records));
  EXPECT_FALSE(v.usable);
  EXPECT_GE(v.reasons.size(), 3u);
}

}  // namespace
}  // namespace autolearn::data

namespace autolearn::testbed {
namespace {

TEST(Topology, ChameleonNetworkConnectsEverything) {
  TopologyOptions opt;
  opt.cars = {"car-01", "car-02"};
  const net::Network n = chameleon_network(opt);
  EXPECT_TRUE(n.has_host(kCampusGateway));
  EXPECT_TRUE(n.has_host(kSiteUC));
  EXPECT_TRUE(n.has_host(kSiteTACC));
  // Every car reaches both sites.
  for (const char* car : {"car-01", "car-02"}) {
    ASSERT_TRUE(n.route(car, kSiteUC));
    ASSERT_TRUE(n.route(car, kSiteTACC));
  }
  // The cross-site path goes over the FABRIC link.
  const auto cross = n.route(kSiteUC, kSiteTACC);
  ASSERT_TRUE(cross);
  EXPECT_EQ(cross->size(), 2u);
}

TEST(Topology, FabricLatencyIsManaged) {
  TopologyOptions near_opt, far_opt;
  near_opt.fabric_latency_s = 0.005;
  far_opt.fabric_latency_s = 0.080;
  const net::Network near_net = chameleon_network(near_opt);
  const net::Network far_net = chameleon_network(far_opt);
  EXPECT_NEAR(near_net.base_latency(kSiteUC, kSiteTACC), 0.005, 1e-9);
  EXPECT_NEAR(far_net.base_latency(kSiteUC, kSiteTACC), 0.080, 1e-9);
  // The far site costs the car exactly the extra FABRIC latency.
  EXPECT_NEAR(far_net.base_latency("car-01", kSiteTACC) -
                  far_net.base_latency("car-01", kSiteUC),
              0.080, 1e-9);
}

TEST(Topology, RequiresACar) {
  TopologyOptions opt;
  opt.cars = {};
  EXPECT_THROW(chameleon_network(opt), std::invalid_argument);
}

}  // namespace
}  // namespace autolearn::testbed
