#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/collector.hpp"
#include "data/dataset.hpp"
#include "data/pgm.hpp"
#include "data/tub.hpp"
#include "data/tubclean.hpp"
#include "track/track.hpp"
#include "util/rng.hpp"

namespace autolearn::data {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    path_ = fs::temp_directory_path() /
            ("autolearn_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

camera::Image test_image(std::size_t w = 8, std::size_t h = 6,
                         float base = 0.0f) {
  camera::Image img(w, h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      img.at(x, y) = base + static_cast<float>(x + y) / 32.0f;
    }
  }
  img.clamp();
  return img;
}

// --- PGM --------------------------------------------------------------------

TEST(Pgm, RoundTrip) {
  TempDir dir;
  const camera::Image img = test_image();
  write_pgm(dir.path() / "a.pgm", img);
  const camera::Image back = read_pgm(dir.path() / "a.pgm");
  ASSERT_EQ(back.width(), img.width());
  ASSERT_EQ(back.height(), img.height());
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_NEAR(back.pixels()[i], img.pixels()[i], 1.0f / 255.0f);
  }
}

TEST(Pgm, ClampsOutOfRangeValues) {
  TempDir dir;
  camera::Image img(2, 1);
  img.at(0, 0) = -0.5f;
  img.at(1, 0) = 1.5f;
  write_pgm(dir.path() / "b.pgm", img);
  const camera::Image back = read_pgm(dir.path() / "b.pgm");
  EXPECT_FLOAT_EQ(back.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(back.at(1, 0), 1.0f);
}

TEST(Pgm, ReadErrors) {
  TempDir dir;
  EXPECT_THROW(read_pgm(dir.path() / "missing.pgm"), std::runtime_error);
  {
    std::ofstream os(dir.path() / "bad.pgm");
    os << "P2\n2 2\n255\n0 0 0 0\n";
  }
  EXPECT_THROW(read_pgm(dir.path() / "bad.pgm"), std::runtime_error);
}

// --- Tub ---------------------------------------------------------------------

TEST(Tub, WriteReadRoundTrip) {
  TempDir dir;
  {
    TubWriter w(dir.path() / "tub");
    w.append(test_image(), 0.25f, 0.5f, 1.2f, false);
    w.append(test_image(8, 6, 0.1f), -0.75f, 0.8f, 1.5f, true);
    w.close();
  }
  Tub tub(dir.path() / "tub");
  EXPECT_EQ(tub.total_records(), 2u);
  EXPECT_EQ(tub.active_records(), 2u);
  const auto records = tub.read_all();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].index, 0u);
  EXPECT_FLOAT_EQ(records[0].steering, 0.25f);
  EXPECT_FLOAT_EQ(records[0].throttle, 0.5f);
  EXPECT_FLOAT_EQ(records[0].speed, 1.2f);
  EXPECT_FALSE(records[0].mistake);
  EXPECT_TRUE(records[1].mistake);
  EXPECT_EQ(records[1].image.width(), 8u);
}

TEST(Tub, CatalogRotation) {
  TempDir dir;
  {
    TubWriter w(dir.path() / "tub", /*records_per_catalog=*/10);
    for (int i = 0; i < 25; ++i) {
      w.append(test_image(), 0.0f, 0.5f);
    }
    w.close();
  }
  // 25 records with 10 per catalog -> catalogs 0,1,2.
  EXPECT_TRUE(fs::exists(dir.path() / "tub" / "catalog_0.catalog"));
  EXPECT_TRUE(fs::exists(dir.path() / "tub" / "catalog_1.catalog"));
  EXPECT_TRUE(fs::exists(dir.path() / "tub" / "catalog_2.catalog"));
  Tub tub(dir.path() / "tub");
  EXPECT_EQ(tub.read_all().size(), 25u);
  // Order must be preserved across catalogs.
  const auto records = tub.read_all();
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].index, i);
  }
}

TEST(Tub, MarkDeletedPersistsAcrossReopen) {
  TempDir dir;
  {
    TubWriter w(dir.path() / "tub");
    for (int i = 0; i < 5; ++i) w.append(test_image(), 0.0f, 0.5f);
    w.close();
  }
  {
    Tub tub(dir.path() / "tub");
    tub.mark_deleted({1, 3});
    EXPECT_EQ(tub.active_records(), 3u);
  }
  Tub reopened(dir.path() / "tub");
  EXPECT_EQ(reopened.active_records(), 3u);
  EXPECT_EQ(reopened.deleted_indexes().size(), 2u);
  const auto records = reopened.read_all();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].index, 0u);
  EXPECT_EQ(records[1].index, 2u);
  EXPECT_EQ(records[2].index, 4u);
  EXPECT_FALSE(reopened.read(1).has_value());
  EXPECT_TRUE(reopened.read(2).has_value());
  EXPECT_FALSE(reopened.read(99).has_value());
}

TEST(Tub, RestoreAllClearsDeletions) {
  TempDir dir;
  {
    TubWriter w(dir.path() / "tub");
    for (int i = 0; i < 4; ++i) w.append(test_image(), 0.0f, 0.5f);
    w.close();
  }
  Tub tub(dir.path() / "tub");
  tub.mark_deleted({0, 1});
  tub.restore_all();
  EXPECT_EQ(tub.active_records(), 4u);
}

TEST(Tub, MarkDeletedValidatesIndexes) {
  TempDir dir;
  {
    TubWriter w(dir.path() / "tub");
    w.append(test_image(), 0.0f, 0.5f);
    w.close();
  }
  Tub tub(dir.path() / "tub");
  EXPECT_THROW(tub.mark_deleted({5}), std::invalid_argument);
}

TEST(Tub, SizeBytesNonZero) {
  TempDir dir;
  {
    TubWriter w(dir.path() / "tub");
    for (int i = 0; i < 10; ++i) w.append(test_image(), 0.0f, 0.5f);
    w.close();
  }
  Tub tub(dir.path() / "tub");
  EXPECT_GT(tub.size_bytes(), 10u * 8 * 6);  // at least the pixel payload
}

TEST(Tub, AppendAfterCloseThrows) {
  TempDir dir;
  TubWriter w(dir.path() / "tub");
  w.append(test_image(), 0.0f, 0.5f);
  w.close();
  EXPECT_THROW(w.append(test_image(), 0.0f, 0.5f), std::logic_error);
}

// --- Collector ----------------------------------------------------------------

TEST(Collector, SimulatorSessionProducesCleanTub) {
  TempDir dir;
  const track::Track t = track::Track::paper_oval();
  CollectOptions opt;
  opt.duration_s = 10.0;
  const CollectStats stats =
      collect_session(t, DataPath::Simulator, opt, dir.path() / "tub");
  EXPECT_EQ(stats.records, 200u);  // 10 s at 20 Hz
  EXPECT_EQ(stats.mistake_records, 0u);
  EXPECT_GT(stats.distance_m, 5.0);
  EXPECT_GT(stats.mean_speed, 0.5);
  Tub tub(dir.path() / "tub");
  EXPECT_EQ(tub.total_records(), 200u);
}

TEST(Collector, MistakesAreTagged) {
  TempDir dir;
  const track::Track t = track::Track::paper_oval();
  CollectOptions opt;
  opt.duration_s = 30.0;
  opt.expert.mistake_rate = 20.0;
  const CollectStats stats =
      collect_session(t, DataPath::PhysicalCar, opt, dir.path() / "tub");
  EXPECT_GT(stats.mistake_records, 5u);
  Tub tub(dir.path() / "tub");
  std::size_t tagged = 0;
  for (const TubRecord& r : tub.read_metadata()) tagged += r.mistake;
  EXPECT_EQ(tagged, stats.mistake_records);
}

TEST(Collector, SamplePathIsDeterministic) {
  TempDir dir;
  const track::Track t = track::Track::paper_oval();
  CollectOptions opt;
  opt.duration_s = 5.0;
  opt.seed = 111;
  collect_session(t, DataPath::Sample, opt, dir.path() / "a");
  opt.seed = 222;  // must be ignored for the sample path
  collect_session(t, DataPath::Sample, opt, dir.path() / "b");
  const auto ra = Tub(dir.path() / "a").read_all();
  const auto rb = Tub(dir.path() / "b").read_all();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].steering, rb[i].steering);
    EXPECT_EQ(ra[i].image.pixels(), rb[i].image.pixels());
  }
}

TEST(Collector, PhysicalCarSessionsDifferBySeed) {
  TempDir dir;
  const track::Track t = track::Track::paper_oval();
  CollectOptions opt;
  opt.duration_s = 5.0;
  opt.seed = 1;
  collect_session(t, DataPath::PhysicalCar, opt, dir.path() / "a");
  opt.seed = 2;
  collect_session(t, DataPath::PhysicalCar, opt, dir.path() / "b");
  const auto ra = Tub(dir.path() / "a").read_all();
  const auto rb = Tub(dir.path() / "b").read_all();
  bool differs = false;
  for (std::size_t i = 0; i < ra.size() && !differs; ++i) {
    differs = ra[i].steering != rb[i].steering;
  }
  EXPECT_TRUE(differs);
}

TEST(Collector, RejectsBadOptions) {
  TempDir dir;
  const track::Track t = track::Track::paper_oval();
  CollectOptions opt;
  opt.duration_s = 0;
  EXPECT_THROW(collect_session(t, DataPath::Simulator, opt, dir.path() / "x"),
               std::invalid_argument);
}

// --- tubclean -------------------------------------------------------------------

TEST(TubClean, ExpandSegments) {
  std::size_t segments = 0;
  const auto out = expand_segments({5, 6, 20}, 2, 100, &segments);
  // 5,6 with margin 2 -> [3,8]; 20 -> [18,22].
  EXPECT_EQ(segments, 2u);
  EXPECT_EQ(out.front(), 3u);
  EXPECT_EQ(out.back(), 22u);
  EXPECT_EQ(out.size(), 6u + 5u);
}

TEST(TubClean, ExpandSegmentsClipsAtBounds) {
  const auto out = expand_segments({0, 99}, 3, 100);
  EXPECT_EQ(out.front(), 0u);
  EXPECT_EQ(out.back(), 99u);
  for (std::size_t i : out) EXPECT_LT(i, 100u);
}

TEST(TubClean, ReviewCleanRemovesTaggedRecords) {
  TempDir dir;
  const track::Track t = track::Track::paper_oval();
  CollectOptions opt;
  opt.duration_s = 30.0;
  opt.expert.mistake_rate = 15.0;
  const CollectStats stats =
      collect_session(t, DataPath::Simulator, opt, dir.path() / "tub");
  ASSERT_GT(stats.mistake_records, 0u);

  Tub tub(dir.path() / "tub");
  const CleanStats clean = review_clean(tub, /*margin=*/3);
  EXPECT_EQ(clean.reviewed, stats.records);
  EXPECT_GE(clean.deleted, stats.mistake_records);
  EXPECT_GT(clean.segments, 0u);
  // No tagged record survives.
  for (const TubRecord& r : tub.read_all()) {
    EXPECT_FALSE(r.mistake);
  }
}

TEST(TubClean, HeuristicCleanFlagsSaturatedSteering) {
  TempDir dir;
  {
    TubWriter w(dir.path() / "tub");
    for (int i = 0; i < 50; ++i) {
      const float steer = (i >= 20 && i < 25) ? 1.0f : 0.1f;
      w.append(test_image(), steer, 0.5f);
    }
    w.close();
  }
  Tub tub(dir.path() / "tub");
  const CleanStats clean = heuristic_clean(tub);
  EXPECT_GT(clean.deleted, 4u);
  for (const TubRecord& r : tub.read_all()) {
    EXPECT_LT(std::abs(r.steering), 0.95f);
  }
}

TEST(TubClean, CleanTubLosesNothing) {
  TempDir dir;
  {
    TubWriter w(dir.path() / "tub");
    for (int i = 0; i < 30; ++i) w.append(test_image(), 0.1f, 0.5f);
    w.close();
  }
  Tub tub(dir.path() / "tub");
  const CleanStats clean = review_clean(tub);
  EXPECT_EQ(clean.deleted, 0u);
  EXPECT_EQ(tub.active_records(), 30u);
}

// --- dataset ---------------------------------------------------------------------

std::vector<TubRecord> fake_records(std::size_t n) {
  std::vector<TubRecord> out;
  for (std::size_t i = 0; i < n; ++i) {
    TubRecord r;
    r.index = i;
    r.image = test_image(8, 6, static_cast<float>(i) * 0.01f);
    r.steering = static_cast<float>(i % 5) / 5.0f - 0.4f;
    r.throttle = 0.5f;
    out.push_back(std::move(r));
  }
  return out;
}

TEST(Dataset, BuildSamplesShapes) {
  const auto records = fake_records(10);
  DatasetOptions opt;
  opt.seq_len = 3;
  opt.history_len = 2;
  const auto samples = build_samples(records, opt);
  ASSERT_EQ(samples.size(), 10u - 2u);  // context = max(2, 2) = 2
  EXPECT_EQ(samples[0].frames.size(), 3u);
  EXPECT_EQ(samples[0].history.size(), 4u);
  // Labels come from the newest record in the window.
  EXPECT_FLOAT_EQ(samples[0].steering, records[2].steering);
  // Frames are ordered oldest..newest: newest frame matches the record.
  EXPECT_EQ(samples[0].frames.back().pixels(), records[2].image.pixels());
  EXPECT_EQ(samples[0].frames.front().pixels(), records[0].image.pixels());
}

TEST(Dataset, HistoryIsPastCommands) {
  const auto records = fake_records(6);
  DatasetOptions opt;
  opt.seq_len = 1;
  opt.history_len = 2;
  const auto samples = build_samples(records, opt);
  // For the sample at record i, history = [(i-2), (i-1)] commands.
  EXPECT_FLOAT_EQ(samples[0].history[0], records[0].steering);
  EXPECT_FLOAT_EQ(samples[0].history[1], records[0].throttle);
  EXPECT_FLOAT_EQ(samples[0].history[2], records[1].steering);
}

TEST(Dataset, TooFewRecordsGivesEmpty) {
  const auto records = fake_records(2);
  DatasetOptions opt;
  opt.seq_len = 3;
  opt.history_len = 3;
  EXPECT_TRUE(build_samples(records, opt).empty());
}

TEST(Dataset, FlipAugmentationDoubles) {
  const auto records = fake_records(10);
  DatasetOptions opt;
  opt.seq_len = 1;
  opt.history_len = 1;
  opt.augment_flip = true;
  const auto samples = build_samples(records, opt);
  ASSERT_EQ(samples.size(), 2u * 9u);
  // Second half are mirrored copies with negated steering.
  EXPECT_FLOAT_EQ(samples[9].steering, -samples[0].steering);
  EXPECT_FLOAT_EQ(samples[9].throttle, samples[0].throttle);
  EXPECT_FLOAT_EQ(samples[9].history[0], -samples[0].history[0]);
}

TEST(Dataset, FlipHorizontalMirrors) {
  camera::Image img(3, 1);
  img.at(0, 0) = 0.1f;
  img.at(1, 0) = 0.5f;
  img.at(2, 0) = 0.9f;
  const camera::Image flipped = flip_horizontal(img);
  EXPECT_FLOAT_EQ(flipped.at(0, 0), 0.9f);
  EXPECT_FLOAT_EQ(flipped.at(1, 0), 0.5f);
  EXPECT_FLOAT_EQ(flipped.at(2, 0), 0.1f);
}

TEST(Dataset, SplitFractionsRespected) {
  const auto records = fake_records(103);
  const auto samples = build_samples(records, {});
  auto [train, val] = split_train_val(samples, 0.2);
  EXPECT_EQ(train.size() + val.size(), samples.size());
  EXPECT_EQ(val.size(), samples.size() / 5);
  EXPECT_THROW(split_train_val({}, 1.5), std::invalid_argument);
}

TEST(Dataset, SplitIsDeterministic) {
  const auto records = fake_records(50);
  const auto samples = build_samples(records, {});
  auto [t1, v1] = split_train_val(samples, 0.3, 42);
  auto [t2, v2] = split_train_val(samples, 0.3, 42);
  ASSERT_EQ(v1.size(), v2.size());
  for (std::size_t i = 0; i < v1.size(); ++i) {
    EXPECT_EQ(v1[i].steering, v2[i].steering);
  }
}

}  // namespace
}  // namespace autolearn::data
