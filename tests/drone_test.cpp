#include <gtest/gtest.h>

#include "drone/drone.hpp"
#include "drone/survey.hpp"

namespace autolearn::drone {
namespace {

TEST(Drone, ConfigValidation) {
  DroneConfig bad;
  bad.max_speed = 0;
  EXPECT_THROW(Drone(bad, util::Rng(1)), std::invalid_argument);
  bad = DroneConfig{};
  bad.altitude = -1;
  EXPECT_THROW(Drone(bad, util::Rng(1)), std::invalid_argument);
}

TEST(Drone, ResetPlacesAtAltitude) {
  Drone d(DroneConfig{}, util::Rng(1));
  d.reset({5, 7});
  EXPECT_DOUBLE_EQ(d.state().pos.x, 5);
  EXPECT_DOUBLE_EQ(d.state().pos.y, 7);
  EXPECT_DOUBLE_EQ(d.state().altitude, DroneConfig{}.altitude);
  EXPECT_DOUBLE_EQ(d.state().vel.norm(), 0);
}

TEST(Drone, ConvergesToCommandedVelocity) {
  Drone d(DroneConfig{}, util::Rng(2));
  d.reset({0, 0});
  for (int i = 0; i < 200; ++i) d.step({3.0, 0.0}, 0.05);
  EXPECT_NEAR(d.state().vel.x, 3.0, 0.05);
  EXPECT_NEAR(d.state().vel.y, 0.0, 1e-9);
  EXPECT_GT(d.state().pos.x, 10.0);
}

TEST(Drone, SpeedClampedToEnvelope) {
  DroneConfig cfg;
  cfg.max_speed = 4.0;
  Drone d(cfg, util::Rng(3));
  d.reset({0, 0});
  for (int i = 0; i < 400; ++i) d.step({100.0, 0.0}, 0.05);
  EXPECT_LE(d.state().vel.norm(), cfg.max_speed + 1e-6);
}

TEST(Drone, AccelerationLimited) {
  DroneConfig cfg;
  cfg.max_accel = 2.0;
  cfg.velocity_tau = 1e-3;  // would jump instantly without the accel limit
  Drone d(cfg, util::Rng(4));
  d.reset({0, 0});
  d.step({6.0, 0.0}, 0.1);
  EXPECT_LE(d.state().vel.norm(), cfg.max_accel * 0.1 + 1e-9);
}

TEST(Drone, StepValidation) {
  Drone d(DroneConfig{}, util::Rng(5));
  EXPECT_THROW(d.step({1, 0}, 0.0), std::invalid_argument);
}

TEST(Survey, LawnmowerCoversField) {
  Field field;
  field.width = 40;
  field.height = 24;
  const auto wps = lawnmower_waypoints(field, 8.0);
  // 24 m / 8 m swath = 3 rows, two waypoints each.
  ASSERT_EQ(wps.size(), 6u);
  // Alternating direction: row 0 ends east, row 1 starts east.
  EXPECT_DOUBLE_EQ(wps[1].x, field.origin.x + field.width);
  EXPECT_DOUBLE_EQ(wps[2].x, field.origin.x + field.width);
  // All rows inside the field.
  for (const auto& p : wps) {
    EXPECT_GE(p.y, field.origin.y);
    EXPECT_LE(p.y, field.origin.y + field.height);
  }
  EXPECT_THROW(lawnmower_waypoints(field, 0), std::invalid_argument);
}

TEST(Survey, MissionCoversMostOfTheField) {
  Drone d(DroneConfig{}, util::Rng(6));
  Field field;
  field.width = 60;
  field.height = 40;
  MissionConfig cfg;
  const MissionResult r = fly_survey(d, field, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.waypoints_hit, r.waypoints_total);
  EXPECT_GT(r.coverage, 0.9);
  EXPECT_GT(r.distance_m, field.width * 3);  // several passes
  EXPECT_LT(r.duration_s, cfg.timeout_s);
}

TEST(Survey, NarrowSwathNeedsMorePassesAndTime) {
  Field field;
  field.width = 60;
  field.height = 40;
  MissionConfig wide, narrow;
  wide.swath = 10.0;
  narrow.swath = 5.0;
  Drone d1(DroneConfig{}, util::Rng(7));
  Drone d2(DroneConfig{}, util::Rng(7));
  const MissionResult r_wide = fly_survey(d1, field, wide);
  const MissionResult r_narrow = fly_survey(d2, field, narrow);
  EXPECT_GT(r_narrow.waypoints_total, r_wide.waypoints_total);
  EXPECT_GT(r_narrow.duration_s, r_wide.duration_s);
}

TEST(Survey, TimeoutLeavesMissionIncomplete) {
  Drone d(DroneConfig{}, util::Rng(8));
  Field field;
  field.width = 500;
  field.height = 500;
  MissionConfig cfg;
  cfg.timeout_s = 10.0;  // nowhere near enough
  const MissionResult r = fly_survey(d, field, cfg);
  EXPECT_FALSE(r.completed);
  EXPECT_LT(r.coverage, 0.5);
}

TEST(Survey, WindyMissionStillCompletes) {
  DroneConfig cfg;
  cfg.wind_noise = 0.05;
  Drone d(cfg, util::Rng(9));
  Field field;
  field.width = 50;
  field.height = 30;
  const MissionResult r = fly_survey(d, field, MissionConfig{});
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.coverage, 0.85);
}

TEST(Survey, ConfigValidation) {
  Drone d(DroneConfig{}, util::Rng(10));
  Field field;
  MissionConfig bad;
  bad.cruise_speed = 0;
  EXPECT_THROW(fly_survey(d, field, bad), std::invalid_argument);
}

}  // namespace
}  // namespace autolearn::drone
