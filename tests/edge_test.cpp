#include <gtest/gtest.h>

#include "edge/container.hpp"
#include "edge/registry.hpp"

namespace autolearn::edge {
namespace {

struct EdgeFixture : public ::testing::Test {
  util::EventQueue queue;
  EdgeRegistry registry{queue};

  /// Runs the full BYOD path and returns when the device is Ready.
  void enroll(const std::string& name, const std::string& project) {
    registry.register_device(name, project);
    registry.flash_device(name);
    registry.boot_device(name);
    queue.run_until(queue.now() + registry.config().boot_delay_s +
                    registry.config().enroll_delay_s + 1);
  }
};

TEST_F(EdgeFixture, ByodEnrollmentPath) {
  const std::string token = registry.register_device("pi-01", "CHI-edu-1");
  EXPECT_FALSE(token.empty());
  EXPECT_EQ(registry.device("pi-01").state, DeviceState::Registered);
  EXPECT_TRUE(registry.is_allowed("pi-01", "CHI-edu-1"));  // owner auto

  registry.flash_device("pi-01");
  EXPECT_EQ(registry.device("pi-01").state, DeviceState::Flashed);

  bool ready = false;
  registry.boot_device("pi-01", [&](const Device& d) {
    ready = true;
    EXPECT_EQ(d.state, DeviceState::Ready);
  });
  queue.run_until(20);
  EXPECT_EQ(registry.device("pi-01").state, DeviceState::Flashed);
  queue.run_until(26);
  EXPECT_EQ(registry.device("pi-01").state, DeviceState::Connected);
  queue.run_until(30);
  EXPECT_TRUE(ready);
  EXPECT_EQ(registry.ready_devices().size(), 1u);
}

TEST_F(EdgeFixture, EnrollmentOrderEnforced) {
  registry.register_device("pi-01", "p");
  EXPECT_THROW(registry.boot_device("pi-01"), std::logic_error);
  registry.flash_device("pi-01");
  EXPECT_THROW(registry.flash_device("pi-01"), std::logic_error);
  EXPECT_THROW(registry.register_device("pi-01", "p"), std::invalid_argument);
  EXPECT_THROW(registry.device("ghost"), std::invalid_argument);
}

TEST_F(EdgeFixture, HeartbeatsKeepDeviceAlive) {
  enroll("pi-01", "p");
  // Run for many heartbeat periods: still Ready.
  queue.run_until(queue.now() + 300);
  EXPECT_EQ(registry.device("pi-01").state, DeviceState::Ready);
}

TEST_F(EdgeFixture, MissedHeartbeatsDisconnect) {
  enroll("pi-01", "p");
  registry.fail_device("pi-01");
  queue.run_until(queue.now() + 100);
  EXPECT_EQ(registry.device("pi-01").state, DeviceState::Disconnected);
}

TEST_F(EdgeFixture, RecoveryRestoresReady) {
  enroll("pi-01", "p");
  registry.fail_device("pi-01");
  queue.run_until(queue.now() + 100);
  ASSERT_EQ(registry.device("pi-01").state, DeviceState::Disconnected);
  registry.recover_device("pi-01");
  queue.run_until(queue.now() + 40);
  EXPECT_EQ(registry.device("pi-01").state, DeviceState::Ready);
  EXPECT_THROW(registry.recover_device("pi-01"), std::logic_error);
}

TEST_F(EdgeFixture, WhitelistPolicy) {
  enroll("pi-01", "owner-project");
  EXPECT_FALSE(registry.is_allowed("pi-01", "other-project"));
  registry.allow_project("pi-01", "other-project");
  EXPECT_TRUE(registry.is_allowed("pi-01", "other-project"));
  registry.revoke_project("pi-01", "other-project");
  EXPECT_FALSE(registry.is_allowed("pi-01", "other-project"));
  EXPECT_THROW(registry.revoke_project("pi-01", "owner-project"),
               std::logic_error);
}

TEST_F(EdgeFixture, ContainerZeroToReady) {
  enroll("pi-01", "p");
  ContainerService svc(registry, queue);
  bool running = false;
  const double t0 = queue.now();
  const auto id = svc.launch("pi-01", "p", ContainerSpec::autolearn_car(),
                             [&](const Container& c) {
                               running = true;
                               EXPECT_EQ(c.state, ContainerState::Running);
                             });
  EXPECT_EQ(svc.container(id).state, ContainerState::Pulling);
  queue.run();
  EXPECT_TRUE(running);
  // 800 MiB over 4 MB/s plus the 6 s start delay.
  const double expected =
      static_cast<double>(800ull << 20) / 4e6 + 6.0;
  EXPECT_NEAR(svc.container(id).running_at - t0, expected, 1.0);
  EXPECT_EQ(svc.running_on("pi-01").size(), 1u);
}

TEST_F(EdgeFixture, ImageCacheMakesSecondLaunchFast) {
  enroll("pi-01", "p");
  ContainerService svc(registry, queue);
  const auto first = svc.launch("pi-01", "p", ContainerSpec::autolearn_car());
  queue.run();
  svc.stop(first);
  const double t0 = queue.now();
  const auto second = svc.launch("pi-01", "p", ContainerSpec::autolearn_car());
  queue.run();
  EXPECT_LT(svc.container(second).running_at - t0, 10.0);
}

TEST_F(EdgeFixture, LaunchRequiresReadyAndWhitelist) {
  registry.register_device("pi-01", "p");
  ContainerService svc(registry, queue);
  EXPECT_THROW(svc.launch("pi-01", "p", ContainerSpec::autolearn_car()),
               std::logic_error);  // not ready yet
  registry.flash_device("pi-01");
  registry.boot_device("pi-01");
  queue.run_until(40);
  EXPECT_THROW(svc.launch("pi-01", "intruder", ContainerSpec::autolearn_car()),
               std::logic_error);  // not whitelisted
  EXPECT_NO_THROW(svc.launch("pi-01", "p", ContainerSpec::autolearn_car()));
}

TEST_F(EdgeFixture, LaunchFailsIfDeviceDropsMidPull) {
  enroll("pi-01", "p");
  ContainerService svc(registry, queue);
  const auto id = svc.launch("pi-01", "p", ContainerSpec::autolearn_car());
  registry.fail_device("pi-01");
  queue.run();
  EXPECT_EQ(svc.container(id).state, ContainerState::Failed);
}

TEST_F(EdgeFixture, ConsoleRunsCommands) {
  enroll("pi-01", "p");
  ContainerService svc(registry, queue);
  const auto id = svc.launch("pi-01", "p", ContainerSpec::autolearn_car());
  queue.run();
  EXPECT_EQ(svc.run_command(id, "echo hello car"), "hello car");
  svc.register_command("ls", [](const std::string& args) {
    return args == "/car/data" ? "tub_1 tub_2" : "";
  });
  EXPECT_EQ(svc.run_command(id, "ls /car/data"), "tub_1 tub_2");
  const std::string out = svc.run_command(id, "vim notes.txt");
  EXPECT_NE(out.find("simulated"), std::string::npos);
}

TEST_F(EdgeFixture, ConsoleRequiresRunningContainer) {
  enroll("pi-01", "p");
  ContainerService svc(registry, queue);
  const auto id = svc.launch("pi-01", "p", ContainerSpec::autolearn_car());
  EXPECT_THROW(svc.run_command(id, "echo x"), std::logic_error);  // pulling
  queue.run();
  svc.stop(id);
  EXPECT_THROW(svc.run_command(id, "echo x"), std::logic_error);  // exited
  EXPECT_THROW(svc.run_command(999, "echo"), std::invalid_argument);
}

TEST_F(EdgeFixture, StopIsIdempotent) {
  enroll("pi-01", "p");
  ContainerService svc(registry, queue);
  const auto id = svc.launch("pi-01", "p", ContainerSpec::autolearn_car());
  queue.run();
  svc.stop(id);
  EXPECT_NO_THROW(svc.stop(id));
  EXPECT_EQ(svc.container(id).state, ContainerState::Exited);
  EXPECT_TRUE(svc.running_on("pi-01").empty());
}

}  // namespace
}  // namespace autolearn::edge
