#include <gtest/gtest.h>

#include "data/collector.hpp"
#include "data/dataset.hpp"
#include "data/tub.hpp"
#include "eval/evaluator.hpp"
#include "eval/pilot.hpp"
#include "gpu/perf_model.hpp"
#include "ml/trainer.hpp"
#include "track/track.hpp"

namespace autolearn::eval {
namespace {

namespace fs = std::filesystem;

/// Ground-truth pilot used to test the evaluator loop itself: wraps the
/// expert but exposes the Pilot interface (cheats by tracking car state
/// through an external pointer is impossible — instead it steers from the
/// brightness centroid of the frame, a classic line-follower).
class CentroidPilot : public Pilot {
 public:
  vehicle::DriveCommand act(const camera::Image& frame) override {
    // Steer toward the horizontal brightness centroid of the lower half.
    double num = 0, den = 0;
    for (std::size_t y = frame.height() / 2; y < frame.height(); ++y) {
      for (std::size_t x = 0; x < frame.width(); ++x) {
        // Emphasize the bright tape pixels.
        const double w = std::pow(static_cast<double>(frame.at(x, y)), 4.0);
        num += w * (static_cast<double>(x) -
                    static_cast<double>(frame.width() - 1) / 2.0);
        den += w;
      }
    }
    const double offset = den > 0 ? num / den : 0.0;
    // Positive offset = bright mass to the right = off toward the left
    // boundary? The tape is on both sides; steer to balance them.
    const double steer = -0.25 * offset;
    return vehicle::DriveCommand{steer, 0.45}.clamped();
  }
  void reset() override {}
  std::string name() const override { return "centroid"; }
};

/// A pilot that always drives straight at full throttle: must leave the
/// track quickly, producing errors.
class StraightPilot : public Pilot {
 public:
  vehicle::DriveCommand act(const camera::Image&) override {
    return {0.0, 0.9};
  }
  void reset() override {}
  std::string name() const override { return "straight"; }
};

TEST(Evaluator, ValidatesOptions) {
  const track::Track t = track::Track::paper_oval();
  StraightPilot p;
  EvalOptions opt;
  opt.duration_s = 0;
  EXPECT_THROW(run_evaluation(t, p, opt), std::invalid_argument);
}

TEST(Evaluator, StraightPilotLeavesTrackAndIsReset) {
  const track::Track t = track::Track::paper_oval();
  StraightPilot p;
  EvalOptions opt;
  opt.duration_s = 30.0;
  const EvalResult r = run_evaluation(t, p, opt);
  // The car leaves the lane over and over; each event is an error and a
  // marshal-style reset onto the centerline.
  EXPECT_GT(r.errors, 5u);
  EXPECT_EQ(r.steps, 600u);
  EXPECT_DOUBLE_EQ(r.duration_s, 30.0);
  // Any "progress" is bought with errors, so the combined score is tiny.
  EXPECT_LT(r.score(), 0.5);
}

TEST(Evaluator, ErrorsReduceScore) {
  EvalResult good;
  good.laps = 3;
  good.duration_s = 60;
  good.errors = 0;
  EvalResult bad = good;
  bad.errors = 5;
  EXPECT_GT(good.score(), bad.score());
}

TEST(Evaluator, ResultAccounting) {
  const track::Track t = track::Track::paper_oval();
  StraightPilot p;
  EvalOptions opt;
  opt.duration_s = 10.0;
  const EvalResult r = run_evaluation(t, p, opt);
  EXPECT_NEAR(r.mean_speed * r.duration_s, r.distance_m, 1e-6);
  EXPECT_NEAR(r.laps * t.length(), r.distance_m, 1e-6);
}

TEST(Evaluator, LatencyHurtsDriving) {
  // The same (competent) pilot with a long command latency must do worse.
  const track::Track t = track::Track::paper_oval();
  CentroidPilot pilot;
  EvalOptions fast;
  fast.duration_s = 60.0;
  EvalOptions slow = fast;
  slow.command_latency_s = 0.5;
  const EvalResult r_fast = run_evaluation(t, pilot, fast);
  const EvalResult r_slow = run_evaluation(t, pilot, slow);
  EXPECT_GT(r_fast.distance_m, 1.0);
  // More errors or less distance — either signals degradation.
  EXPECT_TRUE(r_slow.errors > r_fast.errors ||
              r_slow.distance_m < r_fast.distance_m);
}

TEST(Evaluator, PerfModelPathMatchesFixedLatencyAtBatchOne) {
  // Command-latency accounting through the batched perf-model path: at
  // batch 1 it must be indistinguishable from folding the same inference
  // latency into command_latency_s by hand.
  const track::Track t = track::Track::paper_oval();
  CentroidPilot pilot;
  const gpu::DeviceSpec& pi = gpu::device("RaspberryPi4");
  const std::uint64_t flops = 20'000'000;

  EvalOptions modeled;
  modeled.duration_s = 20.0;
  modeled.infer_device = &pi;
  modeled.infer_flops = flops;
  modeled.infer_batch = 1;

  EvalOptions legacy;
  legacy.duration_s = 20.0;
  legacy.command_latency_s = gpu::inference_latency_s(pi, flops);

  const EvalResult a = run_evaluation(t, pilot, modeled);
  const EvalResult b = run_evaluation(t, pilot, legacy);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_DOUBLE_EQ(a.distance_m, b.distance_m);
}

// End-to-end: collect -> train -> closed-loop drive. The trained model
// must drive dramatically better than an untrained one.
TEST(Evaluator, TrainedModelDrivesBetterThanUntrained) {
  const track::Track t = track::Track::paper_oval();
  const fs::path dir =
      fs::temp_directory_path() / ("autolearn_eval_" + std::to_string(getpid()));
  fs::remove_all(dir);
  data::CollectOptions copt;
  copt.duration_s = 180.0;
  // A slightly weaving driver produces recovery examples — the standard
  // imitation-learning trick the DonkeyCar instructions also recommend.
  copt.expert.steering_noise = 0.10;
  data::collect_session(t, data::DataPath::Sample, copt, dir / "tub");
  data::Tub tub(dir / "tub");
  auto samples = data::build_samples(tub.read_all(), {});
  auto [train, val] = data::split_train_val(std::move(samples), 0.15);

  ml::ModelConfig mcfg;
  auto trained = ml::make_model(ml::ModelType::Linear, mcfg);
  auto untrained = ml::make_model(ml::ModelType::Linear, mcfg);
  ml::TrainOptions topt;
  topt.epochs = 12;
  ml::fit(*trained, train, val, topt);

  ModelPilot trained_pilot(*trained);
  ModelPilot untrained_pilot(*untrained);
  EvalOptions eopt;
  eopt.duration_s = 60.0;
  const EvalResult r_trained = run_evaluation(t, trained_pilot, eopt);
  const EvalResult r_untrained = run_evaluation(t, untrained_pilot, eopt);

  EXPECT_GT(r_trained.laps, 1.0);
  EXPECT_LT(r_trained.errors, 8u);
  EXPECT_GT(r_trained.score(), r_untrained.score());
  fs::remove_all(dir);
}

TEST(ModelPilot, BuffersSequenceForRnn) {
  ml::ModelConfig cfg;
  auto model = ml::make_model(ml::ModelType::Rnn, cfg);
  ModelPilot pilot(*model);
  camera::Image frame(cfg.img_w, cfg.img_h, 0.5f);
  // First call must not throw even though only one frame exists yet.
  const vehicle::DriveCommand cmd = pilot.act(frame);
  EXPECT_GE(cmd.steering, -1.0);
  EXPECT_LE(cmd.steering, 1.0);
}

TEST(ModelPilot, MemoryModelHistoryMaintained) {
  ml::ModelConfig cfg;
  auto model = ml::make_model(ml::ModelType::Memory, cfg);
  ModelPilot pilot(*model);
  camera::Image frame(cfg.img_w, cfg.img_h, 0.5f);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NO_THROW(pilot.act(frame));
  }
  pilot.reset();
  EXPECT_NO_THROW(pilot.act(frame));
}

TEST(ModelPilot, NamesMatchModel) {
  ml::ModelConfig cfg;
  auto model = ml::make_model(ml::ModelType::Inferred, cfg);
  ModelPilot pilot(*model);
  EXPECT_EQ(pilot.name(), "inferred");
}

}  // namespace
}  // namespace autolearn::eval
