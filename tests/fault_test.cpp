#include <gtest/gtest.h>

#include <cmath>

#include "fault/circuit_breaker.hpp"
#include "fault/report.hpp"
#include "fault/retry.hpp"

namespace autolearn::fault {
namespace {

// --- RetryPolicy -----------------------------------------------------------

TEST(RetryPolicy, ValidationRejectsNonsense) {
  RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RetryPolicy{};
  p.base_delay_s = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RetryPolicy{};
  p.multiplier = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RetryPolicy{};
  p.max_delay_s = p.base_delay_s / 2;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  EXPECT_NO_THROW(RetryPolicy{}.validate());
  EXPECT_NO_THROW(RetryPolicy::none().validate());
  EXPECT_NO_THROW(RetryPolicy::immediate(3).validate());
}

TEST(RetryPolicy, NoJitterFollowsExactExponentialSchedule) {
  RetryPolicy p;
  p.base_delay_s = 1.0;
  p.multiplier = 2.0;
  p.max_delay_s = 10.0;
  p.jitter = RetryPolicy::Jitter::None;
  util::Rng rng(7);
  double prev = 0.0;
  EXPECT_DOUBLE_EQ(p.backoff_s(1, prev, rng), 1.0);
  EXPECT_DOUBLE_EQ(p.backoff_s(2, prev, rng), 2.0);
  EXPECT_DOUBLE_EQ(p.backoff_s(3, prev, rng), 4.0);
  EXPECT_DOUBLE_EQ(p.backoff_s(4, prev, rng), 8.0);
  EXPECT_DOUBLE_EQ(p.backoff_s(5, prev, rng), 10.0);  // capped
  EXPECT_DOUBLE_EQ(p.backoff_s(50, prev, rng), 10.0);
}

TEST(RetryPolicy, FullJitterStaysWithinTarget) {
  RetryPolicy p;
  p.base_delay_s = 0.5;
  p.multiplier = 3.0;
  p.max_delay_s = 20.0;
  p.jitter = RetryPolicy::Jitter::Full;
  util::Rng rng(11);
  for (int failures = 1; failures <= 8; ++failures) {
    const double target =
        std::min(p.max_delay_s, p.base_delay_s * std::pow(3.0, failures - 1));
    for (int i = 0; i < 50; ++i) {
      double prev = 0.0;
      const double d = p.backoff_s(failures, prev, rng);
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, target);
    }
  }
}

TEST(RetryPolicy, DecorrelatedJitterBoundedByBaseAndCap) {
  RetryPolicy p;  // default jitter is Decorrelated
  p.base_delay_s = 0.25;
  p.max_delay_s = 5.0;
  util::Rng rng(13);
  double prev = 0.0;
  for (int failures = 1; failures < 40; ++failures) {
    const double d = p.backoff_s(failures, prev, rng);
    EXPECT_GE(d, p.base_delay_s);
    EXPECT_LE(d, p.max_delay_s);
    EXPECT_DOUBLE_EQ(prev, d);  // state carried for the next draw
  }
}

TEST(RetryPolicy, SameSeedSameSchedule) {
  RetryPolicy p;
  util::Rng a(99), b(99);
  double pa = 0.0, pb = 0.0;
  for (int k = 1; k < 10; ++k) {
    EXPECT_DOUBLE_EQ(p.backoff_s(k, pa, a), p.backoff_s(k, pb, b));
  }
}

TEST(RetryState, CountsAndExhausts) {
  RetryPolicy p = RetryPolicy::immediate(3);
  RetryState state(p);
  EXPECT_FALSE(state.exhausted());
  state.record_attempt();
  state.record_attempt();
  EXPECT_FALSE(state.exhausted());
  state.record_attempt();
  EXPECT_TRUE(state.exhausted());
  EXPECT_EQ(state.attempts(), 3);
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(state.next_backoff_s(rng), 0.0);  // immediate = no backoff
}

// --- CircuitBreaker --------------------------------------------------------

CircuitBreakerConfig cfg(int threshold = 3, double open_s = 2.0,
                         int probes = 1) {
  CircuitBreakerConfig c;
  c.failure_threshold = threshold;
  c.open_duration_s = open_s;
  c.half_open_successes = probes;
  return c;
}

TEST(CircuitBreaker, ConfigValidation) {
  EXPECT_THROW(CircuitBreaker(cfg(0)), std::invalid_argument);
  EXPECT_THROW(CircuitBreaker(cfg(1, 0.0)), std::invalid_argument);
  EXPECT_THROW(CircuitBreaker(cfg(1, 1.0, 0)), std::invalid_argument);
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailures) {
  CircuitBreaker b(cfg(3));
  EXPECT_TRUE(b.allow(0.0));
  b.record_failure(0.1);
  b.record_failure(0.2);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
  // A success resets the consecutive count.
  b.record_success(0.3);
  b.record_failure(0.4);
  b.record_failure(0.5);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
  b.record_failure(0.6);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(b.times_opened(), 1u);
  EXPECT_FALSE(b.allow(0.7));  // open denies outright
}

TEST(CircuitBreaker, HalfOpenProbeClosesOrReopens) {
  CircuitBreaker b(cfg(1, 2.0));
  b.record_failure(1.0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(b.allow(2.5));  // still cooling down
  EXPECT_TRUE(b.allow(3.0));   // cool-down elapsed -> half-open probe
  EXPECT_EQ(b.state(), CircuitBreaker::State::HalfOpen);
  // Probe fails: straight back to open, full cool-down again.
  b.record_failure(3.0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(b.times_opened(), 2u);
  EXPECT_FALSE(b.allow(4.5));
  EXPECT_TRUE(b.allow(5.0));
  b.record_success(5.0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
  EXPECT_DOUBLE_EQ(b.last_closed_at(), 5.0);
  EXPECT_TRUE(b.allow(5.1));
}

TEST(CircuitBreaker, MultipleProbesRequired) {
  CircuitBreaker b(cfg(1, 1.0, /*probes=*/2));
  b.record_failure(0.0);
  EXPECT_TRUE(b.allow(1.0));
  b.record_success(1.0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::HalfOpen);  // one is not enough
  b.record_success(1.1);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
}

TEST(CircuitBreaker, DegradedTimeAccumulates) {
  CircuitBreaker b(cfg(1, 1.0));
  b.record_failure(10.0);
  EXPECT_DOUBLE_EQ(b.degraded_s(12.0), 2.0);  // still open
  EXPECT_TRUE(b.allow(11.0));
  b.record_success(11.5);
  EXPECT_DOUBLE_EQ(b.degraded_s(20.0), 1.5);  // frozen after close
  b.record_failure(30.0);
  EXPECT_DOUBLE_EQ(b.degraded_s(31.0), 2.5);
}

// --- ChaosReport plumbing --------------------------------------------------

TEST(ChaosReport, CountsAndEquality) {
  ChaosReport a;
  a.timeline.push_back({1.0, FaultKind::Partition, "chi-uc", false, "x"});
  a.timeline.push_back({2.0, FaultKind::Partition, "chi-uc", true, "y"});
  a.injected = 1;
  a.recovered = 1;
  EXPECT_EQ(a.count(FaultKind::Partition), 1u);
  EXPECT_EQ(a.count(FaultKind::Partition, /*recoveries=*/true), 1u);
  EXPECT_EQ(a.count(FaultKind::DeviceCrash), 0u);
  ChaosReport b = a;
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.summary(), b.summary());
  b.timeline[0].time = 1.5;
  EXPECT_FALSE(a == b);
}

TEST(FaultKind, Names) {
  EXPECT_STREQ(to_string(FaultKind::LinkDegrade), "link-degrade");
  EXPECT_STREQ(to_string(FaultKind::Partition), "partition");
  EXPECT_STREQ(to_string(FaultKind::DeviceCrash), "device-crash");
  EXPECT_STREQ(to_string(FaultKind::ContainerKill), "container-kill");
  EXPECT_STREQ(to_string(FaultKind::LeasePreempt), "lease-preempt");
  EXPECT_STREQ(to_string(FaultKind::TransferFlap), "transfer-flap");
}

}  // namespace
}  // namespace autolearn::fault
