#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "fault/circuit_breaker.hpp"
#include "fault/report.hpp"
#include "fault/retry.hpp"

namespace autolearn::fault {
namespace {

// --- RetryPolicy -----------------------------------------------------------

TEST(RetryPolicy, ValidationRejectsNonsense) {
  RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RetryPolicy{};
  p.base_delay_s = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RetryPolicy{};
  p.multiplier = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RetryPolicy{};
  p.max_delay_s = p.base_delay_s / 2;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  EXPECT_NO_THROW(RetryPolicy{}.validate());
  EXPECT_NO_THROW(RetryPolicy::none().validate());
  EXPECT_NO_THROW(RetryPolicy::immediate(3).validate());
}

TEST(RetryPolicy, NoJitterFollowsExactExponentialSchedule) {
  RetryPolicy p;
  p.base_delay_s = 1.0;
  p.multiplier = 2.0;
  p.max_delay_s = 10.0;
  p.jitter = RetryPolicy::Jitter::None;
  util::Rng rng(7);
  double prev = 0.0;
  EXPECT_DOUBLE_EQ(p.backoff_s(1, prev, rng), 1.0);
  EXPECT_DOUBLE_EQ(p.backoff_s(2, prev, rng), 2.0);
  EXPECT_DOUBLE_EQ(p.backoff_s(3, prev, rng), 4.0);
  EXPECT_DOUBLE_EQ(p.backoff_s(4, prev, rng), 8.0);
  EXPECT_DOUBLE_EQ(p.backoff_s(5, prev, rng), 10.0);  // capped
  EXPECT_DOUBLE_EQ(p.backoff_s(50, prev, rng), 10.0);
}

TEST(RetryPolicy, FullJitterStaysWithinTarget) {
  RetryPolicy p;
  p.base_delay_s = 0.5;
  p.multiplier = 3.0;
  p.max_delay_s = 20.0;
  p.jitter = RetryPolicy::Jitter::Full;
  util::Rng rng(11);
  for (int failures = 1; failures <= 8; ++failures) {
    const double target =
        std::min(p.max_delay_s, p.base_delay_s * std::pow(3.0, failures - 1));
    for (int i = 0; i < 50; ++i) {
      double prev = 0.0;
      const double d = p.backoff_s(failures, prev, rng);
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, target);
    }
  }
}

TEST(RetryPolicy, DecorrelatedJitterBoundedByBaseAndCap) {
  RetryPolicy p;  // default jitter is Decorrelated
  p.base_delay_s = 0.25;
  p.max_delay_s = 5.0;
  util::Rng rng(13);
  double prev = 0.0;
  for (int failures = 1; failures < 40; ++failures) {
    const double d = p.backoff_s(failures, prev, rng);
    EXPECT_GE(d, p.base_delay_s);
    EXPECT_LE(d, p.max_delay_s);
    EXPECT_DOUBLE_EQ(prev, d);  // state carried for the next draw
  }
}

TEST(RetryPolicy, SameSeedSameSchedule) {
  RetryPolicy p;
  util::Rng a(99), b(99);
  double pa = 0.0, pb = 0.0;
  for (int k = 1; k < 10; ++k) {
    EXPECT_DOUBLE_EQ(p.backoff_s(k, pa, a), p.backoff_s(k, pb, b));
  }
}

TEST(RetryState, CountsAndExhausts) {
  RetryPolicy p = RetryPolicy::immediate(3);
  RetryState state(p);
  EXPECT_FALSE(state.exhausted());
  state.record_attempt();
  state.record_attempt();
  EXPECT_FALSE(state.exhausted());
  state.record_attempt();
  EXPECT_TRUE(state.exhausted());
  EXPECT_EQ(state.attempts(), 3);
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(state.next_backoff_s(rng), 0.0);  // immediate = no backoff
}

// --- CircuitBreaker --------------------------------------------------------

CircuitBreakerConfig cfg(int threshold = 3, double open_s = 2.0,
                         int probes = 1) {
  CircuitBreakerConfig c;
  c.failure_threshold = threshold;
  c.open_duration_s = open_s;
  c.half_open_successes = probes;
  return c;
}

TEST(CircuitBreaker, ConfigValidation) {
  EXPECT_THROW(CircuitBreaker(cfg(0)), std::invalid_argument);
  EXPECT_THROW(CircuitBreaker(cfg(1, 0.0)), std::invalid_argument);
  EXPECT_THROW(CircuitBreaker(cfg(1, 1.0, 0)), std::invalid_argument);
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailures) {
  CircuitBreaker b(cfg(3));
  EXPECT_TRUE(b.allow(0.0));
  b.record_failure(0.1);
  b.record_failure(0.2);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
  // A success resets the consecutive count.
  b.record_success(0.3);
  b.record_failure(0.4);
  b.record_failure(0.5);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
  b.record_failure(0.6);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(b.times_opened(), 1u);
  EXPECT_FALSE(b.allow(0.7));  // open denies outright
}

TEST(CircuitBreaker, HalfOpenProbeClosesOrReopens) {
  CircuitBreaker b(cfg(1, 2.0));
  b.record_failure(1.0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(b.allow(2.5));  // still cooling down
  EXPECT_TRUE(b.allow(3.0));   // cool-down elapsed -> half-open probe
  EXPECT_EQ(b.state(), CircuitBreaker::State::HalfOpen);
  // Probe fails: straight back to open, full cool-down again.
  b.record_failure(3.0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(b.times_opened(), 2u);
  EXPECT_FALSE(b.allow(4.5));
  EXPECT_TRUE(b.allow(5.0));
  b.record_success(5.0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
  EXPECT_DOUBLE_EQ(b.last_closed_at(), 5.0);
  EXPECT_TRUE(b.allow(5.1));
}

TEST(CircuitBreaker, MultipleProbesRequired) {
  CircuitBreaker b(cfg(1, 1.0, /*probes=*/2));
  b.record_failure(0.0);
  EXPECT_TRUE(b.allow(1.0));
  b.record_success(1.0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::HalfOpen);  // one is not enough
  b.record_success(1.1);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
}

TEST(CircuitBreaker, DegradedTimeAccumulates) {
  CircuitBreaker b(cfg(1, 1.0));
  b.record_failure(10.0);
  EXPECT_DOUBLE_EQ(b.degraded_s(12.0), 2.0);  // still open
  EXPECT_TRUE(b.allow(11.0));
  b.record_success(11.5);
  EXPECT_DOUBLE_EQ(b.degraded_s(20.0), 1.5);  // frozen after close
  b.record_failure(30.0);
  EXPECT_DOUBLE_EQ(b.degraded_s(31.0), 2.5);
}

// --- property sweeps -------------------------------------------------------

TEST(RetryPolicyProperty, JitterEnvelopesHoldAcrossSeeds) {
  RetryPolicy full;
  full.base_delay_s = 0.5;
  full.multiplier = 2.0;
  full.max_delay_s = 8.0;
  full.jitter = RetryPolicy::Jitter::Full;
  RetryPolicy deco = full;
  deco.jitter = RetryPolicy::Jitter::Decorrelated;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    util::Rng rng(seed);
    double prev_full = 0.0;
    double prev_deco = 0.0;
    for (int failures = 1; failures <= 8; ++failures) {
      const double target =
          std::min(full.max_delay_s,
                   full.base_delay_s * std::pow(full.multiplier, failures - 1));
      // Full jitter: uniform in [0, exponential target].
      const double f = full.backoff_s(failures, prev_full, rng);
      ASSERT_GE(f, 0.0);
      ASSERT_LE(f, target);
      // Decorrelated jitter: uniform in [base, 3 * previous], capped.
      const double before = prev_deco;
      const double d = deco.backoff_s(failures, prev_deco, rng);
      ASSERT_GE(d, deco.base_delay_s);
      ASSERT_LE(d, deco.max_delay_s);
      ASSERT_LE(d, std::max(deco.base_delay_s, 3.0 * before) + 1e-12);
      ASSERT_DOUBLE_EQ(prev_deco, d);  // jitter memory updated in place
    }
  }
}

TEST(RetryPolicyProperty, AttemptCapIsExact) {
  for (int cap = 1; cap <= 6; ++cap) {
    RetryPolicy p = RetryPolicy::standard();
    p.max_attempts = cap;
    RetryState state(p);
    util::Rng rng(static_cast<std::uint64_t>(cap));
    int attempts = 0;
    while (!state.exhausted()) {
      state.record_attempt();
      ++attempts;
      if (!state.exhausted()) {
        EXPECT_GT(state.next_backoff_s(rng), 0.0);
      }
    }
    EXPECT_EQ(attempts, cap);
  }
}

TEST(RetryPolicyProperty, ImmediateMatchesLegacyCounterSemantics) {
  // The legacy max_retries interface maps onto immediate(): N attempts
  // retried back-to-back, no backoff, no rng draws.
  const RetryPolicy p = RetryPolicy::immediate(3);
  EXPECT_EQ(p.max_attempts, 3);
  EXPECT_EQ(p.jitter, RetryPolicy::Jitter::None);
  util::Rng probe(1);
  double prev = 0.0;
  for (int failures = 1; failures <= 5; ++failures) {
    EXPECT_DOUBLE_EQ(p.backoff_s(failures, prev, probe), 0.0);
  }
  util::Rng untouched(1);
  EXPECT_EQ(untouched.next_u64(), probe.next_u64());  // no randomness consumed
}

// --- transition hook (observability tap) -----------------------------------

TEST(CircuitBreaker, TransitionHookSeesEveryStateChange) {
  CircuitBreaker b(cfg(2, 1.0, /*probes=*/1));
  std::vector<std::pair<CircuitBreaker::State, CircuitBreaker::State>> seen;
  std::vector<double> when;
  b.set_on_transition([&](CircuitBreaker::State from,
                          CircuitBreaker::State to, double now) {
    seen.emplace_back(from, to);
    when.push_back(now);
    EXPECT_EQ(b.state(), to);  // hook fires after the move
  });
  b.record_failure(0.0);
  EXPECT_TRUE(seen.empty());  // below threshold: no transition
  b.record_failure(0.5);      // trip
  EXPECT_TRUE(b.allow(2.0));  // cool-down elapsed: half-open probe
  b.record_failure(2.1);      // probe fails: re-trip
  EXPECT_TRUE(b.allow(4.0));
  b.record_success(4.1);      // probe succeeds: re-close
  using S = CircuitBreaker::State;
  const std::vector<std::pair<S, S>> expected = {
      {S::Closed, S::Open},   {S::Open, S::HalfOpen}, {S::HalfOpen, S::Open},
      {S::Open, S::HalfOpen}, {S::HalfOpen, S::Closed}};
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(when, (std::vector<double>{0.5, 2.0, 2.1, 4.0, 4.1}));
  EXPECT_EQ(b.times_opened(), 2u);
}

// --- ChaosReport plumbing --------------------------------------------------

TEST(ChaosReport, CountsAndEquality) {
  ChaosReport a;
  a.timeline.push_back({1.0, FaultKind::Partition, "chi-uc", false, "x"});
  a.timeline.push_back({2.0, FaultKind::Partition, "chi-uc", true, "y"});
  a.injected = 1;
  a.recovered = 1;
  EXPECT_EQ(a.count(FaultKind::Partition), 1u);
  EXPECT_EQ(a.count(FaultKind::Partition, /*recoveries=*/true), 1u);
  EXPECT_EQ(a.count(FaultKind::DeviceCrash), 0u);
  ChaosReport b = a;
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.summary(), b.summary());
  b.timeline[0].time = 1.5;
  EXPECT_FALSE(a == b);
}

TEST(FaultKind, Names) {
  EXPECT_STREQ(to_string(FaultKind::LinkDegrade), "link-degrade");
  EXPECT_STREQ(to_string(FaultKind::Partition), "partition");
  EXPECT_STREQ(to_string(FaultKind::DeviceCrash), "device-crash");
  EXPECT_STREQ(to_string(FaultKind::ContainerKill), "container-kill");
  EXPECT_STREQ(to_string(FaultKind::LeasePreempt), "lease-preempt");
  EXPECT_STREQ(to_string(FaultKind::TransferFlap), "transfer-flap");
}

}  // namespace
}  // namespace autolearn::fault
