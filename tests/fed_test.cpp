// Federated continual learning (ctest -L fed): the delta codec fences,
// the FedAvg merge oracle, straggler-cutoff / quorum determinism, the
// chaos round-survival gate (ClientDropout, DeltaCorrupt, torn uploads,
// aggregator preemption with bitwise-identical resume), the canary gate
// on a bad round, the TransferManager partial-visibility property at
// delta sizes, and the random_plan backward-compatibility regression.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fault/chaos.hpp"
#include "fault/preempt.hpp"
#include "fed/aggregator.hpp"
#include "fed/client.hpp"
#include "fed/delta.hpp"
#include "fed/report.hpp"
#include "ml/driving_model.hpp"
#include "net/network.hpp"
#include "net/transfer.hpp"
#include "objectstore/objectstore.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/replication.hpp"
#include "util/event_queue.hpp"
#include "util/rng.hpp"

namespace autolearn::fed {
namespace {

ml::ModelConfig tiny_config() {
  ml::ModelConfig cfg;
  cfg.img_w = 32;
  cfg.img_h = 24;
  cfg.lr = 2e-3;
  return cfg;
}

/// Bright vertical band whose column encodes the steering label (the
/// repo's standard synthetic task).
std::vector<ml::Sample> synthetic_dataset(std::size_t n,
                                          const ml::ModelConfig& cfg,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ml::Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t col = static_cast<std::size_t>(
        rng.uniform_int(2, static_cast<std::int64_t>(cfg.img_w) - 3));
    camera::Image img(cfg.img_w, cfg.img_h, 0.1f);
    for (std::size_t y = 0; y < cfg.img_h; ++y) {
      for (std::size_t dx = 0; dx < 3; ++dx) img.at(col - 1 + dx, y) = 0.9f;
    }
    ml::Sample s;
    for (std::size_t f = 0; f < cfg.seq_len; ++f) s.frames.push_back(img);
    const float steer = static_cast<float>(
        2.0 * static_cast<double>(col) / (cfg.img_w - 1) - 1.0);
    for (std::size_t h = 0; h < cfg.history_len; ++h) {
      s.history.push_back(steer);
      s.history.push_back(0.5f);
    }
    s.steering = steer;
    s.throttle = 0.5f;
    out.push_back(std::move(s));
  }
  return out;
}

std::string car_name(std::size_t i) {
  return "car-0" + std::to_string(i + 1);
}

FedOptions test_options() {
  FedOptions opt;
  opt.rounds = 2;
  opt.round_timeout_s = 600.0;  // generous: Pi-priced local fits are slow
  opt.quorum_frac = 0.5;
  opt.retry_backoff_s = 2.0;
  opt.cloud_host = "cloud";
  opt.canary.max_steering_drift = 0.5;
  opt.canary.bake_s = 1.0;
  return opt;
}

/// Full federated rig on one event queue: three cars with private slices,
/// a two-shard replicated registry with a bootstrap model, and transfer
/// routes car -> cloud.
struct FedRig {
  util::EventQueue queue;
  net::Network network;
  net::TransferManager transfers{network, queue, util::Rng(5), 2};
  objectstore::ObjectStore os;
  serve::ReplicatedRegistry registry{2};
  ml::ModelConfig cfg = tiny_config();
  std::shared_ptr<ml::DrivingModel> bootstrap;
  std::unique_ptr<Aggregator> agg;

  explicit FedRig(FedOptions opt = test_options(), std::size_t cars = 3) {
    network.add_host("cloud");
    for (std::size_t i = 0; i < cars; ++i) {
      network.add_host(car_name(i));
      network.add_duplex(car_name(i), "cloud", net::LinkSpec{});
    }
    bootstrap = ml::make_model(ml::ModelType::Linear, cfg);
    registry.publish_all(bootstrap, "bootstrap");
    agg = std::make_unique<Aggregator>(queue, registry, transfers, os,
                                       ml::ModelType::Linear, cfg, opt);
    for (std::size_t i = 0; i < cars; ++i) {
      ClientOptions copt;
      copt.name = car_name(i);
      copt.seed = 100 + i;
      agg->add_client(copt, synthetic_dataset(8 + 2 * i, cfg, 500 + i));
    }
    agg->set_probes(synthetic_dataset(6, cfg, 999));
  }

  std::vector<float> fleet_params() {
    return flatten_params(*registry.shard(0).current()->model);
  }
};

// --- delta codec -----------------------------------------------------------

WeightDelta sample_delta() {
  WeightDelta d;
  d.client = "car-01";
  d.round = 3;
  d.base_version = 7;
  d.examples = 12;
  d.values = {0.5f, -1.25f, 0.0f, 3e-7f};
  return d;
}

TEST(DeltaCodec, RoundTripsHeaderAndValues) {
  const WeightDelta d = sample_delta();
  const WeightDelta back = decode_delta(encode_delta(d));
  EXPECT_EQ(back.client, d.client);
  EXPECT_EQ(back.round, d.round);
  EXPECT_EQ(back.base_version, d.base_version);
  EXPECT_EQ(back.examples, d.examples);
  EXPECT_EQ(back.values, d.values);
}

TEST(DeltaCodec, RejectsForeignBytes) {
  try {
    decode_delta("PNG\x89 definitely not a delta");
    FAIL() << "foreign bytes decoded";
  } catch (const DeltaError& e) {
    EXPECT_EQ(e.code(), DeltaError::Code::BadMagic);
  }
}

TEST(DeltaCodec, RejectsTruncation) {
  std::string bytes = encode_delta(sample_delta());
  bytes.resize(bytes.size() - 5);
  try {
    decode_delta(bytes);
    FAIL() << "truncated delta decoded";
  } catch (const DeltaError& e) {
    EXPECT_EQ(e.code(), DeltaError::Code::Truncated);
  }
}

TEST(DeltaCodec, ValidateRejectsSizeMismatchAndNonFinite) {
  WeightDelta d = sample_delta();
  try {
    validate_delta(d, d.values.size() + 1);
    FAIL() << "size mismatch accepted";
  } catch (const DeltaError& e) {
    EXPECT_EQ(e.code(), DeltaError::Code::SizeMismatch);
  }
  d.values[2] = std::nanf("");
  try {
    validate_delta(d, d.values.size());
    FAIL() << "NaN delta accepted";
  } catch (const DeltaError& e) {
    EXPECT_EQ(e.code(), DeltaError::Code::NonFinite);
  }
}

TEST(DeltaCodec, FlattenAddScaledRoundTrip) {
  const ml::ModelConfig cfg = tiny_config();
  auto model = ml::make_model(ml::ModelType::Linear, cfg);
  const std::vector<float> before = flatten_params(*model);
  ASSERT_EQ(before.size(), param_count(*model));
  std::vector<float> bump(before.size(), 0.25f);
  add_scaled(*model, bump, 2.0f);
  const std::vector<float> after = flatten_params(*model);
  for (std::size_t i = 0; i < before.size(); ++i) {
    ASSERT_FLOAT_EQ(after[i], before[i] + 0.5f) << "param " << i;
  }
  EXPECT_THROW(add_scaled(*model, {1.0f}, 1.0f), DeltaError);
}

// --- FedAvg merge oracle ---------------------------------------------------

TEST(FedAggregator, MergeMatchesExampleWeightedOracle) {
  FedOptions opt = test_options();
  opt.rounds = 1;
  FedRig rig(opt);

  // Oracle: recompute every client's delta against the bootstrap exactly
  // as the aggregator's clients do, then fold them with the same running
  // weighted mean + server_lr arithmetic.
  std::vector<std::vector<float>> deltas;
  std::vector<std::uint64_t> weights;
  for (std::size_t i = 0; i < 3; ++i) {
    ClientOptions copt;
    copt.name = car_name(i);
    copt.seed = 100 + i;
    EdgeClient twin(copt, ml::ModelType::Linear, rig.cfg,
                    synthetic_dataset(8 + 2 * i, rig.cfg, 500 + i));
    auto update = twin.compute_update(*rig.bootstrap, 1, 1);
    deltas.push_back(update.delta.values);
    weights.push_back(update.delta.examples);
  }

  const FedReport report = rig.agg->run();
  ASSERT_EQ(report.rounds.size(), 1u);
  EXPECT_EQ(report.rounds[0].accepted, 3u);
  EXPECT_TRUE(report.rounds[0].promoted);
  EXPECT_EQ(report.deltas_accepted, 3u);
  EXPECT_GT(report.delta_bytes_shipped, 0u);

  std::vector<double> acc(deltas[0].size(), 0.0);
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < deltas.size(); ++c) {
    const double w = static_cast<double>(weights[c]);
    const double sum = static_cast<double>(total) + w;
    const double keep = static_cast<double>(total) / sum;
    const double add = w / sum;
    for (std::size_t j = 0; j < acc.size(); ++j) {
      acc[j] = acc[j] * keep + static_cast<double>(deltas[c][j]) * add;
    }
    total += weights[c];
  }
  const std::vector<float> base = flatten_params(*rig.bootstrap);
  const std::vector<float> fleet = rig.fleet_params();
  ASSERT_EQ(fleet.size(), base.size());
  for (std::size_t j = 0; j < base.size(); ++j) {
    const float expected =
        base[j] + static_cast<float>(rig.agg->options().server_lr * acc[j]);
    ASSERT_FLOAT_EQ(fleet[j], expected) << "param " << j;
  }
}

// --- cutoff / quorum -------------------------------------------------------

TEST(FedAggregator, AllStragglersMeansNoQuorumAndNothingPublished) {
  FedOptions opt = test_options();
  opt.rounds = 1;
  opt.round_timeout_s = 1e-3;  // nobody's Pi finishes in a millisecond
  FedRig rig(opt);
  const std::uint64_t before = rig.registry.shard(0).version();

  const FedReport report = rig.agg->run();
  ASSERT_EQ(report.rounds.size(), 1u);
  EXPECT_FALSE(report.rounds[0].quorum_met);
  EXPECT_EQ(report.rounds[0].published_version, 0u);
  EXPECT_EQ(report.rounds_no_quorum, 1u);
  EXPECT_EQ(report.stragglers, 3u);
  EXPECT_EQ(rig.registry.shard(0).version(), before);
  for (const ClientRoundRecord& c : report.rounds[0].clients) {
    EXPECT_EQ(c.outcome, ClientOutcome::Straggler);
  }
}

TEST(FedAggregator, PartitionedClientFailsTransferButQuorumHolds) {
  FedOptions opt = test_options();
  opt.rounds = 1;
  FedRig rig(opt);
  rig.network.partition_host(car_name(2));

  const FedReport report = rig.agg->run();
  ASSERT_EQ(report.rounds.size(), 1u);
  EXPECT_TRUE(report.rounds[0].quorum_met);
  EXPECT_TRUE(report.rounds[0].promoted);
  EXPECT_EQ(report.rounds[0].accepted, 2u);
  EXPECT_EQ(report.transfer_failures, 1u);
  EXPECT_EQ(report.rounds[0].clients[2].outcome,
            ClientOutcome::TransferFailed);
}

// --- torn / corrupt deltas -------------------------------------------------

TEST(FedAggregator, TornDeltaIsQuarantinedAndRetriedWithBackoff) {
  FedOptions opt = test_options();
  FedRig rig(opt);
  rig.agg->delta_store(1).truncate_next_upload(0.5);

  const FedReport report = rig.agg->run();
  ASSERT_EQ(report.rounds.size(), 2u);

  const RoundRecord& r1 = report.rounds[0];
  EXPECT_EQ(r1.clients[1].outcome, ClientOutcome::Quarantined);
  EXPECT_EQ(r1.accepted, 2u);
  EXPECT_TRUE(r1.quorum_met);

  // Next round the sender retries, delayed by the base backoff.
  const RoundRecord& r2 = report.rounds[1];
  EXPECT_EQ(r2.clients[1].outcome, ClientOutcome::Accepted);
  EXPECT_DOUBLE_EQ(r2.clients[1].backoff_s, opt.retry_backoff_s);
  EXPECT_EQ(r2.clients[0].backoff_s, 0.0);

  EXPECT_EQ(report.deltas_quarantined, 1u);
  EXPECT_EQ(report.deltas_accepted, 5u);
  EXPECT_EQ(rig.agg->delta_store(1).quarantined(), 1u);
}

TEST(FedAggregator, DeltaCorruptFaultNeverReachesTheMerge) {
  FedOptions opt = test_options();
  FedRig rig(opt);
  fault::ChaosEngine chaos(rig.queue, 42);
  chaos.attach_fed(rig.agg->fault_hooks());

  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::DeltaCorrupt;
  spec.at = 0.0;  // armed before any upload starts
  spec.target = car_name(0);
  chaos.inject(spec);

  const FedReport report = rig.agg->run();
  ASSERT_EQ(report.rounds.size(), 2u);
  EXPECT_EQ(report.rounds[0].clients[0].outcome, ClientOutcome::Quarantined);
  EXPECT_EQ(report.rounds[0].accepted, 2u);
  // One-shot: the client's round-2 upload is clean again.
  EXPECT_EQ(report.rounds[1].clients[0].outcome, ClientOutcome::Accepted);
  EXPECT_EQ(report.deltas_quarantined, 1u);
  // Zero undetected-corrupt deltas accepted: every accepted delta decoded
  // cleanly, and the corrupted generation sits in quarantine.
  EXPECT_EQ(rig.agg->delta_store(0).quarantined(), 1u);
  EXPECT_EQ(chaos.report().count(fault::FaultKind::DeltaCorrupt), 1u);
}

// --- client dropout --------------------------------------------------------

TEST(FedAggregator, DroppedClientMissesTheRoundAndRejoins) {
  FedOptions opt = test_options();
  FedRig rig(opt);
  fault::ChaosEngine chaos(rig.queue, 42);
  chaos.attach_fed(rig.agg->fault_hooks());

  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::ClientDropout;
  spec.at = 0.0;
  spec.duration = opt.round_timeout_s + 1.0;  // back for round 2
  spec.target = car_name(1);
  chaos.inject(spec);

  const FedReport report = rig.agg->run();
  ASSERT_EQ(report.rounds.size(), 2u);
  EXPECT_EQ(report.rounds[0].clients[1].outcome, ClientOutcome::Dropout);
  EXPECT_EQ(report.rounds[0].accepted, 2u);
  EXPECT_TRUE(report.rounds[0].promoted);
  EXPECT_EQ(report.rounds[1].clients[1].outcome, ClientOutcome::Accepted);
  EXPECT_EQ(report.dropouts, 1u);
  EXPECT_EQ(chaos.report().count(fault::FaultKind::ClientDropout), 1u);
  EXPECT_EQ(chaos.report().count(fault::FaultKind::ClientDropout, true), 1u);
}

TEST(FedAggregator, MidRoundDropoutLosesTheUpload) {
  FedOptions opt = test_options();
  opt.rounds = 1;
  FedRig rig(opt);
  fault::ChaosEngine chaos(rig.queue, 42);
  chaos.attach_fed(rig.agg->fault_hooks());

  // The local fit prices at well under a millisecond of Pi time and the
  // upload jitter adds up to 50ms, so a dropout 0.1ms into the round
  // lands between round start and the car's upload event.
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::ClientDropout;
  spec.at = 1e-4;
  spec.target = car_name(0);
  chaos.inject(spec);

  const FedReport report = rig.agg->run();
  ASSERT_EQ(report.rounds.size(), 1u);
  const ClientRoundRecord& c = report.rounds[0].clients[0];
  EXPECT_EQ(c.outcome, ClientOutcome::Dropout);
  EXPECT_EQ(c.upload_start_s, -1.0);
  EXPECT_EQ(c.committed_s, -1.0);
  EXPECT_EQ(report.rounds[0].accepted, 2u);
}

// --- preemption / resume ---------------------------------------------------

TEST(FedAggregator, PreemptedMergeResumesBitwiseIdentically) {
  // Reference: an uninterrupted run.
  FedRig plain(test_options());
  const FedReport expect_report = plain.agg->run();
  const std::vector<float> expect_params = plain.fleet_params();

  // Same rig, but the merge loop is killed at its second preemption point
  // (mid-merge of round 1) and then resumed by calling run() again.
  FedRig killed(test_options());
  fault::PreemptionToken token;
  token.arm(2);
  killed.agg->set_preemption(&token);
  EXPECT_THROW(killed.agg->run(), fault::PreemptedError);
  EXPECT_TRUE(token.fired());

  token.reset_ticks();  // the restarted aggregator gets a fresh tick clock
  killed.agg->set_preemption(&token);
  const FedReport resumed = killed.agg->run();

  EXPECT_TRUE(resumed == expect_report)
      << "resumed:\n" << resumed.summary()
      << "uninterrupted:\n" << expect_report.summary();
  const std::vector<float> resumed_params = killed.fleet_params();
  ASSERT_EQ(resumed_params.size(), expect_params.size());
  EXPECT_EQ(std::memcmp(resumed_params.data(), expect_params.data(),
                        expect_params.size() * sizeof(float)),
            0)
      << "published model differs after resume";
  EXPECT_EQ(killed.registry.shard(0).version(),
            plain.registry.shard(0).version());
}

TEST(FedAggregator, EveryMergeKillPointResumesToTheSameModel) {
  FedRig plain(test_options());
  plain.agg->run();
  const std::vector<float> expect_params = plain.fleet_params();

  // 3 accepted deltas per round -> ticks 1..3 kill mid-merge, tick 4 kills
  // between merge completion and publish.
  for (std::uint64_t kill = 1; kill <= 4; ++kill) {
    FedRig rig(test_options());
    fault::PreemptionToken token;
    token.arm(kill);
    rig.agg->set_preemption(&token);
    EXPECT_THROW(rig.agg->run(), fault::PreemptedError) << "tick " << kill;
    token.reset_ticks();
    rig.agg->run();
    const std::vector<float> params = rig.fleet_params();
    EXPECT_EQ(std::memcmp(params.data(), expect_params.data(),
                          expect_params.size() * sizeof(float)),
              0)
        << "kill tick " << kill;
  }
}

TEST(FedAggregator, ChaosArmedPreemptionIsRecordedAndSurvived) {
  FedRig rig(test_options());
  fault::ChaosEngine chaos(rig.queue, 11);
  fault::PreemptionToken token;
  const std::uint64_t tick =
      chaos.arm_preemption(token, {/*min_tick=*/1, /*max_tick=*/3});
  EXPECT_GE(tick, 1u);
  EXPECT_LE(tick, 3u);
  rig.agg->set_preemption(&token);
  EXPECT_THROW(rig.agg->run(), fault::PreemptedError);
  token.reset_ticks();
  const FedReport report = rig.agg->run();
  EXPECT_EQ(report.rounds.size(), 2u);
  EXPECT_EQ(report.rounds_published, 2u);
  EXPECT_EQ(chaos.report().preemptions, 1u);
}

// --- determinism under chaos ----------------------------------------------

FedReport chaos_run(std::uint64_t seed, std::vector<float>* params_out) {
  FedOptions opt = test_options();
  opt.rounds = 3;
  FedRig rig(opt);
  fault::ChaosEngine chaos(rig.queue, seed);
  chaos.attach_network(rig.network);
  chaos.attach_fed(rig.agg->fault_hooks());

  fault::RandomPlanOptions plan;
  plan.horizon_s = 3 * opt.round_timeout_s;
  plan.faults = 6;
  plan.mean_duration_s = opt.round_timeout_s / 2;
  plan.partition_host = car_name(0);
  plan.client_dropout_hosts = {car_name(1), car_name(2)};
  chaos.inject_plan(chaos.random_plan(plan));
  rig.agg->delta_store(2).truncate_next_upload(0.6);

  const FedReport report = rig.agg->run();
  if (params_out) *params_out = rig.fleet_params();
  return report;
}

TEST(FedAggregator, SameSeedSameTimelineUnderChaos) {
  std::vector<float> params_a, params_b;
  const FedReport a = chaos_run(97, &params_a);
  const FedReport b = chaos_run(97, &params_b);
  EXPECT_TRUE(a == b) << "a:\n" << a.summary() << "b:\n" << b.summary();
  EXPECT_EQ(a.summary(), b.summary());
  ASSERT_EQ(params_a.size(), params_b.size());
  EXPECT_EQ(std::memcmp(params_a.data(), params_b.data(),
                        params_a.size() * sizeof(float)),
            0);
}

TEST(FedAggregator, EveryRoundConvergesUnderChaos) {
  // The round-survival gate: dropout + torn uploads + partitions active,
  // yet every round terminates with a decision and no undetected-corrupt
  // delta is ever accepted (accepted deltas all decoded + validated).
  for (const std::uint64_t seed : {3ull, 17ull, 29ull}) {
    const FedReport report = chaos_run(seed, nullptr);
    EXPECT_EQ(report.rounds.size(), 3u) << "seed " << seed;
    for (const RoundRecord& r : report.rounds) {
      // Either the round published (promoted/rolled back) or it recorded
      // a quorum failure — never a hang, never a half-round.
      EXPECT_TRUE(r.quorum_met || r.published_version == 0);
      EXPECT_GT(r.finished_s, r.started_s);
    }
  }
}

// --- canary gate -----------------------------------------------------------

TEST(FedAggregator, BadRoundRollsBackAndIncumbentKeepsServing) {
  FedOptions opt = test_options();
  opt.rounds = 1;
  opt.canary.max_steering_drift = 0.0;  // any drift at all fails the gate
  FedRig rig(opt);
  const auto incumbent = rig.registry.shard(0).current()->model;

  const FedReport report = rig.agg->run();
  ASSERT_EQ(report.rounds.size(), 1u);
  EXPECT_TRUE(report.rounds[0].quorum_met);
  EXPECT_TRUE(report.rounds[0].rolled_back);
  EXPECT_FALSE(report.rounds[0].promoted);
  EXPECT_EQ(report.rounds[0].published_version, 0u);
  EXPECT_EQ(report.rounds_rolled_back, 1u);
  EXPECT_EQ(rig.registry.rollbacks(), 1u);
  // Every shard still serves the incumbent model object.
  for (std::size_t s = 0; s < rig.registry.shards(); ++s) {
    EXPECT_EQ(rig.registry.shard(s).current()->model, incumbent)
        << "shard " << s;
  }
}

// --- transfer partial-visibility property ----------------------------------

TEST(TransferProperty, MidFlightFailureNeverYieldsAPartialDelta) {
  // Delta-sized payload: the real envelope for the rig's model.
  const ml::ModelConfig cfg = tiny_config();
  auto model = ml::make_model(ml::ModelType::Linear, cfg);
  WeightDelta d;
  d.client = "car-01";
  d.round = 1;
  d.base_version = 1;
  d.examples = 10;
  d.values.assign(param_count(*model), 0.125f);
  const std::string payload = encode_delta(d);
  ASSERT_GT(payload.size(), 1000u);

  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::EventQueue queue;
    net::Network network;
    network.add_host("car-01");
    network.add_host("cloud");
    network.add_duplex("car-01", "cloud", net::LinkSpec{});
    net::TransferManager transfers{network, queue, util::Rng(seed), 2};
    objectstore::ObjectStore os;
    ckpt::CheckpointStore store{os};
    store.use_transfer(transfers, "car-01", "cloud");

    // A flap window opens at a random time after the upload starts; some
    // seeds kill the transfer mid-flight, some let it through.
    fault::ChaosEngine chaos(queue, seed);
    chaos.attach_network(network);
    fault::FaultSpec flap;
    flap.kind = fault::FaultKind::TransferFlap;
    flap.at = util::Rng(seed ^ 0xABCD).uniform(0.0, 2.0);
    flap.duration = 60.0;  // outlasts every retry
    flap.target = "car-01";
    flap.peer = "cloud";
    chaos.inject(flap);

    ckpt::CheckpointInfo info;
    info.epoch = 1;
    store.save("fed/car-01/delta", payload, info);
    queue.run();

    // The property: the object is all-or-nothing. Either the full payload
    // committed byte-equal, or no generation exists at all.
    const auto loaded = store.load_latest("fed/car-01/delta");
    if (loaded) {
      EXPECT_EQ(loaded->payload, payload) << "seed " << seed;
    } else {
      EXPECT_GE(store.upload_failures(), 1u) << "seed " << seed;
      EXPECT_TRUE(store.manifest("fed/car-01/delta").empty())
          << "seed " << seed;
    }
    EXPECT_EQ(store.quarantined(), 0u) << "seed " << seed;
  }
}

// --- random_plan backward compatibility (satellite) ------------------------

TEST(RandomPlan, OldOptionSetsProduceBitwiseIdenticalPlans) {
  // Golden plans captured from the pre-federated generator (before
  // client_dropout_hosts existed) for the exact options below. An empty
  // client_dropout_hosts must reproduce them bit for bit.
  struct GoldenSpec {
    fault::FaultKind kind;
    double at, duration;
    const char* target;
    const char* peer;
  };
  using FK = fault::FaultKind;
  const std::vector<GoldenSpec> golden7 = {
      {FK::Partition, 0x1.91088ee9f286ap+2, 0x1.2242ef868a21ep+2, "car-02", ""},
      {FK::LinkDegrade, 0x1.0b99e6f3a94e9p+4, 0x1.bf7af3727e11fp-1, "car-01",
       "cloud"},
      {FK::LinkDegrade, 0x1.b15ce4d3b3309p+4, 0x1.721475be22516p+1, "car-01",
       "cloud"},
      {FK::Partition, 0x1.bf9b9b74eae44p+4, 0x1.28c08188cc4f5p+3, "car-02", ""},
      {FK::LinkDegrade, 0x1.5f4abc8a11a6ep+5, 0x1.427079925a18ap-2, "car-01",
       "cloud"},
      {FK::LinkDegrade, 0x1.db9ce93b6cdd8p+5, 0x1.5c5c8a25722fcp-1, "car-01",
       "cloud"},
  };
  const std::vector<GoldenSpec> golden21 = {
      {FK::LinkDegrade, 0x1.48ebd9f685deep+0, 0x1.1dc3177a1dbd2p-2, "car-01",
       "cloud"},
      {FK::Partition, 0x1.8d48e87ee4b82p+3, 0x1.36780b0c62963p+3, "car-01", ""},
      {FK::Partition, 0x1.f8533165c474cp+4, 0x1.4d166a93ed7bep+0, "car-02", ""},
      {FK::LinkDegrade, 0x1.1e35fbc549121p+5, 0x1.4de539ade9dc8p-2, "car-01",
       "cloud"},
      {FK::Partition, 0x1.833a16fbc686ep+5, 0x1.ea7d04d08f12bp+0, "car-02", ""},
      {FK::Partition, 0x1.cee367b204658p+5, 0x1.1e48e590a6ba4p+3, "car-03", ""},
  };

  const auto check = [](std::uint64_t seed,
                        const std::vector<GoldenSpec>& golden) {
    util::EventQueue queue;
    fault::ChaosEngine engine(queue, seed);
    fault::RandomPlanOptions opt;
    opt.horizon_s = 60.0;
    opt.faults = 6;
    opt.mean_duration_s = 5.0;
    opt.partition_host = "car-01";
    opt.partition_hosts = {"car-02", "car-03"};
    opt.link_from = "car-01";
    opt.link_to = "cloud";
    const auto plan = engine.random_plan(opt);
    ASSERT_EQ(plan.size(), golden.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
      EXPECT_EQ(plan[i].kind, golden[i].kind) << "seed " << seed << " #" << i;
      EXPECT_EQ(plan[i].at, golden[i].at) << "seed " << seed << " #" << i;
      EXPECT_EQ(plan[i].duration, golden[i].duration)
          << "seed " << seed << " #" << i;
      EXPECT_EQ(plan[i].target, golden[i].target)
          << "seed " << seed << " #" << i;
      EXPECT_EQ(plan[i].peer, golden[i].peer) << "seed " << seed << " #" << i;
    }
  };
  check(7, golden7);
  check(21, golden21);
}

TEST(RandomPlan, DropoutHostsGenerateDeterministicClientDropouts) {
  const auto make = [] {
    util::EventQueue queue;
    fault::ChaosEngine engine(queue, 13);
    fault::RandomPlanOptions opt;
    opt.horizon_s = 90.0;
    opt.faults = 12;
    opt.mean_duration_s = 10.0;
    opt.partition_host = "car-01";
    opt.link_from = "car-01";
    opt.link_to = "cloud";
    opt.client_dropout_hosts = {"car-02", "car-03"};
    return engine.random_plan(opt);
  };
  const auto plan = make();
  const auto again = make();
  ASSERT_EQ(plan.size(), again.size());
  std::size_t dropouts = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].kind, again[i].kind) << "#" << i;
    EXPECT_EQ(plan[i].at, again[i].at) << "#" << i;
    EXPECT_EQ(plan[i].duration, again[i].duration) << "#" << i;
    EXPECT_EQ(plan[i].target, again[i].target) << "#" << i;
    if (plan[i].kind == fault::FaultKind::ClientDropout) {
      ++dropouts;
      EXPECT_TRUE(plan[i].target == "car-02" || plan[i].target == "car-03");
    }
  }
  EXPECT_GT(dropouts, 0u);
}

// --- options validation ----------------------------------------------------

TEST(FedOptions, ValidateRejectsBadKnobs) {
  FedOptions opt;
  opt.rounds = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FedOptions{};
  opt.quorum_frac = 1.5;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FedOptions{};
  opt.round_timeout_s = 0.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FedOptions{};
  opt.backoff_mult = 0.5;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FedOptions{};
  opt.max_backoff_s = opt.retry_backoff_s - 1.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  EXPECT_NO_THROW(FedOptions{}.validate());
}

}  // namespace
}  // namespace autolearn::fed
