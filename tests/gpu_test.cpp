#include "gpu/perf_model.hpp"

#include <gtest/gtest.h>

namespace autolearn::gpu {
namespace {

TrainingWorkload typical_load() {
  TrainingWorkload load;
  load.forward_flops = 20'000'000ull * 24'000;  // 24k samples, 20 MFLOP each
  load.samples = 24'000;
  load.batch_size = 32;
  return load;
}

TEST(Devices, CatalogueLookup) {
  EXPECT_EQ(device("A100").name, "A100");
  EXPECT_GT(device("A100").peak_fp32_tflops, device("P100").peak_fp32_tflops);
  EXPECT_THROW(device("H100"), std::invalid_argument);
}

TEST(Devices, PaperListIsPresent) {
  const auto list = datacenter_devices();
  ASSERT_EQ(list.size(), 5u);  // A100, V100, v100NVLINK, RTX6000, P100
  for (const auto& name : list) EXPECT_NO_THROW(device(name));
}

TEST(Devices, AllDevicesIncludesEdge) {
  const auto names = all_devices();
  bool has_pi = false;
  for (const auto& n : names) has_pi |= (n == "RaspberryPi4");
  EXPECT_TRUE(has_pi);
  EXPECT_GE(names.size(), 9u);
}

TEST(TrainingTime, OrderingMatchesHardwareGeneration) {
  const auto load = typical_load();
  const double a100 = training_time_s(device("A100"), load);
  const double v100 = training_time_s(device("V100"), load);
  const double rtx = training_time_s(device("RTX6000"), load);
  const double p100 = training_time_s(device("P100"), load);
  EXPECT_LT(a100, v100);
  EXPECT_LT(v100, rtx);
  EXPECT_LT(rtx, p100);
}

TEST(TrainingTime, ScalesWithWorkload) {
  TrainingWorkload small = typical_load();
  TrainingWorkload big = small;
  big.forward_flops *= 4;
  big.samples *= 4;
  const double t_small = training_time_s(device("V100"), small);
  const double t_big = training_time_s(device("V100"), big);
  EXPECT_GT(t_big, 3.5 * t_small);
  EXPECT_LT(t_big, 4.5 * t_small);
}

TEST(TrainingTime, MultiGpuNvlinkFasterThanPcie) {
  const auto load = typical_load();
  const DeviceSpec& v100 = device("v100NVLINK");
  const double one = training_time_s(v100, load, 1);
  const double four_nvlink =
      training_time_s(v100, load, 4, Interconnect::NVLink);
  const double four_pcie = training_time_s(v100, load, 4, Interconnect::PCIe);
  EXPECT_LT(four_nvlink, four_pcie);
  EXPECT_LT(four_pcie, one);
  // Scaling is sublinear.
  EXPECT_GT(four_nvlink, one / 4.0);
}

TEST(TrainingTime, Validation) {
  const auto load = typical_load();
  EXPECT_THROW(training_time_s(device("A100"), load, 0),
               std::invalid_argument);
  EXPECT_THROW(training_time_s(device("A100"), load, 2, Interconnect::None),
               std::invalid_argument);
  TrainingWorkload bad = load;
  bad.batch_size = 0;
  EXPECT_THROW(training_time_s(device("A100"), bad), std::invalid_argument);
}

TEST(TrainingTime, SmallModelsAreLaunchBound) {
  // For a tiny model the overhead term dominates: halving flops barely
  // changes the time.
  TrainingWorkload tiny;
  tiny.forward_flops = 100'000ull * 6400;  // 0.1 MFLOP model
  tiny.samples = 6400;
  tiny.batch_size = 32;
  TrainingWorkload tinier = tiny;
  tinier.forward_flops /= 2;
  const double t1 = training_time_s(device("A100"), tiny);
  const double t2 = training_time_s(device("A100"), tinier);
  EXPECT_LT((t1 - t2) / t1, 0.10);
}

TEST(Inference, EdgeIsSlowerThanDatacenter) {
  const std::uint64_t model_flops = 20'000'000;  // linear model class
  const double pi = inference_latency_s(device("RaspberryPi4"), model_flops);
  const double v100 = inference_latency_s(device("V100"), model_flops);
  EXPECT_GT(pi, v100);
  // The Pi should take milliseconds, the V100 tens of microseconds.
  EXPECT_GT(pi, 1e-3);
  EXPECT_LT(v100, 1e-3);
}

TEST(Inference, SmallerModelIsFaster) {
  const DeviceSpec& pi = device("RaspberryPi4");
  EXPECT_LT(inference_latency_s(pi, 1'000'000),
            inference_latency_s(pi, 50'000'000));
}

TEST(Inference, BatchOfOneMatchesSingleSignatureBitwise) {
  // The legacy single-sample signature is defined as the batched variant
  // at batch = 1 — equal bits, not just equal-ish values.
  for (const std::string& name : all_devices()) {
    const DeviceSpec& spec = device(name);
    for (std::uint64_t flops : {0ull, 1'000'000ull, 50'000'000ull}) {
      EXPECT_EQ(inference_latency_s(spec, flops),
                inference_latency_s(spec, flops, 1))
          << name << " @ " << flops;
    }
  }
}

TEST(Inference, BatchingAmortizesPerCallOverhead) {
  const DeviceSpec& v100 = device("V100");
  const std::uint64_t model_flops = 2'000'000;  // DonkeyCar-class
  const double single = inference_latency_s(v100, model_flops, 1);
  for (std::size_t batch : {8u, 32u}) {
    const double batched = inference_latency_s(v100, model_flops, batch);
    // A batch costs more than one call but far less than `batch` calls.
    EXPECT_GT(batched, single);
    EXPECT_LT(batched, static_cast<double>(batch) * single);
    // Per-request cost strictly improves with batching.
    EXPECT_LT(batched / static_cast<double>(batch), single);
  }
  // Small models are overhead-bound: cap-32 batching must amortize at
  // least 3x per request on a datacenter GPU.
  EXPECT_GT(single / (inference_latency_s(v100, model_flops, 32) / 32.0),
            3.0);
}

TEST(Inference, BatchZeroThrows) {
  EXPECT_THROW(inference_latency_s(device("V100"), 1'000'000, 0),
               std::invalid_argument);
}

TEST(Scaling, EfficiencyRanges) {
  EXPECT_EQ(scaling_efficiency(Interconnect::None), 1.0);
  EXPECT_GT(scaling_efficiency(Interconnect::NVLink),
            scaling_efficiency(Interconnect::PCIe));
  EXPECT_LT(scaling_efficiency(Interconnect::NVLink), 1.0);
}

}  // namespace
}  // namespace autolearn::gpu
