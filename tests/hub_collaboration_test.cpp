#include "hub/collaboration.hpp"

#include <gtest/gtest.h>

#include "core/module_catalog.hpp"

namespace autolearn::hub {
namespace {

ModuleRepo seeded_upstream() {
  ModuleRepo repo("autolearn-gitbook");
  repo.put_doc("setup.md", "assemble the car");
  repo.put_doc("collect.md", "drive around the track");
  repo.put_doc("train.md", "reserve a GPU node");
  return repo;
}

TEST(ModuleRepo, DocLifecycle) {
  ModuleRepo repo = seeded_upstream();
  EXPECT_EQ(repo.revision(), 3u);
  EXPECT_EQ(repo.docs().size(), 3u);
  EXPECT_EQ(repo.doc("setup.md"), "assemble the car");
  EXPECT_FALSE(repo.doc("missing.md").has_value());
  repo.put_doc("setup.md", "v2");
  EXPECT_EQ(repo.revision(), 4u);
  EXPECT_EQ(repo.doc("setup.md"), "v2");
  EXPECT_THROW(repo.put_doc("", "x"), std::invalid_argument);
  EXPECT_THROW(ModuleRepo(""), std::invalid_argument);
}

TEST(ModuleRepo, ForkIsIndependentCopy) {
  ModuleRepo upstream = seeded_upstream();
  ModuleRepo fork = upstream.fork("student-fork");
  EXPECT_EQ(fork.name(), "student-fork");
  EXPECT_TRUE(fork.diff_against(upstream).empty());
  fork.put_doc("collect.md", "drive CAREFULLY around the track");
  EXPECT_EQ(upstream.doc("collect.md"), "drive around the track");
  const auto diff = fork.diff_against(upstream);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0], "collect.md");
}

TEST(ModuleRepo, DiffSeesNewDocs) {
  ModuleRepo upstream = seeded_upstream();
  ModuleRepo fork = upstream.fork("f");
  fork.put_doc("rl-extension.md", "try q-learning");
  const auto diff = fork.diff_against(upstream);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0], "rl-extension.md");
}

TEST(Collaboration, MergeRequestFlowPublishesVersions) {
  ModuleRepo upstream = seeded_upstream();
  Hub hub;
  Artifact& artifact = hub.create_artifact("autolearn", "AutoLearn", {});
  artifact.publish_version("initial", "gitbook@r3");
  Collaboration collab(upstream, &artifact);

  ModuleRepo fork = upstream.fork("kyle-fork");
  fork.put_doc("continuum.md", "edge vs cloud inference exercise");
  const auto id =
      collab.open_merge_request(fork, "kyle", "add continuum exercise");
  EXPECT_EQ(collab.open_requests().size(), 1u);
  EXPECT_EQ(collab.request(id).status, MergeStatus::Open);

  collab.accept(id, "great addition");
  EXPECT_EQ(upstream.doc("continuum.md"),
            "edge vs cloud inference exercise");
  EXPECT_EQ(collab.request(id).status, MergeStatus::Accepted);
  EXPECT_EQ(collab.accepted_count(), 1u);
  EXPECT_TRUE(collab.open_requests().empty());
  // The accepted merge published artifact version 2.
  EXPECT_EQ(artifact.metrics().versions, 2u);
  EXPECT_NE(artifact.versions().back().notes.find("kyle"),
            std::string::npos);
}

TEST(Collaboration, RejectLeavesUpstreamUntouched) {
  ModuleRepo upstream = seeded_upstream();
  Collaboration collab(upstream);
  ModuleRepo fork = upstream.fork("f");
  fork.put_doc("setup.md", "skip all safety checks");
  const auto id = collab.open_merge_request(fork, "rushed", "faster setup");
  collab.reject(id, "safety checks stay");
  EXPECT_EQ(upstream.doc("setup.md"), "assemble the car");
  EXPECT_EQ(collab.request(id).status, MergeStatus::Rejected);
  EXPECT_EQ(collab.request(id).review_note, "safety checks stay");
  // A settled request cannot be re-reviewed.
  EXPECT_THROW(collab.accept(id), std::logic_error);
  EXPECT_THROW(collab.reject(id, "again"), std::logic_error);
}

TEST(Collaboration, Validation) {
  ModuleRepo upstream = seeded_upstream();
  Collaboration collab(upstream);
  ModuleRepo clean_fork = upstream.fork("clean");
  EXPECT_THROW(collab.open_merge_request(clean_fork, "a", "no-op"),
               std::invalid_argument);  // no changes
  ModuleRepo fork = upstream.fork("f");
  fork.put_doc("x.md", "y");
  EXPECT_THROW(collab.open_merge_request(fork, "", "s"),
               std::invalid_argument);  // anonymous
  EXPECT_THROW(collab.request(99), std::invalid_argument);
}

}  // namespace
}  // namespace autolearn::hub

namespace autolearn::core {
namespace {

TEST(ModuleCatalog, HasAllThreeGroups) {
  EXPECT_FALSE(components_in_group(ComponentGroup::Artifacts).empty());
  EXPECT_FALSE(components_in_group(ComponentGroup::Computation).empty());
  EXPECT_FALSE(components_in_group(ComponentGroup::Extensions).empty());
  // Fig. 1's computation column holds the four pipeline phases.
  EXPECT_EQ(components_in_group(ComponentGroup::Computation).size(), 4u);
}

TEST(ModuleCatalog, DifficultyLadderExists) {
  EXPECT_FALSE(components_at(Difficulty::Beginner).empty());
  EXPECT_FALSE(components_at(Difficulty::Intermediate).empty());
  EXPECT_FALSE(components_at(Difficulty::Advanced).empty());
}

TEST(ModuleCatalog, DigitalPathwayHasPlentyToDo) {
  // The digital pathway's promise (§3.4): meaningful work without any
  // hardware. At least half the catalog must be hardware-free.
  const auto free_components = hardware_free_components();
  EXPECT_GE(free_components.size(), module_catalog().size() / 2);
  for (const ModuleComponent* c : free_components) {
    EXPECT_FALSE(c->requires_car);
    EXPECT_FALSE(c->requires_testbed);
  }
}

TEST(ModuleCatalog, EveryComponentNamesItsImplementation) {
  for (const ModuleComponent& c : module_catalog()) {
    EXPECT_FALSE(c.name.empty());
    EXPECT_FALSE(c.description.empty());
    EXPECT_FALSE(c.implemented_by.empty()) << c.name;
  }
}

TEST(ModuleCatalog, EnumNames) {
  EXPECT_STREQ(to_string(ComponentGroup::Artifacts), "artifacts");
  EXPECT_STREQ(to_string(Difficulty::Advanced), "advanced");
}

}  // namespace
}  // namespace autolearn::core
