#include "hub/hub.hpp"

#include <gtest/gtest.h>

namespace autolearn::hub {
namespace {

TEST(Hub, ArtifactCreationAndLookup) {
  Hub hub;
  Artifact& a = hub.create_artifact("autolearn", "AutoLearn",
                                    {"Esquivel Morel", "Fowler", "Keahey"});
  EXPECT_EQ(a.id(), "autolearn");
  EXPECT_EQ(a.authors().size(), 3u);
  EXPECT_TRUE(hub.has_artifact("autolearn"));
  EXPECT_FALSE(hub.has_artifact("other"));
  EXPECT_THROW(hub.create_artifact("autolearn", "dup", {}),
               std::invalid_argument);
  EXPECT_THROW(hub.artifact("ghost"), std::invalid_argument);
}

TEST(Hub, TagsAndDiscovery) {
  Hub hub;
  Artifact& a = hub.create_artifact("autolearn", "AutoLearn", {});
  a.add_tag("education");
  a.add_tag("edge-computing");
  Artifact& b = hub.create_artifact("fish-surveys", "Fish Surveys", {});
  b.add_tag("edge-computing");
  EXPECT_EQ(hub.find_by_tag("edge-computing").size(), 2u);
  EXPECT_EQ(hub.find_by_tag("education").size(), 1u);
  EXPECT_TRUE(hub.find_by_tag("quantum").empty());
}

TEST(Hub, VersionsAreMonotonic) {
  Hub hub;
  Artifact& a = hub.create_artifact("x", "X", {});
  const auto& v1 = a.publish_version("initial", "trovi/x-v1");
  EXPECT_EQ(v1.number, 1u);
  const auto& v2 = a.publish_version("fix track dims", "trovi/x-v2");
  EXPECT_EQ(v2.number, 2u);
  EXPECT_EQ(a.versions().size(), 2u);
}

TEST(Hub, MetricsDistinguishClicksFromUsers) {
  Hub hub;
  Artifact& a = hub.create_artifact("x", "X", {});
  a.record_launch("u1");
  a.record_launch("u1");
  a.record_launch("u2");
  const ArtifactMetrics m = a.metrics();
  EXPECT_EQ(m.launch_clicks, 3u);
  EXPECT_EQ(m.unique_launch_users, 2u);
}

TEST(Hub, CellExecutionUsersAreUnique) {
  Hub hub;
  Artifact& a = hub.create_artifact("x", "X", {});
  a.record_cell_execution("u1");
  a.record_cell_execution("u1");
  a.record_cell_execution("u2");
  EXPECT_EQ(a.metrics().users_executed_cell, 2u);
}

TEST(Hub, AnonymousEventsRejectedExceptViews) {
  Hub hub;
  Artifact& a = hub.create_artifact("x", "X", {});
  EXPECT_NO_THROW(a.record_view(""));
  EXPECT_THROW(a.record_launch(""), std::invalid_argument);
  EXPECT_THROW(a.record_cell_execution(""), std::invalid_argument);
}

// The exact §5 numbers: "35 total number of launch button clicks, 9 users
// who clicked the launch button, 2 users who executed at least one cell,
// and it has been published 8 versions of the artifact."
TEST(Hub, ReproducesPaperSection5Metrics) {
  Hub hub;
  Artifact& a = hub.create_artifact(
      "autolearn", "AutoLearn: Learning in the Edge to Cloud Continuum",
      {"Esquivel Morel", "Fowler", "Keahey", "Zheng", "Sherman", "Anderson"});
  for (int v = 1; v <= 8; ++v) {
    a.publish_version("version " + std::to_string(v),
                      "trovi/autolearn-v" + std::to_string(v));
  }
  // 9 distinct users produce 35 launch clicks total.
  const int clicks_per_user[9] = {8, 6, 5, 4, 4, 3, 2, 2, 1};
  for (int u = 0; u < 9; ++u) {
    for (int c = 0; c < clicks_per_user[u]; ++c) {
      a.record_launch("user-" + std::to_string(u));
    }
  }
  // 2 of them went on to execute at least one cell.
  a.record_cell_execution("user-0");
  a.record_cell_execution("user-3");

  const ArtifactMetrics m = a.metrics();
  EXPECT_EQ(m.launch_clicks, 35u);
  EXPECT_EQ(m.unique_launch_users, 9u);
  EXPECT_EQ(m.users_executed_cell, 2u);
  EXPECT_EQ(m.versions, 8u);
}

TEST(Hub, DescriptionAndMetadata) {
  Hub hub;
  Artifact& a = hub.create_artifact("x", "X", {});
  a.set_description("Educational module for edge-to-cloud ML");
  EXPECT_EQ(a.description(), "Educational module for edge-to-cloud ML");
}

}  // namespace
}  // namespace autolearn::hub
