// Cross-module integration tests: whole-continuum scenarios that exercise
// the orchestration substrates together the way the educational module
// uses them.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/pathway.hpp"
#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "data/dataset.hpp"
#include "data/tub.hpp"
#include "edge/container.hpp"
#include "edge/registry.hpp"
#include "eval/pilot.hpp"
#include "hub/hub.hpp"
#include "ml/trainer.hpp"
#include "net/transfer.hpp"
#include "objectstore/objectstore.hpp"
#include "testbed/deployment.hpp"
#include "testbed/identity.hpp"
#include "testbed/inventory.hpp"
#include "testbed/lease.hpp"
#include "track/track.hpp"
#include "workflow/notebook.hpp"

namespace autolearn {
namespace {

namespace fs = std::filesystem;

// The full classroom story: identity -> lease -> deploy -> BYOD -> data
// movement -> training -> model to object store -> hub metrics. Everything
// rides one event queue and must reach a consistent end state.
TEST(Integration, ClassroomStoryEndToEnd) {
  util::EventQueue clock;

  // Identity: instructor + student join an education project.
  testbed::IdentityService identity;
  identity.add_user("instructor", "MU");
  identity.add_user("student", "MJC");
  identity.create_project("CHI-edu-9", "AutoLearn",
                          testbed::ProjectDomain::Education, "instructor");
  identity.add_member("CHI-edu-9", "student");
  const testbed::Session session = identity.login("student");
  ASSERT_TRUE(identity.user_for_token(session.token).has_value());

  // Testbed: reserve and deploy a trainer node.
  const testbed::Inventory inventory = testbed::Inventory::chameleon();
  testbed::LeaseManager leases(inventory);
  const auto lease = leases.request_on_demand("CHI-edu-9", "gpu_v100", 1,
                                              clock.now(), 7200);
  ASSERT_TRUE(lease);
  leases.tick(clock.now());
  testbed::DeploymentService deployments(leases, clock);
  bool trainer_ready = false;
  deployments.deploy(*lease, testbed::ImageSpec::autolearn_trainer(),
                     [&](const testbed::Deployment&) { trainer_ready = true; });

  // Edge: enroll the car and launch its container.
  edge::EdgeRegistry registry(clock);
  edge::ContainerService containers(registry, clock);
  registry.register_device("donkey-01", "CHI-edu-9");
  registry.flash_device("donkey-01");
  registry.boot_device("donkey-01");
  clock.run_until(clock.now() + 60);
  ASSERT_EQ(registry.device("donkey-01").state, edge::DeviceState::Ready);
  bool car_container = false;
  containers.launch("donkey-01", "CHI-edu-9",
                    edge::ContainerSpec::autolearn_car(),
                    [&](const edge::Container&) { car_container = true; });
  clock.run();
  EXPECT_TRUE(trainer_ready);
  EXPECT_TRUE(car_container);

  // Data: a short physical-car session recorded on the car.
  const track::Track track = track::Track::paper_oval();
  const fs::path workdir =
      fs::temp_directory_path() / ("autolearn_integ_" + std::to_string(getpid()));
  fs::remove_all(workdir);
  data::CollectOptions copt;
  copt.duration_s = 60.0;
  copt.expert.steering_noise = 0.08;
  const data::CollectStats cstats = data::collect_session(
      track, data::DataPath::PhysicalCar, copt, workdir / "tub");
  data::Tub tub(workdir / "tub");

  // Network: rsync the tub to the trainer node; the simulated duration
  // must reflect the tub's real byte size over the bottleneck link.
  net::Network network;
  for (const char* h : {"donkey-01", "campus-gw", "chi-uc-trainer"}) {
    network.add_host(h);
  }
  network.add_duplex("donkey-01", "campus-gw", net::Link::edge_wifi());
  network.add_duplex("campus-gw", "chi-uc-trainer",
                     net::Link::campus_to_cloud());
  net::TransferManager transfers(network, clock, util::Rng(3));
  const double before = clock.now();
  bool copied = false;
  transfers.start("donkey-01", "chi-uc-trainer", tub.size_bytes(),
                  [&](const net::TransferResult& r) {
                    copied = r.status == net::TransferStatus::Done;
                  });
  clock.run();
  ASSERT_TRUE(copied);
  const double transfer_time = clock.now() - before;
  // ~1.3 MB over a 3 MB/s Wi-Fi bottleneck: order of a second.
  EXPECT_GT(transfer_time, 0.05);
  EXPECT_LT(transfer_time, 60.0);

  // Training on the "trainer node" via a notebook.
  auto samples = data::build_samples(tub.read_all(), {});
  auto [train, val] = data::split_train_val(std::move(samples), 0.15);
  auto model = ml::make_model(ml::ModelType::Inferred);
  workflow::Notebook nb("train-model");
  hub::Hub trovi;
  hub::Artifact& artifact =
      trovi.create_artifact("autolearn", "AutoLearn", {"instructor"});
  nb.set_on_cell_success(
      [&](const workflow::Cell&) { artifact.record_cell_execution("student"); });
  nb.add_cell("fit", [&] {
    ml::TrainOptions topt;
    topt.epochs = 4;
    const ml::TrainResult r = ml::fit(*model, train, val, topt);
    return "val loss " + std::to_string(r.best_val_loss);
  });
  artifact.record_launch("student");
  ASSERT_EQ(nb.run_all(), 1u);

  // Model checkpoint into the object store, then restored and driven.
  objectstore::ObjectStore store;
  store.create_container("models");
  std::ostringstream blob;
  model->save(blob);
  const std::string bytes = blob.str();
  store.put("models", "inferred-v1",
            std::vector<std::uint8_t>(bytes.begin(), bytes.end()),
            {{"model", "inferred"}, {"dataset", "physical-car"}});

  auto restored = ml::make_model(ml::ModelType::Inferred);
  const auto obj = store.get("models", "inferred-v1");
  ASSERT_TRUE(obj);
  std::istringstream in(std::string(obj->bytes.begin(), obj->bytes.end()));
  restored->load(in);
  eval::ModelPilot pilot(*restored);
  eval::EvalOptions eopt;
  eopt.duration_s = 30.0;
  const eval::EvalResult result = eval::run_evaluation(track, pilot, eopt);
  EXPECT_GT(result.laps, 1.0);

  // Hub accounting reflects the session.
  const hub::ArtifactMetrics metrics = artifact.metrics();
  EXPECT_EQ(metrics.launch_clicks, 1u);
  EXPECT_EQ(metrics.users_executed_cell, 1u);
  EXPECT_GT(cstats.records, 0u);
  fs::remove_all(workdir);
}

// Failure injection: the car drops off the network mid-session; the class
// recovers it and relaunches the container.
TEST(Integration, DeviceFailureAndRecovery) {
  util::EventQueue clock;
  edge::EdgeRegistry registry(clock);
  edge::ContainerService containers(registry, clock);
  registry.register_device("donkey-02", "p");
  registry.flash_device("donkey-02");
  registry.boot_device("donkey-02");
  clock.run_until(60);
  const auto c1 = containers.launch("donkey-02", "p",
                                    edge::ContainerSpec::autolearn_car());
  clock.run();
  ASSERT_EQ(containers.container(c1).state, edge::ContainerState::Running);

  registry.fail_device("donkey-02");
  clock.run_until(clock.now() + 120);
  EXPECT_EQ(registry.device("donkey-02").state,
            edge::DeviceState::Disconnected);

  registry.recover_device("donkey-02");
  clock.run_until(clock.now() + 60);
  ASSERT_EQ(registry.device("donkey-02").state, edge::DeviceState::Ready);
  // Image is cached, so the relaunch is fast.
  const double t0 = clock.now();
  const auto c2 = containers.launch("donkey-02", "p",
                                    edge::ContainerSpec::autolearn_car());
  clock.run();
  EXPECT_EQ(containers.container(c2).state, edge::ContainerState::Running);
  EXPECT_LT(clock.now() - t0, 15.0);
}

// Lossy-network failure injection: the rsync step retries and still lands.
TEST(Integration, LossyTransferRetriesAndCompletes) {
  util::EventQueue clock;
  net::Network network;
  network.add_host("car");
  network.add_host("cloud");
  net::LinkSpec lossy = net::Link::edge_wifi();
  lossy.loss_prob = 0.3;
  network.add_duplex("car", "cloud", lossy);
  net::TransferManager transfers(network, clock, util::Rng(7),
                                 /*max_retries=*/20);
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    transfers.start("car", "cloud", 500'000,
                    [&](const net::TransferResult& r) {
                      done += r.status == net::TransferStatus::Done;
                    });
  }
  clock.run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(transfers.failed(), 0u);
}

// The three §4 pathways materialize as runnable notebooks whose phases
// execute against the simulation.
TEST(Integration, PathwayNotebooksRun) {
  const track::Track track = track::Track::paper_oval();
  for (core::PathwayKind kind :
       {core::PathwayKind::Regular, core::PathwayKind::Classroom,
        core::PathwayKind::Digital}) {
    const core::PathwayPlan plan = core::make_pathway(kind);
    workflow::Notebook nb = core::to_notebook(
        plan, [&](const core::PhasePlan& phase) {
          // A dry-run phase runner: validate the phase description and
          // report the chosen alternative.
          EXPECT_FALSE(phase.alternative.empty());
          return phase.phase + " via " + phase.alternative;
        });
    EXPECT_EQ(nb.run_all(), nb.cell_count()) << core::to_string(kind);
  }
}


// §3.5 "mix and match": a strong team trains and publishes to the zoo; a
// hardware-free team pulls the published checkpoint and evaluates it in
// the simulator without training anything.
TEST(Integration, MixAndMatchViaModelZoo) {
  const track::Track track = track::Track::paper_oval();
  const fs::path workdir =
      fs::temp_directory_path() / ("autolearn_zoo_" + std::to_string(getpid()));
  fs::remove_all(workdir);

  // Team A: full pipeline, then publish.
  core::PipelineOptions opt;
  opt.model = ml::ModelType::Inferred;
  opt.collect_duration_s = 90.0;
  opt.driver.steering_noise = 0.08;
  opt.train.epochs = 6;
  opt.eval.duration_s = 5.0;
  core::Pipeline pipeline(track, opt, workdir);
  const core::PipelineReport report = pipeline.run();

  objectstore::ObjectStore store;
  core::ModelZoo zoo(store);
  zoo.publish("inferred-oval-v1", pipeline.model(), track.name(),
              report.train_result.best_val_loss, report.steering_mae);

  // Team B: no training — pull the checkpoint and drive.
  const auto best = zoo.best_for_track(track.name());
  ASSERT_TRUE(best);
  auto model = zoo.load(best->name);
  eval::ModelPilot pilot(*model);
  eval::EvalOptions eopt;
  eopt.duration_s = 30.0;
  const eval::EvalResult r = eval::run_evaluation(track, pilot, eopt);
  EXPECT_GT(r.laps, 1.0);
  EXPECT_LT(r.errors, 6u);
  fs::remove_all(workdir);
}

}  // namespace
}  // namespace autolearn
