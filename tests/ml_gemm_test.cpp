// GEMM backbone tests: the blocked kernel against a naive double-precision
// oracle, im2col/col2im adjoint properties, the GEMM-lowered convolution
// against direct loop nests (including stride > kernel edge shapes), and
// the determinism contract — fit() must produce bitwise-identical weights
// for any worker count.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "ml/conv.hpp"
#include "ml/driving_model.hpp"
#include "ml/gemm.hpp"
#include "ml/trainer.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace autolearn::ml {
namespace {

// --- oracle ---------------------------------------------------------------

/// Textbook triple loop with double accumulators; the tolerance against
/// the float kernel scales with k.
void ref_gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
              std::size_t k, float alpha, const float* a, std::size_t lda,
              const float* b, std::size_t ldb, float beta, float* c,
              std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      float& out = c[i * ldc + j];
      out = static_cast<float>(alpha * acc) + (beta == 0.0f ? 0.0f : beta * out);
    }
  }
}

std::vector<float> random_vec(std::size_t n, util::Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1, 1));
  return v;
}

struct Shape {
  std::size_t m, n, k;
};

TEST(Sgemm, MatchesOracleAcrossShapesAndTransposes) {
  // Covers k == 1, single-row/column, non-square, and blocks larger than
  // one MC x NC tile (so the multi-tile path runs).
  const Shape shapes[] = {{1, 1, 1},    {4, 8, 1},   {1, 19, 4},
                          {5, 1, 13},   {3, 5, 7},   {17, 33, 9},
                          {64, 48, 96}, {130, 100, 37}};
  util::Rng rng(123);
  for (const Shape& s : shapes) {
    const auto a = random_vec(s.m * s.k, rng);
    const auto b = random_vec(s.k * s.n, rng);
    for (const bool ta : {false, true}) {
      for (const bool tb : {false, true}) {
        const std::size_t lda = ta ? s.m : s.k;
        const std::size_t ldb = tb ? s.k : s.n;
        for (const auto& [alpha, beta] : {std::pair{1.0f, 0.0f},
                                         std::pair{1.0f, 1.0f},
                                         std::pair{0.5f, -2.0f}}) {
          auto c = random_vec(s.m * s.n, rng);
          auto want = c;
          ref_gemm(ta, tb, s.m, s.n, s.k, alpha, a.data(), lda, b.data(), ldb,
                   beta, want.data(), s.n);
          sgemm(ta, tb, s.m, s.n, s.k, alpha, a.data(), lda, b.data(), ldb,
                beta, c.data(), s.n);
          const float tol = 1e-5f * static_cast<float>(s.k + 1);
          for (std::size_t i = 0; i < c.size(); ++i) {
            ASSERT_NEAR(c[i], want[i], tol)
                << "m=" << s.m << " n=" << s.n << " k=" << s.k << " ta=" << ta
                << " tb=" << tb << " alpha=" << alpha << " beta=" << beta
                << " at " << i;
          }
        }
      }
    }
  }
}

TEST(Sgemm, BetaZeroNeverReadsOutput) {
  // The layer hot paths hand sgemm uninitialized scratch with beta == 0;
  // poisoned NaNs must not leak into the result.
  util::Rng rng(7);
  const std::size_t m = 9, n = 21, k = 5;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<float> c(m * n, std::numeric_limits<float>::quiet_NaN());
  sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(),
        n);
  std::vector<float> want(m * n, 0.0f);
  ref_gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
           want.data(), n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_TRUE(std::isfinite(c[i])) << i;
    ASSERT_NEAR(c[i], want[i], 1e-4f) << i;
  }
}

TEST(Sgemm, StridedOutputLeavesGapUntouched) {
  // LSTM writes one [N, D] time-step slice of an [N, T, D] tensor via ldc.
  util::Rng rng(8);
  const std::size_t m = 6, n = 4, k = 3, ldc = 11;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<float> c(m * ldc, 99.0f);
  sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(),
        ldc);
  std::vector<float> want(m * n, 0.0f);
  ref_gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
           want.data(), n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < ldc; ++j) {
      if (j < n) {
        ASSERT_NEAR(c[i * ldc + j], want[i * n + j], 1e-4f);
      } else {
        ASSERT_EQ(c[i * ldc + j], 99.0f) << "gap clobbered at " << i << "," << j;
      }
    }
  }
}

TEST(Sgemm, ParallelIsBitwiseIdenticalToSerial) {
  // The determinism contract: tile decomposition depends only on the
  // problem shape, so worker count must not change a single bit.
  util::Rng rng(9);
  const std::size_t m = 150, n = 200, k = 300;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<float> serial(m * n, 0.0f);
  sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
        serial.data(), n, /*parallel=*/false);
  for (const std::size_t workers : {1u, 3u, 4u}) {
    util::ThreadPool pool(workers);
    util::ThreadPool::ScopedOverride guard(pool);
    std::vector<float> par(m * n, 0.0f);
    sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
          par.data(), n, /*parallel=*/true);
    for (std::size_t i = 0; i < par.size(); ++i) {
      ASSERT_EQ(par[i], serial[i]) << "workers=" << workers << " at " << i;
    }
  }
}

TEST(Sgemm, CountersAdvance) {
  const KernelCounters before = kernel_counters();
  util::Rng rng(10);
  const auto a = random_vec(4 * 6, rng);
  const auto b = random_vec(6 * 5, rng);
  std::vector<float> c(4 * 5, 0.0f);
  sgemm(false, false, 4, 5, 6, 1.0f, a.data(), 6, b.data(), 5, 0.0f, c.data(),
        5);
  const KernelCounters after = kernel_counters();
  EXPECT_EQ(after.gemm_calls - before.gemm_calls, 1u);
  EXPECT_EQ(after.gemm_flops - before.gemm_flops, 2ull * 4 * 5 * 6);
}

// --- im2col / col2im ------------------------------------------------------

struct ColShape {
  std::size_t c, h, w, kh, kw, sh, sw;
};

TEST(Im2col, Col2imRoundTripScalesByWindowMultiplicity) {
  // col2im(im2col(x)) == x * multiplicity, where multiplicity counts how
  // many sliding windows cover each pixel (col2im of an all-ones image).
  // Includes stride > kernel, where some pixels are covered zero times.
  const ColShape shapes[] = {{1, 5, 5, 1, 1, 1, 1},
                             {3, 11, 9, 3, 3, 2, 2},
                             {2, 8, 10, 2, 2, 3, 3},
                             {2, 7, 7, 3, 3, 1, 1}};
  util::Rng rng(31);
  for (const ColShape& s : shapes) {
    const std::size_t oh = (s.h - s.kh) / s.sh + 1;
    const std::size_t ow = (s.w - s.kw) / s.sw + 1;
    const std::size_t rows = s.c * s.kh * s.kw, cols = oh * ow;
    const auto x = random_vec(s.c * s.h * s.w, rng);
    std::vector<float> col(rows * cols, 0.0f);
    im2col(x.data(), s.c, s.h, s.w, s.kh, s.kw, s.sh, s.sw, col.data(), cols);
    std::vector<float> back(x.size(), 0.0f);
    col2im(col.data(), cols, s.c, s.h, s.w, s.kh, s.kw, s.sh, s.sw,
           back.data());

    const std::vector<float> ones(x.size(), 1.0f);
    std::vector<float> ones_col(rows * cols, 0.0f);
    im2col(ones.data(), s.c, s.h, s.w, s.kh, s.kw, s.sh, s.sw, ones_col.data(),
           cols);
    std::vector<float> mult(x.size(), 0.0f);
    col2im(ones_col.data(), cols, s.c, s.h, s.w, s.kh, s.kw, s.sh, s.sw,
           mult.data());

    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_NEAR(back[i], x[i] * mult[i], 1e-5f)
          << "c=" << s.c << " h=" << s.h << " w=" << s.w << " k=" << s.kh
          << "x" << s.kw << " s=" << s.sh << "x" << s.sw << " at " << i;
    }
  }
}

TEST(Im2col, PatchLayoutMatchesFlattenedWeights) {
  // Row index must be (ic*KH + ky)*KW + kx and column oy*OW + ox, or the
  // GEMM against flattened [OC, C, KH, KW] weights silently permutes taps.
  const std::size_t c = 2, h = 4, w = 5, kh = 2, kw = 3, sh = 1, sw = 2;
  const std::size_t oh = (h - kh) / sh + 1, ow = (w - kw) / sw + 1;
  std::vector<float> x(c * h * w);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  std::vector<float> col(c * kh * kw * oh * ow, -1.0f);
  im2col(x.data(), c, h, w, kh, kw, sh, sw, col.data(), oh * ow);
  for (std::size_t ic = 0; ic < c; ++ic) {
    for (std::size_t ky = 0; ky < kh; ++ky) {
      for (std::size_t kx = 0; kx < kw; ++kx) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::size_t row = (ic * kh + ky) * kw + kx;
            const std::size_t colidx = oy * ow + ox;
            const float want = x[(ic * h + oy * sh + ky) * w + ox * sw + kx];
            ASSERT_EQ(col[row * oh * ow + colidx], want)
                << ic << "," << ky << "," << kx << "," << oy << "," << ox;
          }
        }
      }
    }
  }
}

TEST(Vol2col, Col2volRoundTripScalesByWindowMultiplicity) {
  const std::size_t c = 2, d = 4, h = 6, w = 5;
  const std::size_t kd = 2, kh = 3, kw = 2, sd = 1, sh = 2, sw = 3;
  const std::size_t od = (d - kd) / sd + 1, oh = (h - kh) / sh + 1,
                    ow = (w - kw) / sw + 1;
  const std::size_t rows = c * kd * kh * kw, cols = od * oh * ow;
  util::Rng rng(33);
  const auto x = random_vec(c * d * h * w, rng);
  std::vector<float> col(rows * cols, 0.0f);
  vol2col(x.data(), c, d, h, w, kd, kh, kw, sd, sh, sw, col.data(), cols);
  std::vector<float> back(x.size(), 0.0f);
  col2vol(col.data(), cols, c, d, h, w, kd, kh, kw, sd, sh, sw, back.data());

  const std::vector<float> ones(x.size(), 1.0f);
  std::vector<float> ones_col(rows * cols, 0.0f);
  vol2col(ones.data(), c, d, h, w, kd, kh, kw, sd, sh, sw, ones_col.data(),
          cols);
  std::vector<float> mult(x.size(), 0.0f);
  col2vol(ones_col.data(), cols, c, d, h, w, kd, kh, kw, sd, sh, sw,
          mult.data());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(back[i], x[i] * mult[i], 1e-5f) << i;
  }
}

// --- conv vs direct loop nests --------------------------------------------

struct ConvCase {
  std::size_t n, ic, oc, h, w, k, stride;
};

/// Direct 7-loop convolution (the pre-GEMM implementation) with gradient
/// loops, used as the oracle for the lowered layer.
struct NaiveConvResult {
  Tensor y, dx, dw, db;
};

NaiveConvResult naive_conv(const Tensor& x, const Tensor& wt, const Tensor& bt,
                           const Tensor& grad_out, std::size_t stride) {
  const std::size_t n = x.dim(0), ic = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t oc = wt.dim(0), k = wt.dim(2);
  const std::size_t oh = (h - k) / stride + 1, ow = (w - k) / stride + 1;
  NaiveConvResult r{Tensor({n, oc, oh, ow}), Tensor(x.shape()),
                    Tensor(wt.shape()), Tensor(bt.shape())};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t o = 0; o < oc; ++o) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = bt[o];
          for (std::size_t c = 0; c < ic; ++c) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              for (std::size_t kx = 0; kx < k; ++kx) {
                acc += x.at(i, c, oy * stride + ky, ox * stride + kx) *
                       wt.at(o, c, ky, kx);
              }
            }
          }
          r.y.at(i, o, oy, ox) = acc;
        }
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t o = 0; o < oc; ++o) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = grad_out.at(i, o, oy, ox);
          r.db[o] += g;
          for (std::size_t c = 0; c < ic; ++c) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              for (std::size_t kx = 0; kx < k; ++kx) {
                r.dw.at(o, c, ky, kx) +=
                    g * x.at(i, c, oy * stride + ky, ox * stride + kx);
                r.dx.at(i, c, oy * stride + ky, ox * stride + kx) +=
                    g * wt.at(o, c, ky, kx);
              }
            }
          }
        }
      }
    }
  }
  return r;
}

TEST(Conv2D, ForwardBackwardMatchNaiveLoops) {
  // k == 1 (pointwise), the model-zoo k=3/s=2 shape, and stride > kernel
  // (windows skip pixels; dx must be zero on the skipped ones).
  const ConvCase cases[] = {{2, 3, 4, 6, 7, 1, 1},
                            {3, 2, 5, 9, 11, 3, 2},
                            {2, 2, 3, 8, 9, 2, 3}};
  for (const ConvCase& cc : cases) {
    util::Rng rng(77);
    Conv2D layer(cc.ic, cc.oc, cc.k, cc.stride, rng);
    util::Rng data_rng(78);
    const Tensor x = Tensor::randn({cc.n, cc.ic, cc.h, cc.w}, data_rng, 1.0);
    const Tensor y = layer.forward(x, true);
    const std::size_t oh = Conv2D::out_dim(cc.h, cc.k, cc.stride);
    const std::size_t ow = Conv2D::out_dim(cc.w, cc.k, cc.stride);
    ASSERT_EQ(y.dim(2), oh);
    ASSERT_EQ(y.dim(3), ow);
    const Tensor grad_out = Tensor::randn(y.shape(), data_rng, 1.0);
    const Tensor dx = layer.backward(grad_out);

    Param* wp = layer.params()[0];
    Param* bp = layer.params()[1];
    const NaiveConvResult want =
        naive_conv(x, wp->value, bp->value, grad_out, cc.stride);
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_NEAR(y[i], want.y[i], 1e-4f) << "y k=" << cc.k << " at " << i;
    }
    for (std::size_t i = 0; i < dx.size(); ++i) {
      ASSERT_NEAR(dx[i], want.dx[i], 1e-4f) << "dx k=" << cc.k << " at " << i;
    }
    for (std::size_t i = 0; i < wp->grad.size(); ++i) {
      ASSERT_NEAR(wp->grad[i], want.dw[i], 1e-4f)
          << "dw k=" << cc.k << " at " << i;
    }
    for (std::size_t i = 0; i < bp->grad.size(); ++i) {
      ASSERT_NEAR(bp->grad[i], want.db[i], 1e-4f)
          << "db k=" << cc.k << " at " << i;
    }
  }
}

// --- fit() thread-count invariance ----------------------------------------

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.img_w = 32;
  cfg.img_h = 24;
  cfg.lr = 2e-3;
  return cfg;
}

std::vector<Sample> band_dataset(std::size_t n, const ModelConfig& cfg,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t col = static_cast<std::size_t>(
        rng.uniform_int(2, static_cast<std::int64_t>(cfg.img_w) - 3));
    camera::Image img(cfg.img_w, cfg.img_h, 0.1f);
    for (std::size_t y = 0; y < cfg.img_h; ++y) {
      for (std::size_t dx = 0; dx < 3; ++dx) img.at(col - 1 + dx, y) = 0.9f;
    }
    Sample s;
    for (std::size_t f = 0; f < cfg.seq_len; ++f) s.frames.push_back(img);
    const float steer = static_cast<float>(
        2.0 * static_cast<double>(col) / (cfg.img_w - 1) - 1.0);
    for (std::size_t h = 0; h < cfg.history_len; ++h) {
      s.history.push_back(steer);
      s.history.push_back(0.5f);
    }
    s.steering = steer;
    s.throttle = 0.5f;
    out.push_back(std::move(s));
  }
  return out;
}

class ThreadInvarianceTest : public ::testing::TestWithParam<ModelType> {};

TEST_P(ThreadInvarianceTest, FitIsBitwiseIdenticalAcrossWorkerCounts) {
  // The acceptance gate for the parallel backward: weights and per-epoch
  // losses after fit() must not depend on how many workers ran the GEMMs.
  const ModelConfig cfg = tiny_config();
  const auto train = band_dataset(64, cfg, 311);
  const auto val = band_dataset(16, cfg, 312);

  auto run = [&](std::size_t workers) {
    util::ThreadPool pool(workers);
    util::ThreadPool::ScopedOverride guard(pool);
    auto model = make_model(GetParam(), cfg);
    TrainOptions opt;
    opt.epochs = 2;
    opt.batch_size = 32;
    const TrainResult r = fit(*model, train, val, opt);
    std::ostringstream weights;
    model->save(weights);
    return std::pair{weights.str(), r};
  };

  const auto [w1, r1] = run(1);
  for (const std::size_t workers : {2u, 4u}) {
    const auto [wn, rn] = run(workers);
    EXPECT_EQ(w1, wn) << "weights diverge at " << workers << " workers";
    ASSERT_EQ(r1.history.size(), rn.history.size());
    for (std::size_t e = 0; e < r1.history.size(); ++e) {
      EXPECT_EQ(r1.history[e].train_loss, rn.history[e].train_loss)
          << "train loss epoch " << e << " workers " << workers;
      EXPECT_EQ(r1.history[e].val_loss, rn.history[e].val_loss)
          << "val loss epoch " << e << " workers " << workers;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConvDenseLstm, ThreadInvarianceTest,
    ::testing::Values(ModelType::Linear, ModelType::Rnn, ModelType::Conv3d),
    [](const ::testing::TestParamInfo<ModelType>& info) {
      std::string name = to_string(info.param);
      if (name == "3d") name = "conv3d";
      return name;
    });

}  // namespace
}  // namespace autolearn::ml
