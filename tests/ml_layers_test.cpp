// Layer unit tests including numeric gradient verification: the analytic
// backward pass of every layer is checked against central differences on a
// scalar probe loss L = sum(w .* forward(x)) with fixed random w.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "ml/conv.hpp"
#include "ml/layers.hpp"
#include "ml/lstm.hpp"

namespace autolearn::ml {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, util::Rng& rng,
                     double scale = 1.0) {
  return Tensor::randn(std::move(shape), rng, scale);
}

/// Probe loss: L(x) = sum_i w_i * layer(x)_i; dL/d(layer out) = w.
struct GradCheck {
  static constexpr double kEps = 1e-3;
  static constexpr double kTol = 2e-2;  // relative, float32 arithmetic

  /// Verifies dL/dx and all dL/dparam for one layer and input.
  static void run(Layer& layer, Tensor x, util::Rng& rng) {
    const Tensor y0 = layer.forward(x, /*train=*/false);
    const Tensor w = random_tensor(y0.shape(), rng);
    for (Param* p : layer.params()) p->zero_grad();
    const Tensor analytic_dx = layer.backward(w);

    auto loss_at = [&](Tensor& target, std::size_t idx, double delta) {
      const float saved = target[idx];
      target[idx] = static_cast<float>(saved + delta);
      // Re-run forward through the (stateless w.r.t. value) layer.
      const Tensor y = layer.forward(x, /*train=*/false);
      target[idx] = saved;
      double L = 0;
      for (std::size_t i = 0; i < y.size(); ++i) {
        L += static_cast<double>(w[i]) * y[i];
      }
      return L;
    };

    // Check input gradient on a sample of indices.
    check_tensor("input", x, analytic_dx,
                 [&](std::size_t i, double d) { return loss_at(x, i, d); });

    // Check parameter gradients. Forward must be rerun after perturbation,
    // and analytic grads were accumulated by the single backward above.
    for (Param* p : layer.params()) {
      check_tensor("param", p->value, p->grad, [&](std::size_t i, double d) {
        return loss_at(p->value, i, d);
      });
    }
  }

  static void check_tensor(
      const char* what, const Tensor& target, const Tensor& analytic,
      const std::function<double(std::size_t, double)>& loss_at) {
    // Sample up to 24 evenly spaced indices to keep tests fast.
    const std::size_t n = target.size();
    const std::size_t step = std::max<std::size_t>(1, n / 24);
    for (std::size_t i = 0; i < n; i += step) {
      const double lp = loss_at(i, kEps);
      const double lm = loss_at(i, -kEps);
      const double numeric = (lp - lm) / (2 * kEps);
      const double a = analytic[i];
      const double denom = std::max({std::abs(numeric), std::abs(a), 1.0});
      EXPECT_NEAR(a / denom, numeric / denom, kTol)
          << what << " grad mismatch at index " << i << ": analytic " << a
          << " numeric " << numeric;
    }
  }
};

TEST(Dense, ForwardMatchesManual) {
  util::Rng rng(1);
  Dense d(2, 2, rng);
  // Overwrite weights with known values: W = [[1,2],[3,4]], b = [0.5, -0.5].
  Param* w = d.params()[0];
  Param* b = d.params()[1];
  w->value[0] = 1;
  w->value[1] = 2;
  w->value[2] = 3;
  w->value[3] = 4;
  b->value[0] = 0.5f;
  b->value[1] = -0.5f;
  Tensor x({1, 2});
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = -1.0f;
  const Tensor y = d.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 * 1 + 2 * -1 + 0.5f);   // -0.5
  EXPECT_FLOAT_EQ(y.at(0, 1), 3 * 1 + 4 * -1 - 0.5f);   // -1.5
}

TEST(Dense, RejectsBadShapes) {
  util::Rng rng(1);
  Dense d(4, 3, rng);
  EXPECT_THROW(d.forward(Tensor({2, 5}), false), std::invalid_argument);
  EXPECT_THROW(Dense(0, 3, rng), std::invalid_argument);
}

TEST(Dense, GradientCheck) {
  util::Rng rng(2);
  Dense d(5, 4, rng);
  GradCheck::run(d, random_tensor({3, 5}, rng), rng);
}

TEST(ReLU, ForwardZeroesNegatives) {
  ReLU r;
  Tensor x({1, 4});
  x[0] = -1;
  x[1] = 0;
  x[2] = 2;
  x[3] = -0.5;
  const Tensor y = r.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0);
  EXPECT_FLOAT_EQ(y[1], 0);
  EXPECT_FLOAT_EQ(y[2], 2);
  EXPECT_FLOAT_EQ(y[3], 0);
}

TEST(ReLU, GradientCheck) {
  util::Rng rng(3);
  ReLU r;
  // Keep inputs away from the kink at 0 for numeric stability.
  Tensor x = random_tensor({2, 6}, rng);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i]) < 0.05f) x[i] = 0.2f;
  }
  GradCheck::run(r, x, rng);
}

TEST(Tanh, ForwardAndGradient) {
  util::Rng rng(4);
  Tanh t;
  Tensor x({1, 3});
  x[0] = 0;
  x[1] = 1;
  x[2] = -1;
  const Tensor y = t.forward(x, false);
  EXPECT_NEAR(y[0], 0.0, 1e-6);
  EXPECT_NEAR(y[1], std::tanh(1.0), 1e-6);
  GradCheck::run(t, random_tensor({2, 5}, rng), rng);
}

TEST(Flatten, RoundTrip) {
  Flatten f;
  Tensor x({2, 3, 4, 5});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  const Tensor y = f.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 60}));
  const Tensor back = f.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
  EXPECT_EQ(back[17], x[17]);
}

TEST(Dropout, InferenceIsIdentity) {
  Dropout d(0.5, util::Rng(5));
  Tensor x({4, 4}, 1.0f);
  const Tensor y = d.forward(x, /*train=*/false);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y[i], 1.0f);
}

TEST(Dropout, TrainDropsAndRescales) {
  Dropout d(0.5, util::Rng(6));
  Tensor x({100, 100}, 1.0f);
  const Tensor y = d.forward(x, /*train=*/true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // 1 / (1 - 0.5)
    }
  }
  const double ratio = static_cast<double>(zeros) / y.size();
  EXPECT_NEAR(ratio, 0.5, 0.03);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout d(0.5, util::Rng(7));
  Tensor x({10, 10}, 1.0f);
  const Tensor y = d.forward(x, true);
  Tensor g({10, 10}, 1.0f);
  const Tensor gx = d.backward(g);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_FLOAT_EQ(gx[i], y[i]);  // same mask, same scaling
  }
}

TEST(Dropout, RejectsBadP) {
  EXPECT_THROW(Dropout(1.0, util::Rng(1)), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1, util::Rng(1)), std::invalid_argument);
}

TEST(Conv2D, OutputShape) {
  util::Rng rng(8);
  Conv2D c(1, 8, 3, 2, rng);
  const Tensor y = c.forward(Tensor({2, 1, 24, 32}), false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 8, 11, 15}));
  EXPECT_GT(c.flops_per_sample(), 0u);
}

TEST(Conv2D, KnownSmallCase) {
  util::Rng rng(9);
  Conv2D c(1, 1, 2, 1, rng);
  Param* w = c.params()[0];
  Param* b = c.params()[1];
  // 2x2 kernel of ones, bias 1.
  for (std::size_t i = 0; i < 4; ++i) w->value[i] = 1.0f;
  b->value[0] = 1.0f;
  Tensor x({1, 1, 2, 3});
  for (std::size_t i = 0; i < 6; ++i) x[i] = static_cast<float>(i + 1);
  // x = [1 2 3; 4 5 6]; windows: [1,2,4,5]=12, [2,3,5,6]=16; +1 bias.
  const Tensor y = c.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 13.0f);
  EXPECT_FLOAT_EQ(y[1], 17.0f);
}

TEST(Conv2D, GradientCheck) {
  util::Rng rng(10);
  Conv2D c(2, 3, 3, 2, rng);
  GradCheck::run(c, random_tensor({2, 2, 7, 9}, rng), rng);
}

TEST(Conv2D, RejectsTooSmallInput) {
  util::Rng rng(11);
  Conv2D c(1, 1, 5, 1, rng);
  EXPECT_THROW(c.forward(Tensor({1, 1, 3, 3}), false), std::invalid_argument);
}

TEST(MaxPool2D, ForwardSelectsMax) {
  MaxPool2D p;
  Tensor x({1, 1, 2, 4});
  const float vals[] = {1, 5, 2, 0, 3, 4, 8, 7};
  for (std::size_t i = 0; i < 8; ++i) x[i] = vals[i];
  const Tensor y = p.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
}

TEST(MaxPool2D, BackwardRoutesToArgmax) {
  MaxPool2D p;
  Tensor x({1, 1, 2, 2});
  x[0] = 1;
  x[1] = 9;
  x[2] = 3;
  x[3] = 2;
  p.forward(x, false);
  Tensor g({1, 1, 1, 1}, 2.5f);
  const Tensor gx = p.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0);
  EXPECT_FLOAT_EQ(gx[1], 2.5f);
  EXPECT_FLOAT_EQ(gx[2], 0);
  EXPECT_FLOAT_EQ(gx[3], 0);
}

TEST(Conv3D, OutputShape) {
  util::Rng rng(12);
  Conv3D c(1, 8, 2, 3, 1, 2, rng);
  const Tensor y = c.forward(Tensor({2, 1, 3, 24, 32}), false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 8, 2, 11, 15}));
}

TEST(Conv3D, GradientCheck) {
  util::Rng rng(13);
  Conv3D c(1, 2, 2, 3, 1, 2, rng);
  GradCheck::run(c, random_tensor({2, 1, 3, 7, 9}, rng), rng);
}

TEST(LSTM, OutputShapeAndDeterminism) {
  util::Rng rng(14);
  LSTM l(6, 4, rng);
  util::Rng data_rng(15);
  const Tensor x = random_tensor({3, 5, 6}, data_rng);
  const Tensor h1 = l.forward(x, false);
  const Tensor h2 = l.forward(x, false);
  EXPECT_EQ(h1.shape(), (std::vector<std::size_t>{3, 4}));
  for (std::size_t i = 0; i < h1.size(); ++i) EXPECT_FLOAT_EQ(h1[i], h2[i]);
}

TEST(LSTM, GradientCheck) {
  util::Rng rng(16);
  LSTM l(4, 3, rng);
  GradCheck::run(l, random_tensor({2, 3, 4}, rng, 0.5), rng);
}

TEST(LSTM, HiddenBoundedByTanh) {
  util::Rng rng(17);
  LSTM l(4, 8, rng);
  const Tensor h = l.forward(random_tensor({4, 6, 4}, rng, 3.0), false);
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_LT(std::abs(h[i]), 1.0f);
  }
}

TEST(LSTM, RejectsBadInput) {
  util::Rng rng(18);
  LSTM l(4, 3, rng);
  EXPECT_THROW(l.forward(Tensor({2, 4}), false), std::invalid_argument);
  EXPECT_THROW(l.forward(Tensor({2, 3, 5}), false), std::invalid_argument);
}

}  // namespace
}  // namespace autolearn::ml
