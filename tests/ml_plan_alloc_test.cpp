// Zero-allocation guarantee for the compiled forward path. This binary —
// and only this binary — links tests/alloc_hooks.cpp, whose operator
// new/delete overrides tick util::allocation_count(). After a warm-up
// batch, a compiled predict_batch must perform ZERO heap allocations;
// the interpreted path on the same model allocates per batch (that
// contrast is asserted too, so the hooks are proven live). Selected by
// `ctest -L plan`.
#include <gtest/gtest.h>

#include <vector>

#include "camera/image.hpp"
#include "ml/driving_model.hpp"
#include "ml/plan.hpp"
#include "ml/quant_model.hpp"
#include "util/alloc_counter.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace autolearn::ml {
namespace {

constexpr std::size_t kMaxBatch = 8;

std::vector<Sample> make_samples(const ModelConfig& cfg, std::size_t n,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Sample s;
    for (std::size_t f = 0; f < cfg.seq_len; ++f) {
      camera::Image img(cfg.img_w, cfg.img_h);
      for (float& px : img.pixels()) {
        px = static_cast<float>(rng.uniform(0.0, 1.0));
      }
      s.frames.push_back(std::move(img));
    }
    for (std::size_t h = 0; h < cfg.history_len; ++h) {
      s.history.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
      s.history.push_back(static_cast<float>(rng.uniform(0.0, 1.0)));
    }
    out.push_back(std::move(s));
  }
  return out;
}

TEST(AllocHooks, CountAllocations) {
  util::AllocCounterScope scope;
  auto* p = new int(42);
  EXPECT_GE(scope.delta(), 1u);
  delete p;
}

class PlanZeroAlloc : public ::testing::TestWithParam<ModelType> {};

TEST_P(PlanZeroAlloc, SteadyStatePredictBatchIsAllocationFree) {
  // Single-worker pool: the raw chunk dispatch runs inline on the caller,
  // so the measurement excludes worker-thread scheduling noise. (The
  // multi-worker path is also allocation-free — chunks are claimed from
  // pool-resident state — but worker wakeups make the count racy to read.)
  util::ThreadPool pool(1);
  util::ThreadPool::ScopedOverride override_pool(pool);

  ModelConfig cfg;
  const auto model = make_model(GetParam(), cfg);
  const auto samples = make_samples(cfg, kMaxBatch, 17);
  std::vector<Prediction> out(kMaxBatch);

  // Interpreted baseline allocates (tensors per layer) — proves the hooks
  // are live before we assert a zero.
  {
    util::AllocCounterScope interp;
    model->predict_batch(samples.data(), kMaxBatch, out.data());
    EXPECT_GT(interp.delta(), 0u) << "alloc hooks not linked?";
  }

  ASSERT_TRUE(model->attach_plan(kMaxBatch));
  // Warm-up: first run may fault in lazily-initialized kernel state.
  model->predict_batch(samples.data(), kMaxBatch, out.data());
  model->predict_batch(samples.data(), 3, out.data());

  util::AllocCounterScope scope;
  model->predict_batch(samples.data(), kMaxBatch, out.data());
  model->predict_batch(samples.data(), 3, out.data());  // ragged tail too
  model->predict_batch(samples.data(), 1, out.data());
  EXPECT_EQ(scope.delta(), 0u)
      << "compiled predict_batch heap-allocated in steady state";
}

TEST_P(PlanZeroAlloc, Int8SteadyStateIsAllocationFree) {
  util::ThreadPool pool(1);
  util::ThreadPool::ScopedOverride override_pool(pool);

  ModelConfig cfg;
  const auto fp32 = make_model(GetParam(), cfg);
  const auto calibration = make_samples(cfg, 4, 29);
  const auto model = quantize_model(*fp32, cfg, calibration);
  const auto samples = make_samples(cfg, kMaxBatch, 17);
  std::vector<Prediction> out(kMaxBatch);

  ASSERT_TRUE(model->attach_plan(kMaxBatch));
  model->predict_batch(samples.data(), kMaxBatch, out.data());  // warm-up

  util::AllocCounterScope scope;
  model->predict_batch(samples.data(), kMaxBatch, out.data());
  model->predict_batch(samples.data(), 5, out.data());
  EXPECT_EQ(scope.delta(), 0u)
      << "compiled int8 predict_batch heap-allocated in steady state";
}

INSTANTIATE_TEST_SUITE_P(AllZooModels, PlanZeroAlloc,
                         ::testing::ValuesIn(all_model_types()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace autolearn::ml
