// Plan-vs-interpreted oracle for the graph-compiled forward path: for
// every model in the six-type zoo, fp32 AND int8, the compiled arena
// program must reproduce the interpreted per-layer forward BITWISE at
// batch 1, at a ragged tail size, and at the full batch cap. Plus the
// typed compile-failure contract (PlanError, never a crash) and the
// arena-sharing accounting. Selected by `ctest -L plan`.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "camera/image.hpp"
#include "ml/conv.hpp"
#include "ml/driving_model.hpp"
#include "ml/layers.hpp"
#include "ml/plan.hpp"
#include "ml/quant_model.hpp"
#include "ml/sequential.hpp"
#include "util/rng.hpp"

namespace autolearn::ml {
namespace {

constexpr std::size_t kMaxBatch = 8;

std::vector<Sample> make_samples(const ModelConfig& cfg, std::size_t n,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Sample s;
    for (std::size_t f = 0; f < cfg.seq_len; ++f) {
      camera::Image img(cfg.img_w, cfg.img_h);
      for (float& px : img.pixels()) {
        px = static_cast<float>(rng.uniform(0.0, 1.0));
      }
      s.frames.push_back(std::move(img));
    }
    for (std::size_t h = 0; h < cfg.history_len; ++h) {
      s.history.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
      s.history.push_back(static_cast<float>(rng.uniform(0.0, 1.0)));
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// Interpreted reference first (no plan attached), then the compiled path
/// on the same model: outputs must agree bit for bit.
void expect_plan_matches_interpreted(DrivingModel& model,
                                     const std::vector<Sample>& samples,
                                     std::size_t n) {
  ASSERT_LE(n, samples.size());
  model.detach_plan();
  std::vector<Prediction> ref(n);
  model.predict_batch(samples.data(), n, ref.data());
  ASSERT_TRUE(model.attach_plan(kMaxBatch));
  ASSERT_NE(model.plan(), nullptr);
  std::vector<Prediction> got(n);
  model.predict_batch(samples.data(), n, got.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(ref[i].steering, got[i].steering) << "row " << i << " n=" << n;
    EXPECT_EQ(ref[i].throttle, got[i].throttle) << "row " << i << " n=" << n;
  }
}

class PlanOracle : public ::testing::TestWithParam<ModelType> {};

TEST_P(PlanOracle, Fp32BitwiseAtAllBatchSizes) {
  ModelConfig cfg;
  const auto model = make_model(GetParam(), cfg);
  const auto samples = make_samples(cfg, kMaxBatch, 17);
  expect_plan_matches_interpreted(*model, samples, 1);
  expect_plan_matches_interpreted(*model, samples, 5);  // ragged tail
  expect_plan_matches_interpreted(*model, samples, kMaxBatch);
}

TEST_P(PlanOracle, Int8BitwiseAtAllBatchSizes) {
  ModelConfig cfg;
  const auto fp32 = make_model(GetParam(), cfg);
  const auto calibration = make_samples(cfg, 4, 29);
  const auto model = quantize_model(*fp32, cfg, calibration);
  ASSERT_EQ(model->precision(), Precision::Int8);
  const auto samples = make_samples(cfg, kMaxBatch, 17);
  expect_plan_matches_interpreted(*model, samples, 1);
  expect_plan_matches_interpreted(*model, samples, 5);
  expect_plan_matches_interpreted(*model, samples, kMaxBatch);
}

TEST_P(PlanOracle, RepeatedRunsAreDeterministic) {
  ModelConfig cfg;
  const auto model = make_model(GetParam(), cfg);
  ASSERT_TRUE(model->attach_plan(kMaxBatch));
  const auto samples = make_samples(cfg, kMaxBatch, 41);
  std::vector<Prediction> first(kMaxBatch), second(kMaxBatch);
  model->predict_batch(samples.data(), kMaxBatch, first.data());
  model->predict_batch(samples.data(), kMaxBatch, second.data());
  for (std::size_t i = 0; i < kMaxBatch; ++i) {
    EXPECT_EQ(first[i].steering, second[i].steering) << "row " << i;
    EXPECT_EQ(first[i].throttle, second[i].throttle) << "row " << i;
  }
}

TEST_P(PlanOracle, OverCapBatchFallsBackToInterpreted) {
  ModelConfig cfg;
  const auto model = make_model(GetParam(), cfg);
  const std::size_t n = kMaxBatch + 3;
  const auto samples = make_samples(cfg, n, 53);
  std::vector<Prediction> ref(n);
  model->predict_batch(samples.data(), n, ref.data());
  ASSERT_TRUE(model->attach_plan(kMaxBatch));
  std::vector<Prediction> got(n);
  model->predict_batch(samples.data(), n, got.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(ref[i].steering, got[i].steering) << "row " << i;
    EXPECT_EQ(ref[i].throttle, got[i].throttle) << "row " << i;
  }
}

TEST_P(PlanOracle, AttachIsIdempotentForMatchingCap) {
  ModelConfig cfg;
  const auto model = make_model(GetParam(), cfg);
  ASSERT_TRUE(model->attach_plan(kMaxBatch));
  CompiledModel* first = model->plan();
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(model->attach_plan(kMaxBatch));
  EXPECT_EQ(model->plan(), first);  // no recompile, same plan object
  // A different cap DOES recompile.
  ASSERT_TRUE(model->attach_plan(kMaxBatch * 2));
  ASSERT_NE(model->plan(), nullptr);
  EXPECT_EQ(model->plan()->max_batch(), kMaxBatch * 2);
}

TEST_P(PlanOracle, ArenaSharingBeatsNaiveSum) {
  ModelConfig cfg;
  const auto model = make_model(GetParam(), cfg);
  ASSERT_TRUE(model->attach_plan(kMaxBatch));
  const PlanStats stats = model->plan()->stats();
  EXPECT_GT(stats.steps, 0u);
  EXPECT_GT(stats.arena_floats, 0u);
  // Liveness-based slot sharing must never do worse than giving every
  // intermediate its own buffer.
  EXPECT_LE(stats.arena_floats, stats.naive_floats);
}

TEST_P(PlanOracle, SaveLoadReattachKeepsBitwiseIdentity) {
  ModelConfig cfg;
  const auto model = make_model(GetParam(), cfg);
  const auto samples = make_samples(cfg, kMaxBatch, 61);
  // Capture interpreted reference AFTER a save/load round-trip on a twin:
  // the plan holds raw parameter pointers, so load() must recompile.
  std::ostringstream saved;
  model->save(saved);
  ASSERT_TRUE(model->attach_plan(kMaxBatch));
  std::istringstream restore(saved.str());
  model->load(restore);  // must reattach the plan against the new params
  ASSERT_NE(model->plan(), nullptr);
  EXPECT_EQ(model->plan()->max_batch(), kMaxBatch);
  const auto twin = make_model(GetParam(), cfg);
  std::istringstream restore2(saved.str());
  twin->load(restore2);
  std::vector<Prediction> ref(kMaxBatch), got(kMaxBatch);
  twin->predict_batch(samples.data(), kMaxBatch, ref.data());
  model->predict_batch(samples.data(), kMaxBatch, got.data());
  for (std::size_t i = 0; i < kMaxBatch; ++i) {
    EXPECT_EQ(ref[i].steering, got[i].steering) << "row " << i;
    EXPECT_EQ(ref[i].throttle, got[i].throttle) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllZooModels, PlanOracle,
                         ::testing::ValuesIn(all_model_types()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// --- typed compile/execute failures -------------------------------------

TEST(PlanErrors, EmptyModelThrowsTyped) {
  Sequential net;
  try {
    CompiledNet plan(net, {4}, 8);
    FAIL() << "expected PlanError";
  } catch (const PlanError& e) {
    EXPECT_EQ(e.code(), PlanError::Code::EmptyModel);
  }
}

TEST(PlanErrors, NullLayerSlotThrowsTypedNotCrash) {
  util::Rng rng(7);
  Sequential net;
  net.add<Dense>(4, 2, rng);
  // Mid-swap state: the slot transiently holds null.
  auto old = net.swap_layer(0, nullptr);
  try {
    CompiledNet plan(net, {4}, 8);
    FAIL() << "expected PlanError";
  } catch (const PlanError& e) {
    EXPECT_EQ(e.code(), PlanError::Code::NullLayer);
  }
  net.swap_layer(0, std::move(old));  // restore; compile now succeeds
  CompiledNet plan(net, {4}, 8);
  EXPECT_EQ(plan.out_row_elems(), 2u);
}

TEST(PlanErrors, UnsupportedLayerNamesTheLayer) {
  Sequential net;
  net.add<MaxPool2D>();
  try {
    CompiledNet plan(net, {1, 8, 8}, 4);
    FAIL() << "expected PlanError";
  } catch (const PlanError& e) {
    EXPECT_EQ(e.code(), PlanError::Code::UnsupportedLayer);
    EXPECT_NE(std::string(e.what()).find("maxpool2d"), std::string::npos);
  }
}

TEST(PlanErrors, BadBatchOnZeroCapAndOutOfRangeRows) {
  EXPECT_THROW(CompiledModel model(0), PlanError);
  util::Rng rng(7);
  Sequential net;
  net.add<Dense>(4, 2, rng);
  CompiledNet plan(net, {4}, 8);
  EXPECT_THROW(plan.run(0), PlanError);
  EXPECT_THROW(plan.run(9), PlanError);
}

TEST(PlanErrors, DirectNetBitwiseMatchesSequentialForward) {
  util::Rng rng(11);
  Sequential net;
  net.add<Dense>(6, 8, rng);
  net.add<ReLU>();
  net.add<Dense>(8, 2, rng);
  net.add<Tanh>();
  CompiledNet plan(net, {6}, 4);
  util::Rng data_rng(13);
  Tensor x({3, 6});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(data_rng.uniform(-1.0, 1.0));
  }
  const Tensor ref = net.forward(x, /*train=*/false);
  std::copy(x.data(), x.data() + x.size(), plan.input());
  const float* got = plan.run(3);
  ASSERT_EQ(ref.size(), 3u * plan.out_row_elems());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i], got[i]) << "elem " << i;
  }
}

}  // namespace
}  // namespace autolearn::ml
