// Equivalence oracle for the batched-predict API redesign: for every model
// in the six-type zoo, predict() must agree with predict_batch() — bitwise
// at batch 1 (predict IS predict_batch of one), and row-for-row when a
// whole batch runs as a single GEMM-backed forward.
#include <gtest/gtest.h>

#include <vector>

#include "camera/image.hpp"
#include "ml/driving_model.hpp"
#include "util/rng.hpp"

namespace autolearn::ml {
namespace {

std::vector<Sample> make_samples(const ModelConfig& cfg, std::size_t n,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Sample s;
    for (std::size_t f = 0; f < cfg.seq_len; ++f) {
      camera::Image img(cfg.img_w, cfg.img_h);
      for (float& px : img.pixels()) {
        px = static_cast<float>(rng.uniform(0.0, 1.0));
      }
      s.frames.push_back(std::move(img));
    }
    for (std::size_t h = 0; h < cfg.history_len; ++h) {
      s.history.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
      s.history.push_back(static_cast<float>(rng.uniform(0.0, 1.0)));
    }
    out.push_back(std::move(s));
  }
  return out;
}

class PredictBatchEquivalence : public ::testing::TestWithParam<ModelType> {};

TEST_P(PredictBatchEquivalence, BatchOfOneIsBitwiseIdentical) {
  ModelConfig cfg;
  const auto model = make_model(GetParam(), cfg);
  const auto samples = make_samples(cfg, 4, 17);
  for (const Sample& s : samples) {
    const Prediction single = model->predict(s);
    Prediction batched;
    model->predict_batch(&s, 1, &batched);
    // Bitwise, not approximately: both entry points must run the exact
    // same forward.
    EXPECT_EQ(single.steering, batched.steering);
    EXPECT_EQ(single.throttle, batched.throttle);
  }
}

TEST_P(PredictBatchEquivalence, BatchedForwardMatchesPerSample) {
  ModelConfig cfg;
  const auto model = make_model(GetParam(), cfg);
  const auto samples = make_samples(cfg, 7, 23);
  std::vector<Prediction> batched(samples.size());
  model->predict_batch(samples.data(), samples.size(), batched.data());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Prediction single = model->predict(samples[i]);
    // Each batch row accumulates in the same order as the row-of-one
    // forward, so the batched GEMM path reproduces per-sample results.
    EXPECT_EQ(single.steering, batched[i].steering) << "row " << i;
    EXPECT_EQ(single.throttle, batched[i].throttle) << "row " << i;
  }
}

TEST_P(PredictBatchEquivalence, EmptyBatchIsANoOp) {
  ModelConfig cfg;
  const auto model = make_model(GetParam(), cfg);
  model->predict_batch(nullptr, 0, nullptr);  // must not crash
}

INSTANTIATE_TEST_SUITE_P(AllZooModels, PredictBatchEquivalence,
                         ::testing::ValuesIn(all_model_types()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// External subclasses that only implement predict() get batching for free
// through the base-class fallback loop.
class PerSampleOnlyModel : public DrivingModel {
 public:
  ModelType type() const override { return ModelType::Linear; }
  Prediction predict(const Sample& obs) override {
    ++calls_;
    return {static_cast<double>(obs.frames.size()),
            static_cast<double>(calls_)};
  }
  double train_batch(const std::vector<const Sample*>&) override { return 0; }
  double eval_batch(const std::vector<const Sample*>&) override { return 0; }
  std::size_t num_parameters() override { return 0; }
  std::uint64_t flops_per_sample() const override { return 1; }
  void save(std::ostream&) override {}
  void load(std::istream&) override {}

 private:
  int calls_ = 0;
};

TEST(PredictBatchFallback, BaseClassLoopsOverPredict) {
  ModelConfig cfg;
  PerSampleOnlyModel model;
  const auto samples = make_samples(cfg, 3, 5);
  std::vector<Prediction> out(samples.size());
  model.predict_batch(samples.data(), samples.size(), out.data());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].steering,
                     static_cast<double>(samples[i].frames.size()));
    EXPECT_DOUBLE_EQ(out[i].throttle, static_cast<double>(i + 1));
  }
}

}  // namespace
}  // namespace autolearn::ml
