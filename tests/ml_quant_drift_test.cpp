// The six-model accuracy oracle for the int8 path (ctest -L quant): every
// zoo model is trained briefly on the banded steering task, quantized
// from tub-style calibration data, and run side by side with its fp32
// source over a held-out set. Max per-sample steering drift and
// dataset-level MAE are hard-gated against the committed thresholds
// below, so a kernel or calibration change that degrades accuracy fails
// CI instead of shipping. Also covers the frozen-artifact contract,
// batch-of-1 bitwise batching on the int8 path, and registry /
// latency-pricing integration with the serving tier.
#include <gtest/gtest.h>

#include <cmath>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "camera/image.hpp"
#include "gpu/perf_model.hpp"
#include "ml/driving_model.hpp"
#include "ml/quant_model.hpp"
#include "ml/trainer.hpp"
#include "serve/model_registry.hpp"
#include "util/rng.hpp"

namespace autolearn::ml {
namespace {

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.img_w = 32;
  cfg.img_h = 24;
  cfg.lr = 2e-3;
  return cfg;
}

/// The vertical-band steering task from ml_gemm_test: bright 3px band at
/// a random column, steering label proportional to its position.
std::vector<Sample> band_dataset(std::size_t n, const ModelConfig& cfg,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t col = static_cast<std::size_t>(
        rng.uniform_int(2, static_cast<std::int64_t>(cfg.img_w) - 3));
    camera::Image img(cfg.img_w, cfg.img_h, 0.1f);
    for (std::size_t y = 0; y < cfg.img_h; ++y) {
      for (std::size_t dx = 0; dx < 3; ++dx) img.at(col - 1 + dx, y) = 0.9f;
    }
    Sample s;
    for (std::size_t f = 0; f < cfg.seq_len; ++f) s.frames.push_back(img);
    const float steer = static_cast<float>(
        2.0 * static_cast<double>(col) / (cfg.img_w - 1) - 1.0);
    for (std::size_t h = 0; h < cfg.history_len; ++h) {
      s.history.push_back(steer);
      s.history.push_back(0.5f);
    }
    s.steering = steer;
    s.throttle = 0.5f;
    out.push_back(std::move(s));
  }
  return out;
}

/// Committed per-model drift thresholds (the gate of ROADMAP item 2).
/// Provenance: measured on the seed fit (epochs=3, 96 train samples,
/// 48-sample eval, max-abs calibrator) and committed with ~3x headroom —
/// worst continuous-head model is Conv3d at max=0.0219 / mae=0.0082; see
/// docs/performance.md "Threshold provenance". The categorical head
/// argmaxes 15 steering bins and measured zero drift (no bin flip), but
/// a near-boundary logit may legitimately hop one 2/14-wide bin, so its
/// gate tolerates exactly one hop per sample and a small MAE.
struct DriftGate {
  double max_drift;  // max per-sample |steer_int8 - steer_fp32|
  double mae;        // dataset-level mean absolute steering drift
};

DriftGate gate_for(ModelType type) {
  switch (type) {
    case ModelType::Categorical: return {0.15, 0.01};
    default: return {0.07, 0.025};
  }
}

struct QuantFixture {
  ModelConfig cfg;
  std::unique_ptr<DrivingModel> fp32;
  std::unique_ptr<QuantizedModel> int8;
  std::vector<Sample> eval_set;
};

QuantFixture make_fixture(ModelType type, const QuantizeOptions& options) {
  QuantFixture fx;
  fx.cfg = tiny_config();
  const auto train = band_dataset(96, fx.cfg, 701);
  fx.eval_set = band_dataset(48, fx.cfg, 702);
  fx.fp32 = make_model(type, fx.cfg);
  TrainOptions opt;
  opt.epochs = 3;
  opt.batch_size = 32;
  fit(*fx.fp32, train, fx.eval_set, opt);
  // Calibration reuses tub-style training samples, never the eval set.
  const std::vector<Sample> calibration(train.begin(), train.begin() + 64);
  fx.int8 = quantize_model(*fx.fp32, fx.cfg, calibration, options);
  return fx;
}

struct Drift {
  double max_drift = 0.0;
  double mae = 0.0;
};

Drift measure_drift(QuantFixture& fx) {
  std::vector<Prediction> ref(fx.eval_set.size()), got(fx.eval_set.size());
  fx.fp32->predict_batch(fx.eval_set.data(), fx.eval_set.size(), ref.data());
  fx.int8->predict_batch(fx.eval_set.data(), fx.eval_set.size(), got.data());
  Drift d;
  for (std::size_t i = 0; i < fx.eval_set.size(); ++i) {
    const double drift = std::fabs(got[i].steering - ref[i].steering);
    d.max_drift = std::max(d.max_drift, drift);
    d.mae += drift;
  }
  d.mae /= static_cast<double>(fx.eval_set.size());
  return d;
}

class QuantDriftGate : public ::testing::TestWithParam<ModelType> {};

TEST_P(QuantDriftGate, SteeringDriftUnderCommittedThreshold) {
  QuantFixture fx = make_fixture(GetParam(), QuantizeOptions{});
  EXPECT_EQ(fx.int8->precision(), Precision::Int8);
  EXPECT_EQ(fx.int8->type(), GetParam());
  const Drift d = measure_drift(fx);
  const DriftGate gate = gate_for(GetParam());
  // Informational: the measured values behind the committed thresholds.
  std::cout << "[quant-drift] " << fx.fp32->type_name()
            << " max=" << d.max_drift << " mae=" << d.mae << "\n";
  EXPECT_LE(d.max_drift, gate.max_drift) << "int8 steering drift regressed";
  EXPECT_LE(d.mae, gate.mae) << "int8 steering MAE regressed";
}

TEST_P(QuantDriftGate, BatchOfOneIsBitwiseIdenticalOnInt8Path) {
  // Static calibrated activation scales + exact integer accumulation:
  // batching must not change a single bit of an int8 prediction.
  QuantFixture fx = make_fixture(GetParam(), QuantizeOptions{});
  std::vector<Prediction> batched(fx.eval_set.size());
  fx.int8->predict_batch(fx.eval_set.data(), fx.eval_set.size(),
                         batched.data());
  for (std::size_t i = 0; i < fx.eval_set.size(); ++i) {
    Prediction one;
    fx.int8->predict_batch(&fx.eval_set[i], 1, &one);
    ASSERT_EQ(one.steering, batched[i].steering) << "row " << i;
    ASSERT_EQ(one.throttle, batched[i].throttle) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllZooModels, QuantDriftGate,
                         ::testing::ValuesIn(all_model_types()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(QuantDriftGateExtras, PercentileCalibratorAlsoHoldsTheGate) {
  // The outlier-robust calibrator must not blow the same threshold (it
  // can only tighten scales relative to max-abs on this data).
  QuantizeOptions options;
  options.calibrator = Calibrator::Percentile;
  options.percentile = 0.999;
  QuantFixture fx = make_fixture(ModelType::Linear, options);
  const Drift d = measure_drift(fx);
  const DriftGate gate = gate_for(ModelType::Linear);
  EXPECT_LE(d.max_drift, gate.max_drift);
  EXPECT_LE(d.mae, gate.mae);
}

TEST(QuantizedModelContract, FrozenArtifactThrowsOnTrainAndLoad) {
  QuantFixture fx = make_fixture(ModelType::Linear, QuantizeOptions{});
  const auto batch = band_dataset(4, fx.cfg, 703);
  std::vector<const Sample*> ptrs;
  for (const Sample& s : batch) ptrs.push_back(&s);
  EXPECT_THROW(fx.int8->train_batch(ptrs), std::logic_error);
  std::istringstream is("x");
  EXPECT_THROW(fx.int8->load(is), std::logic_error);
}

TEST(QuantizedModelContract, SavePreservesFp32SourceParameters) {
  // The int8 twins retain the fp32 Params, so an archived quantized model
  // serializes byte-identically to its source — re-quantization from the
  // archive reproduces the artifact.
  QuantFixture fx = make_fixture(ModelType::Memory, QuantizeOptions{});
  std::ostringstream src, quantized;
  fx.fp32->save(src);
  fx.int8->save(quantized);
  EXPECT_EQ(src.str(), quantized.str());
}

TEST(QuantizedModelContract, EmptyCalibrationSetRejected) {
  const ModelConfig cfg = tiny_config();
  auto model = make_model(ModelType::Linear, cfg);
  EXPECT_THROW(quantize_model(*model, cfg, {}, QuantizeOptions{}),
               std::invalid_argument);
}

TEST(QuantServeIntegration, RegistryPublishesInt8VariantAndPricesIt) {
  // The serving tier can canary a quantized variant through the existing
  // registry, and the perf model prices it at the device's int8 rate.
  QuantFixture fx = make_fixture(ModelType::Inferred, QuantizeOptions{});
  serve::ModelRegistry registry;
  registry.publish(std::shared_ptr<DrivingModel>(std::move(fx.fp32)), "fp32");
  registry.publish(std::shared_ptr<DrivingModel>(std::move(fx.int8)),
                   "int8-canary");
  const auto snapshot = registry.current();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->tag, "int8-canary");
  EXPECT_EQ(snapshot->model->precision(), Precision::Int8);

  // Size the published model's flops, then check pricing: int8 on a
  // dp4a-class device is cheaper than fp32, and exactly matches the
  // speedup-scaled compute term.
  Prediction sink;
  const auto probe = band_dataset(1, fx.cfg, 704);
  snapshot->model->predict_batch(probe.data(), 1, &sink);
  const std::uint64_t flops = snapshot->model->flops_per_sample();
  ASSERT_GT(flops, 0u);
  const gpu::DeviceSpec& v100 = gpu::device("V100");
  const double fp32_s =
      gpu::inference_latency_s(v100, flops, 8, gpu::Precision::Fp32);
  const double int8_s =
      gpu::inference_latency_s(v100, flops, 8, gpu::Precision::Int8);
  EXPECT_LT(int8_s, fp32_s);
  const double overhead = v100.infer_overhead_us * 1e-6;
  EXPECT_NEAR(int8_s - overhead, (fp32_s - overhead) / v100.int8_speedup,
              1e-12);
}

}  // namespace
}  // namespace autolearn::ml
