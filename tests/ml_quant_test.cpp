// Int8 kernel tests (ctest -L quant): the quantize/dequantize round-trip
// property, the qgemm oracle against the fp32 reference under the
// analytic error bound from docs/performance.md, scalar-vs-AVX2 bitwise
// agreement, and the same output/parallelism contracts sgemm holds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "ml/layers.hpp"
#include "ml/quant.hpp"
#include "ml/quant_layers.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace autolearn::ml {
namespace {

std::vector<float> random_vec(std::size_t n, util::Rng& rng, double lo = -1.0,
                              double hi = 1.0) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

/// Double-precision fp32 reference: C[m,n] = W[m,k] @ X[k,n].
std::vector<float> ref_gemm(const std::vector<float>& w,
                            const std::vector<float>& x, std::size_t m,
                            std::size_t n, std::size_t k) {
  std::vector<float> c(m * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(w[i * k + p]) *
               static_cast<double>(x[p * n + j]);
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

ActQuant quant_from_range(const std::vector<float>& x) {
  float lo = 0.0f, hi = 0.0f;
  for (float v : x) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return choose_act_quant(lo, hi);
}

/// The per-row analytic bound (derivation in docs/performance.md): with
/// ŵ, x̂ the dequantized values, |ŵ-w| <= s_w/2 and |x̂-x| <= s_x/2, so
/// |Σ(ŵx̂ - wx)| <= k (max|w_row| s_x/2 + (max|x| + s_x/2) s_w_row/2).
float row_error_bound(const std::vector<float>& w, std::size_t row,
                      std::size_t k, float s_w, const ActQuant& xq,
                      float max_abs_x) {
  float max_abs_w = 0.0f;
  for (std::size_t p = 0; p < k; ++p) {
    max_abs_w = std::max(max_abs_w, std::fabs(w[row * k + p]));
  }
  const float half_sx = 0.5f * xq.scale, half_sw = 0.5f * s_w;
  return static_cast<float>(k) *
         (max_abs_w * half_sx + (max_abs_x + half_sx) * half_sw);
}

// --- quantize/dequantize round-trip properties ----------------------------

TEST(QuantizeWeights, RoundTripWithinHalfScalePerChannel) {
  // Every channel — including an all-zero one and one dominated by a
  // single outlier — must recover each weight within 0.5 * its own scale;
  // per-channel scaling means the outlier cannot degrade other channels.
  const std::size_t rows = 6, cols = 37;
  util::Rng rng(411);
  auto w = random_vec(rows * cols, rng);
  for (std::size_t p = 0; p < cols; ++p) w[1 * cols + p] = 0.0f;  // all-zero
  for (std::size_t p = 0; p < cols; ++p) w[2 * cols + p] *= 1e-3f;
  w[2 * cols + 5] = 50.0f;  // single outlier stretches only channel 2
  const QuantizedWeights qw = quantize_weights(w.data(), rows, cols);
  ASSERT_EQ(qw.scales.size(), rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const float s = qw.scales[i];
    ASSERT_GT(s, 0.0f) << "row " << i;
    std::int32_t sum = 0;
    for (std::size_t p = 0; p < cols; ++p) {
      const float back = s * static_cast<float>(qw.q[i * cols + p]);
      // 0.5 "ULP of scale" plus float division slack on the outlier row.
      EXPECT_LE(std::fabs(back - w[i * cols + p]), 0.5f * s * 1.0001f)
          << "row " << i << " col " << p;
      sum += qw.q[i * cols + p];
    }
    EXPECT_EQ(sum, qw.row_sums[i]) << "row " << i;
  }
  // All-zero channel: exact, with the defaulted scale.
  for (std::size_t p = 0; p < cols; ++p) EXPECT_EQ(qw.q[1 * cols + p], 0);
  EXPECT_EQ(qw.scales[1], 1.0f);
  // The outlier saturates its own channel's small values to 0, but the
  // neighbouring channels' scales stay small (per-channel isolation).
  EXPECT_GT(qw.scales[2], 0.1f);
  EXPECT_LT(qw.scales[0], 0.01f);
}

TEST(ActQuant, RoundTripWithinHalfScaleAndZeroIsExact) {
  util::Rng rng(412);
  for (int trial = 0; trial < 50; ++trial) {
    const float a = static_cast<float>(rng.uniform(-4.0, 4.0));
    const float b = static_cast<float>(rng.uniform(-4.0, 4.0));
    const float lo = std::min(a, b), hi = std::max(a, b);
    const ActQuant q = choose_act_quant(lo, hi);
    ASSERT_GT(q.scale, 0.0f);
    ASSERT_GE(q.zero_point, 0);
    ASSERT_LE(q.zero_point, kActMax);
    // Zero is always representable exactly (the range is widened to
    // include it), so ReLU floors and zero padding survive quantization.
    EXPECT_EQ(dequantize_activation(quantize_activation(0.0f, q), q), 0.0f);
    for (int i = 0; i < 100; ++i) {
      const float x = static_cast<float>(rng.uniform(lo, hi));
      const float back = dequantize_activation(quantize_activation(x, q), q);
      EXPECT_LE(std::fabs(back - x), 0.5f * q.scale * 1.0001f)
          << "x=" << x << " range [" << lo << "," << hi << "]";
    }
  }
}

TEST(ActQuant, DegenerateRangeIsIdentityQuantizer) {
  const ActQuant q = choose_act_quant(0.0f, 0.0f);
  EXPECT_EQ(q.scale, 1.0f);
  EXPECT_EQ(q.zero_point, 0);
  EXPECT_EQ(quantize_activation(0.0f, q), 0);
}

// --- qgemm vs fp32 oracle -------------------------------------------------

struct Shape {
  std::size_t m, n, k;
};

// Mirrors the sgemm edge matrix (k == 1, single-row/column, ragged tiles,
// multi-tile n) plus the batch-1 strided-conv im2col shapes of the zoo
// encoder ({8, 165, 9} is conv1 at 32x24 k3 s2, {32, 48, 144} is conv3).
const Shape kShapes[] = {{1, 1, 1},    {4, 8, 1},      {1, 19, 4},
                         {5, 1, 13},   {3, 5, 7},      {17, 33, 9},
                         {8, 165, 9},  {32, 48, 144},  {130, 100, 37},
                         {64, 300, 96}};

TEST(QGemm, MatchesFp32OracleWithinAnalyticBound) {
  util::Rng rng(413);
  for (const Shape& s : kShapes) {
    const auto w = random_vec(s.m * s.k, rng);
    const auto x = random_vec(s.k * s.n, rng, -2.0, 2.0);
    const QuantizedWeights qw = quantize_weights(w.data(), s.m, s.k);
    const ActQuant xq = quant_from_range(x);
    std::vector<std::uint8_t> qx(x.size());
    quantize_activations(x.data(), x.size(), xq, qx.data());
    float max_abs_x = 0.0f;
    for (float v : x) max_abs_x = std::max(max_abs_x, std::fabs(v));

    const auto want = ref_gemm(w, x, s.m, s.n, s.k);
    std::vector<float> got(s.m * s.n, 0.0f);
    qgemm(qw, qx.data(), s.n, xq, got.data(), s.n);
    for (std::size_t i = 0; i < s.m; ++i) {
      const float bound =
          row_error_bound(w, i, s.k, qw.scales[i], xq, max_abs_x) * 1.0001f +
          1e-5f;
      for (std::size_t j = 0; j < s.n; ++j) {
        ASSERT_LE(std::fabs(got[i * s.n + j] - want[i * s.n + j]), bound)
            << "m=" << s.m << " n=" << s.n << " k=" << s.k << " at (" << i
            << "," << j << ")";
      }
    }
  }
}

TEST(QGemm, ScalarAndAvx2AreBitwiseIdentical) {
  if (!qgemm_isa_supported(QGemmIsa::Avx2)) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  util::Rng rng(414);
  for (const Shape& s : kShapes) {
    const auto w = random_vec(s.m * s.k, rng);
    const auto x = random_vec(s.k * s.n, rng, -1.5, 3.0);
    const QuantizedWeights qw = quantize_weights(w.data(), s.m, s.k);
    const ActQuant xq = quant_from_range(x);
    std::vector<std::uint8_t> qx(x.size());
    quantize_activations(x.data(), x.size(), xq, qx.data());
    std::vector<float> scalar(s.m * s.n, 0.0f), avx2(s.m * s.n, 0.0f);
    qgemm(qw, qx.data(), s.n, xq, scalar.data(), s.n, true, QGemmIsa::Scalar);
    qgemm(qw, qx.data(), s.n, xq, avx2.data(), s.n, true, QGemmIsa::Avx2);
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      ASSERT_EQ(scalar[i], avx2[i])
          << "m=" << s.m << " n=" << s.n << " k=" << s.k << " at " << i;
    }
  }
}

TEST(QGemm, StridedOutputLeavesGapUntouched) {
  util::Rng rng(415);
  const std::size_t m = 6, n = 4, k = 9, ldc = 11;
  const auto w = random_vec(m * k, rng);
  const auto x = random_vec(k * n, rng);
  const QuantizedWeights qw = quantize_weights(w.data(), m, k);
  const ActQuant xq = quant_from_range(x);
  std::vector<std::uint8_t> qx(x.size());
  quantize_activations(x.data(), x.size(), xq, qx.data());
  std::vector<float> c(m * ldc, 99.0f);
  qgemm(qw, qx.data(), n, xq, c.data(), ldc);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = n; j < ldc; ++j) {
      ASSERT_EQ(c[i * ldc + j], 99.0f) << "gap clobbered at " << i << "," << j;
    }
  }
}

TEST(QGemm, ParallelIsBitwiseIdenticalToSerial) {
  // Multi-tile n (> one QNC column tile) across worker counts: integer
  // accumulation makes this exact, and the dequant path is shared.
  util::Rng rng(416);
  const std::size_t m = 13, n = 700, k = 40;
  const auto w = random_vec(m * k, rng);
  const auto x = random_vec(k * n, rng);
  const QuantizedWeights qw = quantize_weights(w.data(), m, k);
  const ActQuant xq = quant_from_range(x);
  std::vector<std::uint8_t> qx(x.size());
  quantize_activations(x.data(), x.size(), xq, qx.data());
  std::vector<float> serial(m * n, 0.0f);
  qgemm(qw, qx.data(), n, xq, serial.data(), n, /*parallel=*/false);
  for (const std::size_t workers : {1u, 3u, 4u}) {
    util::ThreadPool pool(workers);
    util::ThreadPool::ScopedOverride guard(pool);
    std::vector<float> par(m * n, 0.0f);
    qgemm(qw, qx.data(), n, xq, par.data(), n, /*parallel=*/true);
    for (std::size_t i = 0; i < par.size(); ++i) {
      ASSERT_EQ(par[i], serial[i]) << "workers=" << workers << " at " << i;
    }
  }
}

TEST(QGemm, CountersAdvance) {
  util::Rng rng(417);
  const std::size_t m = 4, n = 5, k = 6;
  const auto w = random_vec(m * k, rng);
  const QuantizedWeights qw = quantize_weights(w.data(), m, k);
  std::vector<std::uint8_t> qx(k * n, 7);
  const KernelCounters before = kernel_counters();
  std::vector<float> c(m * n, 0.0f);
  qgemm(qw, qx.data(), n, ActQuant{}, c.data(), n);
  const KernelCounters after = kernel_counters();
  EXPECT_EQ(after.qgemm_calls - before.qgemm_calls, 1u);
  EXPECT_EQ(after.qgemm_ops - before.qgemm_ops, 2ull * m * n * k);
}

// --- quantized layers vs their fp32 twins ---------------------------------

TEST(QuantDense, ForwardWithinAnalyticBoundOfFp32) {
  const std::size_t in = 192, out = 64, batch = 5;
  util::Rng rng(418);
  Dense fp32(in, out, rng);
  util::Rng data_rng(419);
  const Tensor x = Tensor::randn({batch, in}, data_rng, 1.0);
  std::vector<float> xv(x.data(), x.data() + x.size());
  const ActQuant xq = quant_from_range(xv);
  QuantDense q(fp32.params()[0]->value, fp32.params()[1]->value, xq);
  const Tensor want = fp32.forward(x, false);
  const Tensor got = q.forward(x, false);
  ASSERT_EQ(got.shape(), want.shape());
  float max_abs_x = 0.0f;
  for (float v : xv) max_abs_x = std::max(max_abs_x, std::fabs(v));
  const float* w = fp32.params()[0]->value.data();
  std::vector<float> wv(w, w + in * out);
  const QuantizedWeights qw = quantize_weights(w, out, in);
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t o = 0; o < out; ++o) {
      const float bound =
          row_error_bound(wv, o, in, qw.scales[o], xq, max_abs_x) * 1.0001f +
          1e-4f;
      ASSERT_LE(std::fabs(got.at(i, o) - want.at(i, o)), bound)
          << "sample " << i << " unit " << o;
    }
  }
}

TEST(QuantDense, BackwardThrowsFrozen) {
  util::Rng rng(420);
  Dense fp32(4, 3, rng);
  QuantDense q(fp32.params()[0]->value, fp32.params()[1]->value, ActQuant{});
  Tensor g({2, 3}, 0.0f);
  EXPECT_THROW(q.backward(g), std::logic_error);
}

}  // namespace
}  // namespace autolearn::ml
