#include "ml/tensor.hpp"

#include <gtest/gtest.h>

namespace autolearn::ml {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(2), 4u);
  EXPECT_EQ(t.shape_str(), "[2,3,4]");
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t({3}, 1.5f);
  EXPECT_EQ(t[0], 1.5f);
  EXPECT_EQ(t[2], 1.5f);
}

TEST(Tensor, InvalidShapes) {
  EXPECT_THROW(Tensor(std::vector<std::size_t>{}), std::invalid_argument);
  EXPECT_THROW(Tensor({2, 0, 3}), std::invalid_argument);
}

TEST(Tensor, RowMajorIndexing) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t[1 * 3 + 2], 7.0f);
  Tensor u({2, 3, 4});
  u.at(1, 2, 3) = 9.0f;
  EXPECT_EQ(u[1 * 12 + 2 * 4 + 3], 9.0f);
  Tensor v({2, 3, 4, 5});
  v.at(1, 2, 3, 4) = 3.0f;
  EXPECT_EQ(v[1 * 60 + 2 * 20 + 3 * 5 + 4], 3.0f);
  Tensor w5({2, 2, 2, 2, 2});
  w5.at(1, 1, 1, 1, 1) = 5.0f;
  EXPECT_EQ(w5[31], 5.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  for (std::size_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.rank(), 2u);
  EXPECT_EQ(r.at(2, 3), 11.0f);
  EXPECT_THROW(t.reshaped({5, 5}), std::invalid_argument);
}

TEST(Tensor, ZerosLike) {
  Tensor t({2, 2}, 3.0f);
  const Tensor z = Tensor::zeros_like(t);
  EXPECT_EQ(z.shape(), t.shape());
  EXPECT_EQ(z[0], 0.0f);
}

TEST(Tensor, RandnStatistics) {
  util::Rng rng(5);
  const Tensor t = Tensor::randn({100, 100}, rng, 0.5);
  double sum = 0, sum2 = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sum2 += static_cast<double>(t[i]) * t[i];
  }
  const double n = static_cast<double>(t.size());
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 0.25, 0.02);
}

TEST(Tensor, AddScaledAndScale) {
  Tensor a({3}, 1.0f);
  Tensor b({3}, 2.0f);
  a.add_scaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  a.scale(2.0f);
  EXPECT_FLOAT_EQ(a[1], 4.0f);
  Tensor c({4});
  EXPECT_THROW(a.add_scaled(c, 1.0f), std::invalid_argument);
}

TEST(Tensor, CheckSameShape) {
  Tensor a({2, 3}), b({2, 3}), c({3, 2});
  EXPECT_NO_THROW(a.check_same_shape(b, "test"));
  EXPECT_THROW(a.check_same_shape(c, "test"), std::invalid_argument);
}

}  // namespace
}  // namespace autolearn::ml
