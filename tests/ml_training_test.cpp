// Loss, optimizer, sequential container, and whole-model training tests:
// every one of the six DonkeyCar model types must actually learn a
// synthetic steering task.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ckpt/checkpoint.hpp"
#include "ml/driving_model.hpp"
#include "ml/layers.hpp"
#include "ml/loss.hpp"
#include "ml/optimizer.hpp"
#include "ml/sequential.hpp"
#include "ml/trainer.hpp"
#include "objectstore/objectstore.hpp"

namespace autolearn::ml {
namespace {

// --- losses ---------------------------------------------------------------

TEST(MseLoss, KnownValue) {
  Tensor pred({2, 1});
  Tensor target({2, 1});
  pred[0] = 1.0f;
  pred[1] = 3.0f;
  target[0] = 0.0f;
  target[1] = 1.0f;
  auto [loss, grad] = mse_loss(pred, target);
  EXPECT_NEAR(loss, (1.0 + 4.0) / 2, 1e-6);
  EXPECT_NEAR(grad[0], 2.0 * 1.0 / 2, 1e-6);
  EXPECT_NEAR(grad[1], 2.0 * 2.0 / 2, 1e-6);
}

TEST(MseLoss, ZeroWhenEqual) {
  Tensor a({3}, 2.0f);
  auto [loss, grad] = mse_loss(a, a);
  EXPECT_EQ(loss, 0.0);
  for (std::size_t i = 0; i < grad.size(); ++i) EXPECT_EQ(grad[i], 0.0f);
}

TEST(SoftmaxXent, UniformLogitsGiveLogC) {
  Tensor logits({4, 5});  // all zeros -> uniform over 5 classes
  Tensor grad(logits.shape());
  const double loss =
      softmax_xent_slice(logits, 0, 5, {0, 1, 2, 3}, grad);
  EXPECT_NEAR(loss, std::log(5.0), 1e-6);
}

TEST(SoftmaxXent, ConfidentCorrectIsLowLoss) {
  Tensor logits({1, 3});
  logits.at(0, 1) = 10.0f;
  Tensor grad(logits.shape());
  const double loss = softmax_xent_slice(logits, 0, 3, {1}, grad);
  EXPECT_LT(loss, 0.01);
}

TEST(SoftmaxXent, GradientSumsToZeroPerRow) {
  util::Rng rng(3);
  Tensor logits = Tensor::randn({3, 6}, rng, 1.0);
  Tensor grad(logits.shape());
  softmax_xent_slice(logits, 0, 6, {2, 0, 5}, grad);
  for (std::size_t i = 0; i < 3; ++i) {
    double sum = 0;
    for (std::size_t c = 0; c < 6; ++c) sum += grad.at(i, c);
    EXPECT_NEAR(sum, 0.0, 1e-6);  // softmax grad rows sum to zero
  }
}

TEST(SoftmaxXent, SliceLeavesOtherColumnsUntouched) {
  Tensor logits({2, 8});
  Tensor grad(logits.shape());
  softmax_xent_slice(logits, 3, 8, {0, 4}, grad);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(grad.at(i, c), 0.0f);
  }
}

TEST(SoftmaxXent, Validation) {
  Tensor logits({2, 4});
  Tensor grad(logits.shape());
  EXPECT_THROW(softmax_xent_slice(logits, 0, 5, {0, 1}, grad),
               std::invalid_argument);
  EXPECT_THROW(softmax_xent_slice(logits, 0, 4, {0}, grad),
               std::invalid_argument);
  EXPECT_THROW(softmax_xent_slice(logits, 0, 4, {0, 9}, grad),
               std::invalid_argument);
}

TEST(SoftmaxRow, SumsToOne) {
  util::Rng rng(4);
  Tensor logits = Tensor::randn({2, 7}, rng, 2.0);
  const auto p = softmax_row(logits, 1, 0, 7);
  double sum = 0;
  for (float v : p) {
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

// --- optimizers -------------------------------------------------------------

TEST(Optimizers, SgdMinimizesQuadratic) {
  // Minimize f(w) = (w - 3)^2 by hand-feeding gradients.
  Param w(Tensor({1}, 0.0f));
  SGD opt(0.1, 0.0);
  for (int i = 0; i < 200; ++i) {
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    std::vector<Param*> ps{&w};
    opt.step(ps);
  }
  EXPECT_NEAR(w.value[0], 3.0f, 1e-3);
}

TEST(Optimizers, MomentumAcceleratesConvergence) {
  auto solve = [](double momentum) {
    Param w(Tensor({1}, 0.0f));
    SGD opt(0.01, momentum);
    int steps = 0;
    while (std::abs(w.value[0] - 3.0f) > 0.01f && steps < 10000) {
      w.grad[0] = 2.0f * (w.value[0] - 3.0f);
      std::vector<Param*> ps{&w};
      opt.step(ps);
      ++steps;
    }
    return steps;
  };
  EXPECT_LT(solve(0.9), solve(0.0));
}

TEST(Optimizers, AdamMinimizesQuadratic) {
  Param w(Tensor({2}, 5.0f));
  Adam opt(0.05);
  for (int i = 0; i < 500; ++i) {
    w.grad[0] = 2.0f * (w.value[0] - 1.0f);
    w.grad[1] = 2.0f * (w.value[1] + 2.0f);
    std::vector<Param*> ps{&w};
    opt.step(ps);
  }
  EXPECT_NEAR(w.value[0], 1.0f, 0.05);
  EXPECT_NEAR(w.value[1], -2.0f, 0.05);
}

TEST(Optimizers, StepZeroesGradients) {
  Param w(Tensor({1}, 0.0f));
  Adam opt(0.01);
  w.grad[0] = 1.0f;
  std::vector<Param*> ps{&w};
  opt.step(ps);
  EXPECT_EQ(w.grad[0], 0.0f);
}

TEST(Optimizers, Validation) {
  EXPECT_THROW(SGD(0.0), std::invalid_argument);
  EXPECT_THROW(SGD(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(Adam(-1.0), std::invalid_argument);
}

// --- sequential ---------------------------------------------------------------

TEST(Sequential, LearnsXorLikeFunction) {
  // Regression target: y = x0 * x1 on [-1,1]^2 — nonlinear, needs hidden
  // layer.
  util::Rng rng(11);
  Sequential net;
  net.add<Dense>(2, 16, rng);
  net.add<ReLU>();
  net.add<Dense>(16, 1, rng);
  Adam opt(0.01);
  util::Rng data_rng(12);
  double final_loss = 1e9;
  for (int iter = 0; iter < 600; ++iter) {
    Tensor x({32, 2});
    Tensor y({32, 1});
    for (std::size_t i = 0; i < 32; ++i) {
      const float a = static_cast<float>(data_rng.uniform(-1, 1));
      const float b = static_cast<float>(data_rng.uniform(-1, 1));
      x.at(i, 0) = a;
      x.at(i, 1) = b;
      y.at(i, 0) = a * b;
    }
    const Tensor pred = net.forward(x, true);
    auto [loss, grad] = mse_loss(pred, y);
    net.backward(grad);
    opt.step(net.params());
    final_loss = loss;
  }
  EXPECT_LT(final_loss, 0.02);
}

TEST(Sequential, ParamCountMatchesArchitecture) {
  util::Rng rng(13);
  Sequential net;
  net.add<Dense>(10, 5, rng);
  net.add<ReLU>();
  net.add<Dense>(5, 2, rng);
  EXPECT_EQ(net.num_parameters(), 10u * 5 + 5 + 5 * 2 + 2);
  EXPECT_EQ(net.num_layers(), 3u);
}

TEST(Sequential, SaveLoadRoundTrip) {
  util::Rng rng(14);
  Sequential a;
  a.add<Dense>(4, 3, rng);
  a.add<Tanh>();
  a.add<Dense>(3, 2, rng);
  std::stringstream buf;
  a.save_params(buf);

  util::Rng rng2(999);  // different init
  Sequential b;
  b.add<Dense>(4, 3, rng2);
  b.add<Tanh>();
  b.add<Dense>(3, 2, rng2);
  b.load_params(buf);

  util::Rng data_rng(15);
  const Tensor x = Tensor::randn({3, 4}, data_rng, 1.0);
  const Tensor ya = a.forward(x, false);
  const Tensor yb = b.forward(x, false);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(Sequential, LoadRejectsMismatchedCheckpoint) {
  util::Rng rng(16);
  Sequential a;
  a.add<Dense>(4, 3, rng);
  std::stringstream buf;
  a.save_params(buf);
  Sequential b;
  b.add<Dense>(5, 3, rng);
  EXPECT_THROW(b.load_params(buf), std::runtime_error);
}

TEST(Sequential, LoadReportsShapeMismatch) {
  util::Rng rng(17);
  Sequential a;
  a.add<Dense>(4, 3, rng);
  std::stringstream buf;
  a.save_params(buf);
  Sequential b;
  b.add<Dense>(5, 3, rng);
  try {
    b.load_params(buf);
    FAIL() << "mismatched shapes loaded";
  } catch (const ModelLoadError& e) {
    EXPECT_EQ(e.code(), ModelLoadError::Code::ShapeMismatch);
  }
}

TEST(Sequential, LoadReportsLayerCountMismatch) {
  util::Rng rng(18);
  Sequential a;
  a.add<Dense>(4, 3, rng);
  a.add<Tanh>();
  a.add<Dense>(3, 2, rng);
  std::stringstream buf;
  a.save_params(buf);
  Sequential b;
  b.add<Dense>(4, 3, rng);
  try {
    b.load_params(buf);
    FAIL() << "wrong architecture loaded";
  } catch (const ModelLoadError& e) {
    EXPECT_EQ(e.code(), ModelLoadError::Code::LayerCountMismatch);
  }
}

TEST(Sequential, TruncatedStreamLeavesTheTargetUntouched) {
  util::Rng rng(19);
  Sequential a;
  a.add<Dense>(4, 3, rng);
  a.add<Dense>(3, 2, rng);
  std::stringstream buf;
  a.save_params(buf);
  const std::string bytes = buf.str();

  util::Rng rng2(20);
  Sequential b;
  b.add<Dense>(4, 3, rng2);
  b.add<Dense>(3, 2, rng2);
  util::Rng probe_rng(21);
  const Tensor x = Tensor::randn({2, 4}, probe_rng, 1.0);
  const Tensor before = b.forward(x, false);

  std::istringstream cut(bytes.substr(0, bytes.size() / 2));
  try {
    b.load_params(cut);
    FAIL() << "truncated stream loaded";
  } catch (const ModelLoadError& e) {
    EXPECT_EQ(e.code(), ModelLoadError::Code::Truncated);
  }
  // The load is transactional: a failed validation must not have copied
  // any tensor into the target network.
  const Tensor after = b.forward(x, false);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]);
  }
}

TEST(Sequential, LoadRejectsForeignBytes) {
  util::Rng rng(22);
  Sequential b;
  b.add<Dense>(4, 3, rng);
  std::istringstream junk("these are not network parameters");
  try {
    b.load_params(junk);
    FAIL() << "junk loaded";
  } catch (const ModelLoadError& e) {
    EXPECT_EQ(e.code(), ModelLoadError::Code::BadHeader);
  }
}

// --- the six driving models ----------------------------------------------------

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.img_w = 32;
  cfg.img_h = 24;
  cfg.lr = 2e-3;
  return cfg;
}

/// Synthetic steering task: a bright vertical band whose column position
/// encodes the steering label.
std::vector<Sample> synthetic_dataset(std::size_t n, const ModelConfig& cfg,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t col = static_cast<std::size_t>(
        rng.uniform_int(2, static_cast<std::int64_t>(cfg.img_w) - 3));
    camera::Image img(cfg.img_w, cfg.img_h, 0.1f);
    for (std::size_t y = 0; y < cfg.img_h; ++y) {
      for (std::size_t dx = 0; dx < 3; ++dx) {
        img.at(col - 1 + dx, y) = 0.9f;
      }
    }
    Sample s;
    // Sequence models get identical stacked frames; that is fine for a
    // static task.
    for (std::size_t f = 0; f < cfg.seq_len; ++f) s.frames.push_back(img);
    const float steer = static_cast<float>(
        2.0 * static_cast<double>(col) / (cfg.img_w - 1) - 1.0);
    for (std::size_t h = 0; h < cfg.history_len; ++h) {
      s.history.push_back(steer);
      s.history.push_back(0.5f);
    }
    s.steering = steer;
    s.throttle = 0.5f;
    out.push_back(std::move(s));
  }
  return out;
}

TEST(ModelFactory, NamesRoundTrip) {
  for (ModelType t : all_model_types()) {
    EXPECT_EQ(model_type_from_string(to_string(t)), t);
  }
  EXPECT_THROW(model_type_from_string("resnet"), std::invalid_argument);
  EXPECT_EQ(all_model_types().size(), 6u);
}

TEST(ModelFactory, AllSixConstruct) {
  for (ModelType t : all_model_types()) {
    auto m = make_model(t, tiny_config());
    EXPECT_GT(m->num_parameters(), 100u) << m->type_name();
    EXPECT_EQ(m->type(), t);
  }
}

TEST(Models, InferredIsSmallest) {
  const ModelConfig cfg = tiny_config();
  auto inferred = make_model(ModelType::Inferred, cfg);
  for (ModelType t : all_model_types()) {
    if (t == ModelType::Inferred) continue;
    auto other = make_model(t, cfg);
    EXPECT_LT(inferred->num_parameters(), other->num_parameters())
        << to_string(t);
  }
}

TEST(Models, PredictionsInRange) {
  const ModelConfig cfg = tiny_config();
  const auto data = synthetic_dataset(4, cfg, 21);
  for (ModelType t : all_model_types()) {
    auto m = make_model(t, cfg);
    const Prediction p = m->predict(data[0]);
    EXPECT_GE(p.steering, -1.0) << m->type_name();
    EXPECT_LE(p.steering, 1.0) << m->type_name();
    EXPECT_GE(p.throttle, 0.0) << m->type_name();
    EXPECT_LE(p.throttle, 1.0) << m->type_name();
  }
}

class ModelLearningTest : public ::testing::TestWithParam<ModelType> {};

TEST_P(ModelLearningTest, LearnsSyntheticSteering) {
  const ModelConfig cfg = tiny_config();
  auto model = make_model(GetParam(), cfg);
  const auto train = synthetic_dataset(300, cfg, 31);
  const auto val = synthetic_dataset(60, cfg, 32);

  const double mae_before = steering_mae(*model, val);
  TrainOptions opt;
  opt.epochs = 8;
  opt.batch_size = 32;
  const TrainResult result = fit(*model, train, val, opt);
  const double mae_after = steering_mae(*model, val);

  EXPECT_LT(mae_after, mae_before * 0.6) << to_string(GetParam());
  EXPECT_LT(mae_after, 0.25) << to_string(GetParam());
  EXPECT_EQ(result.epochs_run, 8u);
  EXPECT_EQ(result.samples_seen, 300u * 8);
  EXPECT_GT(result.forward_flops, 0u);
  // Loss must broadly decrease.
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
}

INSTANTIATE_TEST_SUITE_P(
    AllSix, ModelLearningTest, ::testing::ValuesIn(all_model_types()),
    [](const ::testing::TestParamInfo<ModelType>& info) {
      std::string name = to_string(info.param);
      if (name == "3d") name = "conv3d";
      return name;
    });

TEST(Models, SaveLoadPreservesPredictions) {
  const ModelConfig cfg = tiny_config();
  const auto data = synthetic_dataset(40, cfg, 41);
  for (ModelType t : all_model_types()) {
    auto m = make_model(t, cfg);
    TrainOptions opt;
    opt.epochs = 1;
    fit(*m, data, {}, opt);
    std::stringstream buf;
    m->save(buf);
    ModelConfig cfg2 = cfg;
    cfg2.seed = 777;  // different init must be fully overwritten by load
    auto m2 = make_model(t, cfg2);
    m2->load(buf);
    for (int i = 0; i < 5; ++i) {
      const Prediction a = m->predict(data[static_cast<std::size_t>(i)]);
      const Prediction b = m2->predict(data[static_cast<std::size_t>(i)]);
      EXPECT_NEAR(a.steering, b.steering, 1e-6) << to_string(t);
      EXPECT_NEAR(a.throttle, b.throttle, 1e-6) << to_string(t);
    }
  }
}

TEST(Trainer, EarlyStoppingStops) {
  // A high learning rate converges fast and then oscillates around the
  // optimum, so validation loss stops improving and patience kicks in.
  ModelConfig cfg = tiny_config();
  cfg.lr = 0.02;
  auto model = make_model(ModelType::Inferred, cfg);
  const auto train = synthetic_dataset(60, cfg, 51);
  TrainOptions opt;
  opt.epochs = 200;
  opt.early_stop_patience = 3;
  const TrainResult r = fit(*model, train, train, opt);
  EXPECT_LT(r.epochs_run, 200u);
}

TEST(Trainer, Validation) {
  const ModelConfig cfg = tiny_config();
  auto model = make_model(ModelType::Linear, cfg);
  TrainOptions opt;
  EXPECT_THROW(fit(*model, {}, {}, opt), std::invalid_argument);
  opt.batch_size = 0;
  const auto data = synthetic_dataset(4, cfg, 61);
  EXPECT_THROW(fit(*model, data, {}, opt), std::invalid_argument);
}

TEST(Trainer, RestoreBestRecoversBestEpochWeights) {
  // Train long with a large learning rate: late epochs oscillate, so the
  // final weights are typically not the best ones. restore_best must put
  // the model back at the best-val-loss epoch.
  ModelConfig cfg = tiny_config();
  cfg.lr = 0.02;
  auto model = make_model(ModelType::Inferred, cfg);
  const auto train = synthetic_dataset(120, cfg, 81);
  const auto val = synthetic_dataset(40, cfg, 82);
  TrainOptions opt;
  opt.epochs = 25;
  opt.restore_best = true;
  const TrainResult r = fit(*model, train, val, opt);
  const double final_val = evaluate_loss(*model, val);
  // The restored model evaluates at (approximately) the recorded best.
  EXPECT_NEAR(final_val, r.best_val_loss, 1e-6);
}

TEST(Trainer, SaveBestPersistsBestModelSeparatelyFromLatest) {
  // Same oscillating regime as the restore_best test: validation improves
  // early, then regresses, so <key>.best must hold an older (better) model
  // than the final weights.
  ModelConfig cfg = tiny_config();
  cfg.lr = 0.02;
  auto model = make_model(ModelType::Inferred, cfg);
  const auto train = synthetic_dataset(120, cfg, 81);
  const auto val = synthetic_dataset(40, cfg, 82);

  objectstore::ObjectStore os;
  ckpt::CheckpointStore store(os);
  TrainOptions opt;
  opt.epochs = 25;
  opt.save_best = true;
  opt.checkpoint_store = &store;
  opt.checkpoint_key = "t";
  const TrainResult r = fit(*model, train, val, opt);

  // The run must actually regress after its best epoch, or this test
  // proves nothing.
  ASSERT_GT(r.history.back().val_loss, r.best_val_loss);

  const auto best = store.load_latest("t.best");
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->generation.info.note, "best-model");
  EXPECT_NEAR(best->generation.info.metrics.at("val_loss"), r.best_val_loss,
              1e-9);

  // The persisted best is a loadable model whose val loss is the recorded
  // best — not the regressed final weights.
  auto reloaded = make_model(ModelType::Inferred, cfg);
  std::istringstream is(best->payload);
  reloaded->load(is);
  EXPECT_NEAR(evaluate_loss(*reloaded, val), r.best_val_loss, 1e-6);
  EXPECT_GT(evaluate_loss(*model, val), r.best_val_loss);

  // And it is distinct from the latest full-trainer checkpoint.
  const auto latest = store.load_latest("t");
  ASSERT_TRUE(latest.has_value());
  EXPECT_NE(latest->payload, best->payload);
  EXPECT_EQ(latest->generation.info.note, "ml.trainer");
}

TEST(Trainer, EvaluateLossEmptyDataIsZero) {
  const ModelConfig cfg = tiny_config();
  auto model = make_model(ModelType::Linear, cfg);
  EXPECT_EQ(evaluate_loss(*model, {}), 0.0);
  EXPECT_EQ(steering_mae(*model, {}), 0.0);
}

TEST(Models, InferredThrottlePolicyFastWhenStraight) {
  const ModelConfig cfg = tiny_config();
  auto m = make_model(ModelType::Inferred, cfg);
  const auto train = synthetic_dataset(300, cfg, 71);
  TrainOptions opt;
  opt.epochs = 6;
  fit(*m, train, {}, opt);
  // A centered band (steering ~0) should produce higher throttle than an
  // extreme band (steering ~±1).
  const auto data = synthetic_dataset(200, cfg, 72);
  double straight_throttle = 0, corner_throttle = 1;
  for (const Sample& s : data) {
    const Prediction p = m->predict(s);
    if (std::abs(s.steering) < 0.2) {
      straight_throttle = std::max(straight_throttle, p.throttle);
    }
    if (std::abs(s.steering) > 0.8) {
      corner_throttle = std::min(corner_throttle, p.throttle);
    }
  }
  EXPECT_GT(straight_throttle, corner_throttle);
}

}  // namespace
}  // namespace autolearn::ml
