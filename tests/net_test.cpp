#include <gtest/gtest.h>

#include "net/link.hpp"
#include "net/network.hpp"
#include "net/transfer.hpp"
#include "net/tunnel.hpp"
#include "util/event_queue.hpp"

namespace autolearn::net {
namespace {

util::Rng rng() { return util::Rng(1234); }

TEST(LinkSpec, Validation) {
  EXPECT_NO_THROW(LinkSpec{}.validate());
  LinkSpec bad;
  bad.latency_s = -1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = LinkSpec{};
  bad.bandwidth_bps = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = LinkSpec{};
  bad.loss_prob = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = LinkSpec{};
  bad.jitter_s = -0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Link, LatencyWithoutJitterIsDeterministic) {
  Link l(LinkSpec{0.01, 0.0, 1e6, 0.0});
  auto r = rng();
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(l.sample_latency(r), 0.01);
}

TEST(Link, JitterStaysNonNegative) {
  Link l(LinkSpec{0.001, 0.01, 1e6, 0.0});
  auto r = rng();
  for (int i = 0; i < 1000; ++i) EXPECT_GE(l.sample_latency(r), 0.0);
}

TEST(Link, TransferTimeScalesWithBytes) {
  Link l(LinkSpec{0.0, 0.0, 1e6, 0.0});
  auto r = rng();
  EXPECT_NEAR(l.transfer_time(1'000'000, r), 1.0, 1e-9);
  EXPECT_NEAR(l.transfer_time(500'000, r), 0.5, 1e-9);
}

TEST(Link, DropsFollowLossProb) {
  Link never(LinkSpec{0, 0, 1e6, 0.0});
  Link always(LinkSpec{0, 0, 1e6, 1.0});
  auto r = rng();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(never.drops(r));
    EXPECT_TRUE(always.drops(r));
  }
}

TEST(Link, ProfilesAreOrderedByLatency) {
  EXPECT_LT(Link::datacenter().latency_s, Link::edge_wifi().latency_s);
  EXPECT_LT(Link::edge_wifi().latency_s, Link::campus_to_cloud().latency_s);
  EXPECT_DOUBLE_EQ(Link::fabric_managed(0.05).latency_s, 0.05);
}

TEST(Network, AddHostIdempotent) {
  Network n;
  n.add_host("a");
  n.add_host("a");
  EXPECT_TRUE(n.has_host("a"));
  EXPECT_EQ(n.hosts().size(), 1u);
  EXPECT_THROW(n.add_host(""), std::invalid_argument);
}

TEST(Network, LinkRequiresHosts) {
  Network n;
  n.add_host("a");
  EXPECT_THROW(n.add_link("a", "b", LinkSpec{}), std::invalid_argument);
  EXPECT_THROW(n.add_link("a", "a", LinkSpec{}), std::invalid_argument);
}

TEST(Network, DirectRoute) {
  Network n;
  n.add_host("a");
  n.add_host("b");
  n.add_duplex("a", "b", LinkSpec{0.01, 0, 1e6, 0});
  const auto r = n.route("a", "b");
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "b"}));
}

TEST(Network, RouteToSelf) {
  Network n;
  n.add_host("a");
  const auto r = n.route("a", "a");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->size(), 1u);
  auto g = rng();
  EXPECT_DOUBLE_EQ(n.sample_latency("a", "a", g), 0.0);
}

TEST(Network, MultiHopRouteFound) {
  Network n;
  for (const char* h : {"car", "gw", "cloud"}) n.add_host(h);
  n.add_duplex("car", "gw", Link::edge_wifi());
  n.add_duplex("gw", "cloud", Link::campus_to_cloud());
  const auto r = n.route("car", "cloud");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->size(), 3u);
  EXPECT_NEAR(n.base_latency("car", "cloud"), 0.025, 1e-9);
}

TEST(Network, UnreachableIsEmpty) {
  Network n;
  n.add_host("a");
  n.add_host("b");
  EXPECT_FALSE(n.route("a", "b"));
  auto g = rng();
  EXPECT_THROW(n.sample_latency("a", "b", g), std::runtime_error);
}

TEST(Network, FewestHopsPreferred) {
  Network n;
  for (const char* h : {"a", "b", "c", "d"}) n.add_host(h);
  // a->d direct (slow) vs a->b->c->d (each fast).
  n.add_link("a", "d", LinkSpec{0.5, 0, 1e6, 0});
  n.add_link("a", "b", LinkSpec{0.001, 0, 1e6, 0});
  n.add_link("b", "c", LinkSpec{0.001, 0, 1e6, 0});
  n.add_link("c", "d", LinkSpec{0.001, 0, 1e6, 0});
  const auto r = n.route("a", "d");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->size(), 2u);  // fewest hops wins even though slower
}

TEST(Network, TieBrokenByLatency) {
  Network n;
  for (const char* h : {"a", "b1", "b2", "c"}) n.add_host(h);
  n.add_link("a", "b1", LinkSpec{0.010, 0, 1e6, 0});
  n.add_link("b1", "c", LinkSpec{0.010, 0, 1e6, 0});
  n.add_link("a", "b2", LinkSpec{0.001, 0, 1e6, 0});
  n.add_link("b2", "c", LinkSpec{0.001, 0, 1e6, 0});
  const auto r = n.route("a", "c");
  ASSERT_TRUE(r);
  EXPECT_EQ((*r)[1], "b2");
}

TEST(Network, RttIsForwardPlusReverse) {
  Network n;
  n.add_host("a");
  n.add_host("b");
  n.add_link("a", "b", LinkSpec{0.010, 0, 1e6, 0});
  n.add_link("b", "a", LinkSpec{0.030, 0, 1e6, 0});
  auto g = rng();
  EXPECT_NEAR(n.sample_rtt("a", "b", g), 0.040, 1e-9);
}

TEST(Network, TransferTimeUsesBottleneckBandwidth) {
  Network n;
  for (const char* h : {"a", "b", "c"}) n.add_host(h);
  n.add_link("a", "b", LinkSpec{0.0, 0, 10e6, 0});
  n.add_link("b", "c", LinkSpec{0.0, 0, 1e6, 0});
  auto g = rng();
  EXPECT_NEAR(n.transfer_time("a", "c", 1'000'000, g), 1.0, 1e-9);
}

TEST(TransferManager, CompletesAndReportsDuration) {
  Network n;
  n.add_host("pi");
  n.add_host("gpu");
  n.add_duplex("pi", "gpu", LinkSpec{0.01, 0, 1e6, 0});
  util::EventQueue q;
  TransferManager tm(n, q, rng());
  bool done = false;
  const auto id = tm.start("pi", "gpu", 2'000'000,
                           [&](const TransferResult& r) {
                             done = true;
                             EXPECT_EQ(r.status, TransferStatus::Done);
                             EXPECT_NEAR(r.duration(), 2.01, 1e-6);
                           });
  EXPECT_EQ(tm.in_flight(), 1u);
  q.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(tm.in_flight(), 0u);
  EXPECT_EQ(tm.completed(), 1u);
  EXPECT_EQ(tm.result(id).attempts, 1);
}

TEST(TransferManager, RetriesOnLossyLink) {
  Network n;
  n.add_host("a");
  n.add_host("b");
  n.add_duplex("a", "b", LinkSpec{0.001, 0, 1e6, 0.4});
  util::EventQueue q;
  TransferManager tm(n, q, rng(), /*max_retries=*/50);
  int completions = 0;
  for (int i = 0; i < 20; ++i) {
    tm.start("a", "b", 1000, [&](const TransferResult& r) {
      EXPECT_EQ(r.status, TransferStatus::Done);
      ++completions;
    });
  }
  q.run();
  EXPECT_EQ(completions, 20);
  EXPECT_EQ(tm.failed(), 0u);
}

TEST(TransferManager, FailsAfterRetriesExhausted) {
  Network n;
  n.add_host("a");
  n.add_host("b");
  n.add_duplex("a", "b", LinkSpec{0.001, 0, 1e6, 1.0});  // always drops
  util::EventQueue q;
  TransferManager tm(n, q, rng(), /*max_retries=*/2);
  TransferStatus status = TransferStatus::InFlight;
  int attempts = 0;
  tm.start("a", "b", 1000, [&](const TransferResult& r) {
    status = r.status;
    attempts = r.attempts;
  });
  q.run();
  EXPECT_EQ(status, TransferStatus::Failed);
  EXPECT_EQ(attempts, 3);  // initial + 2 retries
  EXPECT_EQ(tm.failed(), 1u);
}

TEST(TransferManager, UnknownIdThrows) {
  Network n;
  util::EventQueue q;
  TransferManager tm(n, q, rng());
  EXPECT_THROW(tm.result(99), std::invalid_argument);
}

TEST(TransferManager, NoRouteThrowsImmediately) {
  Network n;
  n.add_host("a");
  n.add_host("b");
  util::EventQueue q;
  TransferManager tm(n, q, rng());
  EXPECT_THROW(tm.start("a", "b", 10), std::runtime_error);
}

TEST(TransferManager, ConcurrentTransfersIndependent) {
  Network n;
  n.add_host("a");
  n.add_host("b");
  n.add_duplex("a", "b", LinkSpec{0.0, 0, 1e6, 0});
  util::EventQueue q;
  TransferManager tm(n, q, rng());
  std::vector<double> finish_times;
  tm.start("a", "b", 1'000'000,
           [&](const TransferResult& r) { finish_times.push_back(r.finished_at); });
  tm.start("a", "b", 3'000'000,
           [&](const TransferResult& r) { finish_times.push_back(r.finished_at); });
  q.run();
  ASSERT_EQ(finish_times.size(), 2u);
  EXPECT_NEAR(finish_times[0], 1.0, 1e-9);
  EXPECT_NEAR(finish_times[1], 3.0, 1e-9);
}

// --- fault overlays ---------------------------------------------------------

TEST(Network, UnreachableErrorCarriesEndpoints) {
  Network n;
  n.add_host("a");
  n.add_host("b");
  auto g = rng();
  try {
    n.sample_latency("a", "b", g);
    FAIL() << "expected UnreachableError";
  } catch (const UnreachableError& e) {
    EXPECT_EQ(e.from(), "a");
    EXPECT_EQ(e.to(), "b");
    EXPECT_NE(std::string(e.what()).find("a"), std::string::npos);
  }
}

TEST(Network, LinkFaultValidation) {
  EXPECT_NO_THROW(LinkFault{}.validate());
  LinkFault bad;
  bad.latency_mult = 0.5;  // faults cannot speed a link up
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = LinkFault{};
  bad.loss_add = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = LinkFault{};
  bad.bandwidth_mult = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = LinkFault{};
  bad.bandwidth_mult = 2.0;  // nor widen it
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Network, DegradeLinkScalesLatencyAndBandwidth) {
  Network n;
  n.add_host("a");
  n.add_host("b");
  n.add_duplex("a", "b", LinkSpec{0.01, 0, 1e6, 0});
  LinkFault fault;
  fault.latency_mult = 3.0;
  fault.bandwidth_mult = 0.5;
  n.degrade_duplex("a", "b", fault);
  EXPECT_NEAR(n.base_latency("a", "b"), 0.03, 1e-9);
  auto g = rng();
  // 1 MB at 0.5 MB/s effective plus the inflated latency.
  EXPECT_NEAR(n.transfer_time("a", "b", 1'000'000, g), 2.03, 1e-9);
  n.clear_degradation_duplex("a", "b");
  EXPECT_NEAR(n.base_latency("a", "b"), 0.01, 1e-9);
}

TEST(Network, DegradeLinkAddsLoss) {
  Network n;
  n.add_host("a");
  n.add_host("b");
  n.add_duplex("a", "b", LinkSpec{0.001, 0, 1e6, 0});  // lossless
  auto g = rng();
  EXPECT_FALSE(n.drops("a", "b", g));
  LinkFault fault;
  fault.loss_add = 1.0;
  n.degrade_link("a", "b", fault);
  EXPECT_TRUE(n.drops("a", "b", g));
  EXPECT_FALSE(n.drops("b", "a", g));  // one direction only
  n.clear_degradation("a", "b");
  EXPECT_FALSE(n.drops("a", "b", g));
}

TEST(Network, DegradeUnknownLinkThrows) {
  Network n;
  n.add_host("a");
  n.add_host("b");
  EXPECT_THROW(n.degrade_link("a", "b", LinkFault{}), std::invalid_argument);
}

TEST(Network, PartitionedHostVanishesFromRouting) {
  Network n;
  for (const char* h : {"car", "gw", "cloud"}) n.add_host(h);
  n.add_duplex("car", "gw", Link::edge_wifi());
  n.add_duplex("gw", "cloud", Link::campus_to_cloud());
  ASSERT_TRUE(n.route("car", "cloud"));

  n.partition_host("gw");  // intermediate hop goes dark
  EXPECT_TRUE(n.partitioned("gw"));
  EXPECT_FALSE(n.route("car", "cloud"));
  n.heal_host("gw");
  EXPECT_TRUE(n.route("car", "cloud"));

  n.partition_host("cloud");  // endpoint goes dark
  EXPECT_FALSE(n.route("car", "cloud"));
  EXPECT_TRUE(n.route("car", "gw"));
  n.heal_host("cloud");
  EXPECT_TRUE(n.route("car", "cloud"));
  EXPECT_THROW(n.partition_host("ghost"), std::invalid_argument);
}

TEST(TransferManager, RecordsAttemptStartTimes) {
  Network n;
  n.add_host("a");
  n.add_host("b");
  n.add_duplex("a", "b", LinkSpec{0.001, 0, 1e6, 1.0});  // always drops
  util::EventQueue q;
  fault::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_s = 1.0;
  policy.multiplier = 2.0;
  policy.jitter = fault::RetryPolicy::Jitter::None;
  TransferManager tm(n, q, rng(), policy);
  const auto id = tm.start("a", "b", 1000);
  q.run();
  const TransferResult& r = tm.result(id);
  ASSERT_EQ(r.attempt_starts.size(), 3u);
  EXPECT_DOUBLE_EQ(r.attempt_starts[0], 0.0);
  // Gap = wasted half-transfer + deterministic backoff (1 s then 2 s).
  EXPECT_GT(r.attempt_starts[1] - r.attempt_starts[0], 1.0);
  EXPECT_GT(r.attempt_starts[2] - r.attempt_starts[1], 2.0);
}

TEST(TransferManager, NegativeRetriesThrows) {
  Network n;
  util::EventQueue q;
  EXPECT_THROW(TransferManager(n, q, rng(), /*max_retries=*/-1),
               std::invalid_argument);
}

TEST(TransferManager, LegacyCounterCtorMapsToImmediatePolicy) {
  // max_retries = 2 extra tries after the first attempt, back-to-back.
  Network n;
  util::EventQueue q;
  TransferManager tm(n, q, rng(), /*max_retries=*/2);
  EXPECT_EQ(tm.policy().max_attempts, 3);
  EXPECT_EQ(tm.policy().jitter, fault::RetryPolicy::Jitter::None);
  EXPECT_DOUBLE_EQ(tm.policy().base_delay_s, 0.0);
  EXPECT_DOUBLE_EQ(tm.policy().max_delay_s, 0.0);
}

TEST(SshTunnel, OpenHandshakeTakesThreeRtts) {
  Network n;
  n.add_host("laptop");
  n.add_host("pi");
  n.add_duplex("laptop", "pi", LinkSpec{0.01, 0, 1e6, 0});
  util::EventQueue q;
  SshTunnel tunnel(n, q, rng(), "laptop", "pi", 8888);
  EXPECT_EQ(tunnel.state(), TunnelState::Closed);
  bool open = false;
  tunnel.open([&] { open = true; });
  EXPECT_EQ(tunnel.state(), TunnelState::Opening);
  q.run();
  EXPECT_TRUE(open);
  EXPECT_EQ(tunnel.state(), TunnelState::Open);
  EXPECT_NEAR(tunnel.opened_at(), 3 * 0.02, 1e-9);  // 3 x RTT(20 ms)
  EXPECT_EQ(tunnel.remote_port(), 8888);
}

TEST(SshTunnel, RequestModelsRoundTrip) {
  Network n;
  n.add_host("laptop");
  n.add_host("pi");
  n.add_duplex("laptop", "pi", LinkSpec{0.005, 0, 1e6, 0});
  util::EventQueue q;
  SshTunnel tunnel(n, q, rng(), "laptop", "pi");
  tunnel.open();
  q.run();
  bool done = false;
  // 1 KB request, 1 MB notebook page back.
  const double d = tunnel.request(1000, 1'000'000, [&] { done = true; });
  EXPECT_NEAR(d, 0.005 + 0.001 + 0.005 + 1.0, 1e-9);
  q.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(tunnel.requests_served(), 1u);
}

TEST(SshTunnel, LifecycleErrors) {
  Network n;
  n.add_host("a");
  n.add_host("b");
  util::EventQueue q;
  SshTunnel unrouted(n, q, rng(), "a", "b");
  EXPECT_THROW(unrouted.open(), std::runtime_error);  // no route

  n.add_duplex("a", "b", LinkSpec{0.001, 0, 1e6, 0});
  SshTunnel tunnel(n, q, rng(), "a", "b");
  EXPECT_THROW(tunnel.request(1, 1), std::logic_error);  // not open
  tunnel.open();
  EXPECT_THROW(tunnel.open(), std::logic_error);  // already opening
  q.run();
  EXPECT_EQ(tunnel.state(), TunnelState::Open);
  EXPECT_THROW(SshTunnel(n, q, rng(), "a", "b", 0), std::invalid_argument);
}

TEST(SshTunnel, BreakAndReopen) {
  Network n;
  n.add_host("a");
  n.add_host("b");
  n.add_duplex("a", "b", LinkSpec{0.001, 0, 1e6, 0});
  util::EventQueue q;
  SshTunnel tunnel(n, q, rng(), "a", "b");
  tunnel.open();
  q.run();
  tunnel.break_tunnel();
  EXPECT_EQ(tunnel.state(), TunnelState::Broken);
  EXPECT_THROW(tunnel.request(1, 1), std::logic_error);
  tunnel.close();
  bool reopened = false;
  tunnel.open([&] { reopened = true; });
  q.run();
  EXPECT_TRUE(reopened);
}

TEST(SshTunnel, LossyLinkResetsConnection) {
  Network n;
  n.add_host("a");
  n.add_host("b");
  n.add_duplex("a", "b", LinkSpec{0.001, 0, 1e6, 1.0});  // always drops
  util::EventQueue q;
  SshTunnel tunnel(n, q, rng(), "a", "b");
  tunnel.open();
  q.run();
  ASSERT_EQ(tunnel.state(), TunnelState::Open);
  EXPECT_THROW(tunnel.request(100, 100), std::runtime_error);
  EXPECT_EQ(tunnel.state(), TunnelState::Broken);
}

}  // namespace
}  // namespace autolearn::net
