#include "objectstore/objectstore.hpp"

#include <gtest/gtest.h>

namespace autolearn::objectstore {
namespace {

TEST(ObjectStore, ContainerLifecycle) {
  ObjectStore store;
  store.create_container("datasets");
  EXPECT_TRUE(store.has_container("datasets"));
  EXPECT_FALSE(store.has_container("models"));
  EXPECT_EQ(store.containers().size(), 1u);
  EXPECT_THROW(store.create_container("datasets"), std::invalid_argument);
  EXPECT_THROW(store.create_container(""), std::invalid_argument);
}

TEST(ObjectStore, PutGetRoundTrip) {
  ObjectStore store;
  store.create_container("models");
  const auto v = store.put_text("models", "linear.bin", "weights",
                                {{"model", "linear"}});
  EXPECT_EQ(v, 1u);
  const auto obj = store.get("models", "linear.bin");
  ASSERT_TRUE(obj);
  EXPECT_EQ(std::string(obj->bytes.begin(), obj->bytes.end()), "weights");
  EXPECT_EQ(obj->metadata.at("model"), "linear");
  EXPECT_EQ(store.get_text("models", "linear.bin"), "weights");
}

TEST(ObjectStore, VersioningKeepsHistory) {
  ObjectStore store;
  store.create_container("c");
  EXPECT_EQ(store.put_text("c", "o", "v1"), 1u);
  EXPECT_EQ(store.put_text("c", "o", "v2"), 2u);
  EXPECT_EQ(store.put_text("c", "o", "v3"), 3u);
  EXPECT_EQ(store.get_text("c", "o"), "v3");
  const auto old = store.get_version("c", "o", 1);
  ASSERT_TRUE(old);
  EXPECT_EQ(std::string(old->bytes.begin(), old->bytes.end()), "v1");
  EXPECT_FALSE(store.get_version("c", "o", 9).has_value());
}

TEST(ObjectStore, MissingObjects) {
  ObjectStore store;
  store.create_container("c");
  EXPECT_FALSE(store.get("c", "nope").has_value());
  EXPECT_THROW(store.get_text("c", "nope"), std::invalid_argument);
  EXPECT_THROW(store.get("ghost", "o"), std::invalid_argument);
  EXPECT_THROW(store.put_text("ghost", "o", "x"), std::invalid_argument);
  EXPECT_THROW(store.put_text("c", "", "x"), std::invalid_argument);
}

TEST(ObjectStore, ListReportsLatest) {
  ObjectStore store;
  store.create_container("c");
  store.put_text("c", "a", "1");
  store.put_text("c", "a", "22");
  store.put_text("c", "b", "333");
  const auto listing = store.list("c");
  ASSERT_EQ(listing.size(), 2u);
  EXPECT_EQ(listing[0].name, "a");
  EXPECT_EQ(listing[0].latest_version, 2u);
  EXPECT_EQ(listing[0].size_bytes, 2u);
  EXPECT_EQ(listing[1].size_bytes, 3u);
  EXPECT_EQ(store.container_bytes("c"), 5u);
}

TEST(ObjectStore, Remove) {
  ObjectStore store;
  store.create_container("c");
  store.put_text("c", "o", "x");
  EXPECT_TRUE(store.remove("c", "o"));
  EXPECT_FALSE(store.remove("c", "o"));
  EXPECT_FALSE(store.get("c", "o").has_value());
}

TEST(ObjectStore, BinaryPayloadPreserved) {
  ObjectStore store;
  store.create_container("c");
  std::vector<std::uint8_t> payload{0, 255, 128, 7, 0, 3};
  store.put("c", "bin", payload);
  const auto obj = store.get("c", "bin");
  ASSERT_TRUE(obj);
  EXPECT_EQ(obj->bytes, payload);
}

}  // namespace
}  // namespace autolearn::objectstore
