// Unit tests for the observability spine: metric primitives, the span
// tracer, and the Chrome trace_event export contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/event_queue.hpp"
#include "util/json.hpp"

namespace autolearn {
namespace {

// --- metrics ---------------------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  obs::MetricsRegistry reg;
  reg.counter("a.b").inc();
  reg.counter("a.b").inc(4);
  reg.gauge("g").set(2.5);
  reg.gauge("g").add(-0.5);
  EXPECT_EQ(reg.counter_value("a.b"), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 2.0);
  // Accessors do not create.
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  EXPECT_EQ(reg.counters().size(), 1u);
}

TEST(Metrics, HistogramBucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 2.0});
  h.observe(1.0);   // lands in the first bucket (inclusive upper edge)
  h.observe(1.5);   // second bucket
  h.observe(2.0);   // second bucket
  h.observe(99.0);  // overflow
  ASSERT_EQ(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 99.0);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Metrics, RegistrySnapshotIsOrderedAndStable) {
  obs::MetricsRegistry reg;
  reg.counter("z.last").inc();
  reg.counter("a.first").inc(2);
  reg.histogram("lat", {0.1, 1.0}).observe(0.05);
  const util::Json j = reg.to_json();
  const auto& counters = j.at("counters").as_object();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a.first");  // map order, not insertion order
  EXPECT_EQ(counters[1].first, "z.last");
  // Two identical registries dump identical bytes.
  obs::MetricsRegistry reg2;
  reg2.counter("z.last").inc();
  reg2.counter("a.first").inc(2);
  reg2.histogram("lat", {0.1, 1.0}).observe(0.05);
  EXPECT_EQ(reg.to_json().dump(), reg2.to_json().dump());
  EXPECT_EQ(reg.summary(), reg2.summary());
  reg.clear();
  EXPECT_TRUE(reg.counters().empty());
}

TEST(Metrics, HistogramReuseIgnoresLaterBounds) {
  obs::MetricsRegistry reg;
  reg.histogram("h", {1.0}).observe(0.5);
  // Second lookup with different bounds reuses the existing shape.
  EXPECT_EQ(reg.histogram("h", {5.0, 6.0}).bounds().size(), 1u);
}

// --- tracer ----------------------------------------------------------------

TEST(Trace, NestedSpansCloseInOrder) {
  obs::Tracer tracer;  // logical clock
  const auto outer = tracer.begin("outer", "t");
  const auto inner = tracer.begin("inner", "t");
  tracer.end(inner);
  tracer.end(outer);
  ASSERT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.events()[0].name, "inner");
  EXPECT_EQ(tracer.events()[1].name, "outer");
  // Logical clock: outer opened first, so it starts earlier and lasts
  // longer than the nested span.
  EXPECT_LT(tracer.events()[1].ts, tracer.events()[0].ts);
  EXPECT_GT(tracer.events()[1].dur, tracer.events()[0].dur);
  EXPECT_THROW(tracer.end(999), std::logic_error);
}

TEST(Trace, SimulationClockStampsVirtualTime) {
  util::EventQueue queue;
  obs::Tracer tracer;
  tracer.use_clock([&queue] { return queue.now(); });
  const auto span = tracer.begin("work", "sim");
  queue.schedule_at(3.5, [] {});
  queue.run();
  tracer.end(span);
  tracer.instant("mark", "sim");
  ASSERT_EQ(tracer.size(), 2u);
  EXPECT_DOUBLE_EQ(tracer.events()[0].ts, 0.0);
  EXPECT_DOUBLE_EQ(tracer.events()[0].dur, 3.5);
  EXPECT_DOUBLE_EQ(tracer.events()[1].ts, 3.5);
}

TEST(Trace, MutedTracerRecordsNothing) {
  obs::Tracer tracer;
  tracer.set_enabled(false);
  const auto token = tracer.begin("x", "t");
  EXPECT_EQ(token, 0u);
  tracer.end(token);  // no-op, does not throw
  tracer.instant("y", "t");
  tracer.complete("z", "t", 0.0, 1.0);
  EXPECT_EQ(tracer.size(), 0u);
  {
    obs::SpanGuard guard(&tracer, "scoped", "t");
  }
  EXPECT_EQ(tracer.size(), 0u);
  {
    obs::SpanGuard null_guard(nullptr, "scoped", "t");  // the disabled path
  }
}

TEST(Trace, SpanGuardEmitsOneCompleteEvent) {
  obs::Tracer tracer;
  {
    obs::SpanGuard guard(&tracer, "scoped", "cat");
  }
#ifndef AUTOLEARN_OBS_DISABLED
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.events()[0].name, "scoped");
  EXPECT_EQ(tracer.events()[0].ph, 'X');
#else
  EXPECT_EQ(tracer.size(), 0u);
#endif
}

TEST(Trace, ExportIsValidChromeTraceEventJson) {
  obs::Tracer tracer;
  const auto span = tracer.begin("span", "net");
  tracer.end(span);
  util::Json args = util::Json::object();
  args.set("k", util::Json("v"));
  tracer.instant("fault", "chaos", std::move(args));

  // The canonical dump parses back through util::Json and carries the
  // trace_event required fields.
  const util::Json parsed = util::Json::parse(tracer.dump());
  const auto& events = parsed.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  for (const util::Json& e : events) {
    EXPECT_TRUE(e.contains("name"));
    EXPECT_TRUE(e.contains("cat"));
    EXPECT_TRUE(e.contains("ph"));
    EXPECT_TRUE(e.contains("ts"));
    EXPECT_TRUE(e.contains("pid"));
    EXPECT_TRUE(e.contains("tid"));
  }
  EXPECT_EQ(events[0].at("ph").as_string(), "X");
  EXPECT_TRUE(events[0].contains("dur"));
  EXPECT_EQ(events[1].at("ph").as_string(), "i");
  EXPECT_EQ(events[1].at("s").as_string(), "g");
  EXPECT_EQ(events[1].at("args").at("k").as_string(), "v");

  // Microsecond export: the second event was stamped at logical tick 2.
  EXPECT_DOUBLE_EQ(events[1].at("ts").as_number(), 2e6);
}

TEST(Trace, WriteFileRoundTrips) {
  namespace fs = std::filesystem;
  obs::Tracer tracer;
  tracer.instant("mark", "t");
  const fs::path path = fs::temp_directory_path() / "autolearn_obs_test.json";
  tracer.write_file(path.string());
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), tracer.dump());
  fs::remove(path);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

}  // namespace
}  // namespace autolearn
