// Golden-trace regression harness (ctest -L trace).
//
// The simulation is seed-deterministic, so the canonical trace exported by
// obs::Tracer is a *behavioral fingerprint*: any change to retry timing,
// container lifecycle, chaos scheduling, or the control loop shifts a span
// and the bytes stop matching. GoldenTrace pins a small continuum scenario
// against tests/golden/; the determinism tests re-run scenarios twice and
// require byte-identical traces (and different bytes for different seeds).
//
// Regenerate the snapshot after an *intended* behavioral change with:
//   AUTOLEARN_REGEN_GOLDEN=1 ./obs_trace_test
// and commit the updated tests/golden/ file with the change that moved it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/continuum.hpp"
#include "edge/container.hpp"
#include "edge/registry.hpp"
#include "fault/chaos.hpp"
#include "ml/trainer.hpp"
#include "net/transfer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "track/track.hpp"
#include "util/event_queue.hpp"
#include "util/json.hpp"
#include "workflow/notebook.hpp"

namespace autolearn {
namespace {

#ifndef AUTOLEARN_GOLDEN_DIR
#error "obs_trace_test requires AUTOLEARN_GOLDEN_DIR"
#endif

struct ScenarioOut {
  std::string trace;
  std::string metrics;
  fault::ChaosReport report;
};

/// A small but cross-cutting continuum run, entirely on the virtual clock:
/// an edge device boots, a data upload and an image pull fight a flapping
/// Wi-Fi link (retries + backoff), a second launch lands inside a registry
/// partition (failure + auto-restart), and a notebook runs its cells.
ScenarioOut run_small_continuum(std::uint64_t seed) {
  util::EventQueue queue;
  obs::Tracer tracer;
  tracer.use_clock([&queue] { return queue.now(); });
  obs::MetricsRegistry metrics;

  net::Network net;
  net.add_host("hub");
  net.add_host("campus");
  net.add_host("pi-01");
  net.add_duplex("hub", "campus", net::Link::campus_to_cloud());
  net.add_duplex("campus", "pi-01", net::Link::edge_wifi());

  edge::EdgeRegistry registry(queue);
  registry.register_device("pi-01", "proj");
  registry.flash_device("pi-01");
  registry.boot_device("pi-01");

  edge::ContainerService::Config cfg;
  cfg.auto_restart = true;
  cfg.restart_delay_s = 2.0;
  cfg.max_restarts = 1;
  cfg.pull_retry.base_delay_s = 0.5;
  cfg.pull_retry.max_delay_s = 2.0;
  cfg.pull_retry.max_attempts = 5;
  edge::ContainerService svc(registry, queue, cfg);
  svc.instrument(&tracer, &metrics);
  svc.use_network(net, "hub", util::Rng(seed));

  fault::RetryPolicy upload_policy;
  upload_policy.base_delay_s = 0.5;
  upload_policy.max_delay_s = 2.0;
  upload_policy.max_attempts = 5;
  net::TransferManager uploads(net, queue, util::Rng(seed + 1),
                               upload_policy);
  uploads.instrument(&tracer, &metrics);

  fault::ChaosEngine chaos(queue, seed);
  chaos.instrument(&tracer, &metrics);
  chaos.attach_network(net);
  // Wi-Fi flaps while the pull and the upload are attempting; the hub
  // registry partitions during the second launch.
  chaos.inject({fault::FaultKind::TransferFlap, 42.0, 3.0, "campus", "pi-01"});
  chaos.inject({fault::FaultKind::Partition, 60.0, 5.0, "hub"});

  edge::ContainerSpec spec;
  spec.image = "autolearn/agent:v1";
  spec.image_bytes = 4ull << 20;
  queue.schedule_at(42.5, [&] { svc.launch("pi-01", "proj", spec); });
  queue.schedule_at(43.0, [&] {
    uploads.start("pi-01", "hub", 2ull << 20);
  });
  edge::ContainerSpec spec2 = spec;
  spec2.image = "autolearn/agent:v2";  // distinct image: no pull cache hit
  queue.schedule_at(60.5, [&] { svc.launch("pi-01", "proj", spec2); });

  workflow::Notebook nb("session");
  nb.instrument(&tracer, &metrics);
  nb.add_cell("collect", [] { return std::string("ok"); });
  nb.add_cell("explode", []() -> std::string {
    throw std::runtime_error("boom");
  });
  queue.schedule_at(70.0, [&] { nb.run_all(); });

  queue.run_until(80.0);

  ScenarioOut out;
  out.trace = tracer.dump();
  out.metrics = metrics.to_json().dump();
  out.report = chaos.report();
  return out;
}

std::string golden_path() {
  return std::string(AUTOLEARN_GOLDEN_DIR) + "/continuum_small.trace.json";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- golden snapshot -------------------------------------------------------

TEST(GoldenTrace, SmallContinuumMatchesSnapshot) {
  const ScenarioOut run = run_small_continuum(7);
  if (std::getenv("AUTOLEARN_REGEN_GOLDEN")) {
    std::ofstream out(golden_path(), std::ios::binary);
    out << run.trace;
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  // Byte-identical, not structurally similar: a drifted timestamp means a
  // behavioral change, and an intended one must regenerate the snapshot.
  EXPECT_EQ(run.trace, read_file(golden_path()))
      << "Canonical trace drifted from tests/golden/. If the behavioral "
         "change is intended, run AUTOLEARN_REGEN_GOLDEN=1 ./obs_trace_test "
         "and commit the new snapshot.";
}

TEST(GoldenTrace, ExportIsValidChromeTraceEventFormat) {
  const ScenarioOut run = run_small_continuum(7);
  const util::Json parsed = util::Json::parse(run.trace);
  const auto& events = parsed.at("traceEvents").as_array();
  ASSERT_GT(events.size(), 10u);
  bool saw_span = false;
  bool saw_instant = false;
  for (const util::Json& e : events) {
    ASSERT_TRUE(e.contains("name"));
    ASSERT_TRUE(e.contains("cat"));
    ASSERT_TRUE(e.contains("ts"));
    ASSERT_TRUE(e.contains("pid"));
    ASSERT_TRUE(e.contains("tid"));
    const std::string& ph = e.at("ph").as_string();
    if (ph == "X") {
      saw_span = true;
      ASSERT_TRUE(e.contains("dur"));
      EXPECT_GE(e.at("dur").as_number(), 0.0);
    } else {
      ASSERT_EQ(ph, "i");
      saw_instant = true;
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
}

TEST(GoldenTrace, ScenarioCoversTheSpanCatalog) {
  const ScenarioOut run = run_small_continuum(7);
  for (const char* needle :
       {"net.transfer.attempt", "net.transfer", "edge.container.pull",
        "edge.container.launch", "edge.container.failed",
        "edge.container.restart", "chaos.transfer-flap", "chaos.partition",
        "workflow.cell"}) {
    EXPECT_NE(run.trace.find(needle), std::string::npos)
        << "missing " << needle;
  }
}

// --- determinism harness ---------------------------------------------------

TEST(TraceDeterminism, SameSeedSameBytesDifferentSeedDifferentBytes) {
  const ScenarioOut a = run_small_continuum(7);
  const ScenarioOut b = run_small_continuum(7);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.report, b.report);
  const ScenarioOut c = run_small_continuum(8);
  EXPECT_NE(a.trace, c.trace);
}

struct StudyOut {
  eval::EvalResult result;
  fault::ChaosReport report;
  std::string trace;
};

/// The chaos_study example's random-plan scenario, sized for a test:
/// untrained models (deterministic init), a seeded fault plan, and the
/// Hybrid placement under the circuit breaker, all traced.
StudyOut run_chaos_study(std::uint64_t seed) {
  const track::Track track = track::Track::paper_oval();
  ml::ModelConfig cfg;
  auto cloud_model = ml::make_model(ml::ModelType::Linear, cfg);
  auto edge_model = ml::make_model(ml::ModelType::Inferred, cfg);

  net::Network net;
  net.add_host("car-01");
  net.add_host("campus");
  net.add_host("chi-uc");
  net.add_duplex("car-01", "campus", net::Link::edge_wifi());
  net.add_duplex("campus", "chi-uc", net::Link::campus_to_cloud());

  util::EventQueue queue;
  obs::Tracer tracer;
  tracer.use_clock([&queue] { return queue.now(); });
  obs::MetricsRegistry metrics;

  fault::ChaosEngine engine(queue, seed);
  engine.instrument(&tracer, &metrics);
  engine.attach_network(net);
  fault::RandomPlanOptions popt;
  popt.horizon_s = 16.0;
  popt.faults = 3;
  popt.mean_duration_s = 3.0;
  popt.partition_host = "chi-uc";
  popt.link_from = "car-01";
  popt.link_to = "campus";
  engine.inject_plan(engine.random_plan(popt));

  core::ContinuumOptions copt;
  copt.network_rtt_s = 0.08;
  copt.rtt_jitter_s = 0.0;
  copt.breaker.failure_threshold = 2;
  copt.breaker.open_duration_s = 0.5;
  copt.cloud_probe = [&net](double) {
    return net.route("car-01", "chi-uc").has_value();
  };
  copt.tracer = &tracer;
  copt.metrics = &metrics;

  eval::EvalOptions eopt;
  eopt.duration_s = 16.0;
  eopt.seed = seed;
  eopt.chaos_queue = &queue;

  StudyOut out;
  out.result = core::evaluate_placement(track, *cloud_model, *edge_model,
                                        core::Placement::Hybrid, copt, eopt);
  out.report = engine.report();
  out.trace = tracer.dump();
  return out;
}

TEST(TraceDeterminism, ChaosStudyScenarioReproducesFromSeed) {
  const StudyOut a = run_chaos_study(21);
  const StudyOut b = run_chaos_study(21);
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_DOUBLE_EQ(a.result.distance_m, b.result.distance_m);
  EXPECT_EQ(a.result.errors, b.result.errors);
  EXPECT_EQ(a.result.degradation.failovers, b.result.degradation.failovers);

  const StudyOut c = run_chaos_study(22);
  EXPECT_NE(a.trace, c.trace);
  // The trace carries the control loop and the breaker's view of the plan.
  EXPECT_NE(a.trace.find("eval.tick"), std::string::npos);
  EXPECT_NE(a.trace.find("eval.run"), std::string::npos);
}

TEST(TraceDeterminism, MlFitTraceIsSeedDeterministic) {
  // ml::fit runs off the simulated clock; the tracer's logical tick
  // fallback keeps its spans reproducible (wall time never leaks in).
  ml::ModelConfig cfg;
  const auto run_fit = [&] {
    util::Rng rng(11);
    std::vector<ml::Sample> data;
    for (int i = 0; i < 16; ++i) {
      ml::Sample s;
      camera::Image img(cfg.img_w, cfg.img_h,
                        static_cast<float>(rng.uniform(0.0, 1.0)));
      for (std::size_t f = 0; f < cfg.seq_len; ++f) s.frames.push_back(img);
      for (std::size_t h = 0; h < cfg.history_len; ++h) {
        s.history.push_back(0.0f);
        s.history.push_back(0.5f);
      }
      s.steering = static_cast<float>(rng.uniform(-1.0, 1.0));
      s.throttle = 0.5f;
      data.push_back(std::move(s));
    }
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    auto model = ml::make_model(ml::ModelType::Linear, cfg);
    ml::TrainOptions opt;
    opt.epochs = 3;
    opt.tracer = &tracer;
    opt.metrics = &metrics;
    ml::fit(*model, data, {}, opt);
    return tracer.dump() + "\n" + metrics.to_json().dump();
  };
  EXPECT_EQ(run_fit(), run_fit());
  EXPECT_NE(run_fit().find("ml.epoch"), std::string::npos);
}

}  // namespace
}  // namespace autolearn
