// Randomized property tests over module invariants. Each property runs
// across a seed sweep via TEST_P; failures print the seed for replay.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>

#include "data/dataset.hpp"
#include "data/tub.hpp"
#include "data/tubclean.hpp"
#include "net/network.hpp"
#include "testbed/inventory.hpp"
#include "testbed/lease.hpp"
#include "track/track.hpp"
#include "util/rng.hpp"

namespace autolearn {
namespace {

namespace fs = std::filesystem;

class SeededTest : public ::testing::TestWithParam<std::uint64_t> {};

// --- Lease calendar: no node is ever double-booked -------------------------

using LeaseProperty = SeededTest;

TEST_P(LeaseProperty, NoDoubleBookingUnderRandomLoad) {
  const testbed::Inventory inv = testbed::Inventory::chameleon();
  testbed::LeaseManager lm(inv);
  util::Rng rng(GetParam());
  std::vector<std::uint64_t> granted;
  for (int i = 0; i < 200; ++i) {
    testbed::LeaseRequest req;
    req.project_id = "p" + std::to_string(i % 7);
    req.node_type = rng.chance(0.5) ? "gpu_v100" : "gpu_rtx6000";
    req.count = static_cast<std::size_t>(rng.uniform_int(1, 3));
    req.start = rng.uniform(0, 10000);
    req.duration = rng.uniform(100, 4000);
    const auto id = lm.request(req);
    if (id) granted.push_back(*id);
    // Randomly cancel an existing lease now and then.
    if (!granted.empty() && rng.chance(0.15)) {
      const std::size_t k = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(granted.size()) - 1));
      const auto& lease = lm.lease(granted[k]);
      if (lease.status != testbed::LeaseStatus::Cancelled) {
        lm.cancel(granted[k]);
      }
    }
  }
  // Invariant: active (non-cancelled) leases never overlap on a node.
  std::map<std::string, std::vector<std::pair<double, double>>> calendar;
  for (std::uint64_t id : granted) {
    const testbed::Lease& lease = lm.lease(id);
    if (lease.status == testbed::LeaseStatus::Cancelled) continue;
    for (const std::string& node : lease.node_ids) {
      for (const auto& [s, e] : calendar[node]) {
        EXPECT_FALSE(lease.start < e && s < lease.end)
            << "node " << node << " double-booked (seed " << GetParam()
            << ")";
      }
      calendar[node].emplace_back(lease.start, lease.end);
    }
  }
}

TEST_P(LeaseProperty, AvailabilityNeverExceedsInventory) {
  const testbed::Inventory inv = testbed::Inventory::chameleon();
  testbed::LeaseManager lm(inv);
  util::Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    testbed::LeaseRequest req;
    req.project_id = "p";
    req.node_type = "gpu_a100";
    req.count = 1;
    req.start = rng.uniform(0, 5000);
    req.duration = rng.uniform(100, 2000);
    lm.request(req);
    const double t0 = rng.uniform(0, 6000);
    const std::size_t avail = lm.available("gpu_a100", t0, t0 + 500);
    EXPECT_LE(avail, inv.count_of_type("gpu_a100"));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeaseProperty,
                         ::testing::Values(1u, 22u, 333u, 4444u));

// --- Tub: random write/delete round trips -----------------------------------

using TubProperty = SeededTest;

TEST_P(TubProperty, RandomRoundTripPreservesActiveRecords) {
  util::Rng rng(GetParam());
  const fs::path dir = fs::temp_directory_path() /
                       ("autolearn_prop_" + std::to_string(getpid()) + "_" +
                        std::to_string(GetParam()));
  fs::remove_all(dir);
  const auto n =
      static_cast<std::size_t>(rng.uniform_int(5, 60));
  std::vector<float> steering(n);
  {
    data::TubWriter writer(dir, /*records_per_catalog=*/7);
    for (std::size_t i = 0; i < n; ++i) {
      camera::Image img(6, 4, static_cast<float>(rng.uniform(0, 1)));
      steering[i] = static_cast<float>(rng.uniform(-1, 1));
      writer.append(img, steering[i], 0.5f, 1.0f, rng.chance(0.2));
    }
    writer.close();
  }
  data::Tub tub(dir);
  // Randomly delete a subset.
  std::set<std::size_t> deleted;
  std::vector<std::size_t> to_delete;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.3)) {
      to_delete.push_back(i);
      deleted.insert(i);
    }
  }
  tub.mark_deleted(to_delete);

  // Reopen: deleted stay deleted, survivors keep their payload, order is
  // preserved.
  data::Tub reopened(dir);
  const auto records = reopened.read_all();
  EXPECT_EQ(records.size(), n - deleted.size());
  std::size_t prev = 0;
  bool first = true;
  for (const data::TubRecord& r : records) {
    EXPECT_FALSE(deleted.count(r.index));
    EXPECT_FLOAT_EQ(r.steering, steering[r.index]);
    if (!first) {
      EXPECT_GT(r.index, prev);
    }
    prev = r.index;
    first = false;
  }
  fs::remove_all(dir);
}

TEST_P(TubProperty, ExpandSegmentsCoversAllFlagged) {
  util::Rng rng(GetParam());
  const std::size_t total = 200;
  std::vector<std::size_t> flagged;
  for (std::size_t i = 0; i < total; ++i) {
    if (rng.chance(0.1)) flagged.push_back(i);
  }
  const auto margin = static_cast<std::size_t>(rng.uniform_int(0, 5));
  const auto expanded = data::expand_segments(flagged, margin, total);
  std::set<std::size_t> expanded_set(expanded.begin(), expanded.end());
  for (std::size_t f : flagged) {
    EXPECT_TRUE(expanded_set.count(f));
    // The margin around each flag is covered too.
    for (std::size_t d = 1; d <= margin; ++d) {
      if (f >= d) {
        EXPECT_TRUE(expanded_set.count(f - d));
      }
      if (f + d < total) {
        EXPECT_TRUE(expanded_set.count(f + d));
      }
    }
  }
  for (std::size_t i : expanded) EXPECT_LT(i, total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TubProperty,
                         ::testing::Values(7u, 77u, 777u, 7777u));

// --- Network: route properties ------------------------------------------------

using NetworkProperty = SeededTest;

TEST_P(NetworkProperty, RoutesAreConnectedAndAcyclic) {
  util::Rng rng(GetParam());
  net::Network n;
  const int hosts = 12;
  for (int i = 0; i < hosts; ++i) n.add_host("h" + std::to_string(i));
  // A random connected-ish topology: chain + random chords.
  for (int i = 0; i + 1 < hosts; ++i) {
    n.add_duplex("h" + std::to_string(i), "h" + std::to_string(i + 1),
                 net::LinkSpec{rng.uniform(0.001, 0.05), 0, 1e6, 0});
  }
  for (int i = 0; i < 8; ++i) {
    const auto a = rng.uniform_int(0, hosts - 1);
    const auto b = rng.uniform_int(0, hosts - 1);
    if (a == b) continue;
    n.add_duplex("h" + std::to_string(a), "h" + std::to_string(b),
                 net::LinkSpec{rng.uniform(0.001, 0.05), 0, 1e6, 0});
  }
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = rng.uniform_int(0, hosts - 1);
    const auto b = rng.uniform_int(0, hosts - 1);
    const auto route =
        n.route("h" + std::to_string(a), "h" + std::to_string(b));
    ASSERT_TRUE(route);
    // Endpoints correct, no repeated hosts, consecutive hops linked.
    EXPECT_EQ(route->front(), "h" + std::to_string(a));
    EXPECT_EQ(route->back(), "h" + std::to_string(b));
    std::set<std::string> seen(route->begin(), route->end());
    EXPECT_EQ(seen.size(), route->size());
    // Latency along the route is the sum of positive hop latencies.
    if (a != b) {
      EXPECT_GT(n.base_latency("h" + std::to_string(a),
                               "h" + std::to_string(b)),
                0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkProperty,
                         ::testing::Values(3u, 33u, 3333u));

// --- Track: projection/boundary invariants under random queries ---------------

using TrackProperty = SeededTest;

TEST_P(TrackProperty, ProjectionIdempotent) {
  const track::Track t = track::Track::waveshare();
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const track::Vec2 p{rng.uniform(-3, 6), rng.uniform(-3, 6)};
    const track::Projection proj = t.project(p);
    // Projecting the projected point stays put.
    const track::Projection again = t.project(proj.center_point);
    EXPECT_NEAR(std::abs(t.progress_delta(proj.s, again.s)), 0.0, 0.05);
    EXPECT_NEAR(again.lateral, 0.0, 0.03);
    // Lateral distance equals the point-to-centerline distance.
    EXPECT_NEAR(std::abs(proj.lateral),
                track::distance(p, proj.center_point), 0.03);
  }
}

TEST_P(TrackProperty, BoundariesStayOnTrackEdge) {
  const track::Track t = track::Track::paper_oval();
  util::Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const double s = rng.uniform(0, t.length());
    // Points just inside the boundary are on-track; just outside are not.
    const track::Vec2 inside =
        t.position_at(s) +
        track::heading_vec(t.heading_at(s)).perp() * (t.half_width() - 0.03);
    const track::Vec2 outside =
        t.position_at(s) +
        track::heading_vec(t.heading_at(s)).perp() * (t.half_width() + 0.06);
    EXPECT_TRUE(t.project(inside).on_track) << "s=" << s;
    EXPECT_FALSE(t.project(outside).on_track) << "s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackProperty,
                         ::testing::Values(5u, 55u, 5555u));

}  // namespace
}  // namespace autolearn
