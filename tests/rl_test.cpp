#include "rl/qlearning.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "track/track.hpp"

namespace autolearn::rl {
namespace {

QConfig fast_config() {
  QConfig cfg;
  cfg.episodes = 60;
  cfg.episode_s = 15.0;
  return cfg;
}

TEST(QLearning, ConfigValidation) {
  const track::Track t = track::Track::paper_oval();
  QConfig bad;
  bad.actions = 1;
  EXPECT_THROW(QLearningPilot(t, bad, util::Rng(1)), std::invalid_argument);
  bad = QConfig{};
  bad.alpha = 0;
  EXPECT_THROW(QLearningPilot(t, bad, util::Rng(1)), std::invalid_argument);
  bad = QConfig{};
  bad.gamma = 1.0;
  EXPECT_THROW(QLearningPilot(t, bad, util::Rng(1)), std::invalid_argument);
}

TEST(QLearning, StateSpaceSizedByBins) {
  const track::Track t = track::Track::paper_oval();
  QConfig cfg = fast_config();
  QLearningPilot pilot(t, cfg, util::Rng(2));
  EXPECT_EQ(pilot.state_count(),
            cfg.lateral_bins * cfg.heading_bins * cfg.curvature_bins);
}

TEST(QLearning, StateIndexWithinRange) {
  const track::Track t = track::Track::paper_oval();
  QLearningPilot pilot(t, fast_config(), util::Rng(3));
  util::Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    vehicle::CarState st;
    const double s = rng.uniform(0, t.length());
    st.pos = t.position_at(s) +
             track::heading_vec(t.heading_at(s)).perp() *
                 rng.uniform(-0.6, 0.6);
    st.heading = rng.uniform(-M_PI, M_PI);
    ASSERT_LT(pilot.state_index(st), pilot.state_count());
  }
}

TEST(QLearning, TrainingImprovesReward) {
  const track::Track t = track::Track::paper_oval();
  QLearningPilot pilot(t, fast_config(), util::Rng(5));
  const auto stats = pilot.train();
  ASSERT_EQ(stats.size(), 60u);
  // Mean reward over the last third must beat the first third.
  auto mean = [&](std::size_t b, std::size_t e) {
    double s = 0;
    for (std::size_t i = b; i < e; ++i) s += stats[i].total_reward;
    return s / static_cast<double>(e - b);
  };
  EXPECT_GT(mean(40, 60), mean(0, 20));
}

TEST(QLearning, TrainedPolicyDrivesFartherThanUntrained) {
  const track::Track t = track::Track::paper_oval();
  QLearningPilot untrained(t, fast_config(), util::Rng(6));
  QLearningPilot trained(t, fast_config(), util::Rng(6));
  trained.train();
  const EpisodeStats before = untrained.evaluate(30.0);
  const EpisodeStats after = trained.evaluate(30.0);
  EXPECT_GT(after.distance_m, before.distance_m);
  EXPECT_GT(after.distance_m, t.length());  // at least one lap in 30 s
}

TEST(QLearning, GreedyDecisionInRange) {
  const track::Track t = track::Track::paper_oval();
  QLearningPilot pilot(t, fast_config(), util::Rng(7));
  pilot.train();
  vehicle::CarState st;
  st.pos = t.position_at(1.0);
  st.heading = t.heading_at(1.0);
  const vehicle::DriveCommand cmd = pilot.decide(st);
  EXPECT_GE(cmd.steering, -1.0);
  EXPECT_LE(cmd.steering, 1.0);
  EXPECT_GT(cmd.throttle, 0.0);
}

TEST(QLearning, SaveLoadRoundTrip) {
  const track::Track t = track::Track::paper_oval();
  QLearningPilot a(t, fast_config(), util::Rng(8));
  a.train();
  std::stringstream buf;
  a.save(buf);
  QLearningPilot b(t, fast_config(), util::Rng(999));
  b.load(buf);
  // Same greedy decisions everywhere we probe.
  util::Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    vehicle::CarState st;
    const double s = rng.uniform(0, t.length());
    st.pos = t.position_at(s);
    st.heading = t.heading_at(s) + rng.uniform(-0.3, 0.3);
    EXPECT_EQ(a.decide(st).steering, b.decide(st).steering);
  }
}

TEST(QLearning, LoadRejectsWrongSize) {
  const track::Track t = track::Track::paper_oval();
  QLearningPilot a(t, fast_config(), util::Rng(11));
  std::stringstream buf;
  a.save(buf);
  QConfig other = fast_config();
  other.actions = 5;
  QLearningPilot b(t, other, util::Rng(12));
  EXPECT_THROW(b.load(buf), std::runtime_error);
}

TEST(QLearning, DeterministicTraining) {
  const track::Track t = track::Track::paper_oval();
  QLearningPilot a(t, fast_config(), util::Rng(13));
  QLearningPilot b(t, fast_config(), util::Rng(13));
  const auto sa = a.train();
  const auto sb = b.train();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa[i].total_reward, sb[i].total_reward);
  }
}

}  // namespace
}  // namespace autolearn::rl
