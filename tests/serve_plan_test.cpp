// Serving-tier integration of the compiled forward path: registries
// compile models at publish time (and retroactively on set_plan_batch),
// replication forwards the plan cap to every replica without recompiling
// a shared model, and an end-to-end FleetService run is report-identical
// with plans on and off — compilation is a pure performance change.
// Selected by `ctest -L plan` (and -L serve).
#include <gtest/gtest.h>

#include <memory>

#include "ml/driving_model.hpp"
#include "ml/plan.hpp"
#include "obs/metrics.hpp"
#include "serve/model_registry.hpp"
#include "serve/replication.hpp"
#include "serve/service.hpp"
#include "util/event_queue.hpp"

namespace autolearn::serve {
namespace {

std::shared_ptr<ml::DrivingModel> make_shared_model(
    ml::ModelType type = ml::ModelType::Linear, std::uint64_t seed = 42) {
  ml::ModelConfig cfg;
  cfg.seed = seed;
  return std::shared_ptr<ml::DrivingModel>(ml::make_model(type, cfg));
}

TEST(RegistryPlan, PublishCompilesWhenPlanBatchIsSet) {
  ModelRegistry reg;
  reg.set_plan_batch(8);
  EXPECT_EQ(reg.plan_batch(), 8u);
  auto model = make_shared_model();
  EXPECT_EQ(model->plan(), nullptr);
  reg.publish(model, "bootstrap");
  ASSERT_NE(model->plan(), nullptr);
  EXPECT_EQ(model->plan()->max_batch(), 8u);
}

TEST(RegistryPlan, SetPlanBatchCompilesTheAlreadyPublishedModel) {
  ModelRegistry reg;
  auto model = make_shared_model();
  reg.publish(model, "bootstrap");
  EXPECT_EQ(model->plan(), nullptr);  // plans disabled at publish time
  reg.set_plan_batch(16);
  ASSERT_NE(model->plan(), nullptr);
  EXPECT_EQ(model->plan()->max_batch(), 16u);
}

TEST(RegistryPlan, ZeroCapDisablesCompilationForFuturePublishes) {
  ModelRegistry reg;
  reg.set_plan_batch(8);
  reg.set_plan_batch(0);
  auto model = make_shared_model();
  reg.publish(model, "bootstrap");
  EXPECT_EQ(model->plan(), nullptr);
}

TEST(RegistryPlan, CompileIsObservedOncePerActualCompile) {
  obs::MetricsRegistry metrics;
  ModelRegistry reg;
  reg.instrument(nullptr, &metrics);
  reg.set_plan_batch(8);
  auto model = make_shared_model();
  reg.publish(model, "bootstrap");
  EXPECT_EQ(metrics.counter("serve.plan.compiles").value(), 1u);
  // Republishing the same (already compiled, matching cap) model must not
  // emit a second compile event.
  reg.publish(model, "republish");
  EXPECT_EQ(metrics.counter("serve.plan.compiles").value(), 1u);
}

TEST(ReplicatedRegistryPlan, ForwardsCapAndSharedModelCompilesOnce) {
  obs::MetricsRegistry metrics;
  ReplicatedRegistry reg(3);
  reg.instrument(nullptr, &metrics);
  reg.set_plan_batch(8);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(reg.shard(s).plan_batch(), 8u);
  }
  auto model = make_shared_model();
  reg.publish_all(model, "bootstrap");
  ASSERT_NE(model->plan(), nullptr);
  EXPECT_EQ(model->plan()->max_batch(), 8u);
  // publish_all lands ONE shared model on all replicas: the first replica
  // compiles, the other two see a matching plan and skip.
  EXPECT_EQ(metrics.counter("serve.plan.compiles").value(), 1u);
}

FleetOptions small_fleet() {
  FleetOptions opt;
  opt.cars = 4;
  opt.duration_s = 1.0;
  opt.mean_interarrival_s = 0.01;
  opt.batcher.max_batch = 8;
  opt.batcher.max_delay_s = 0.01;
  opt.placement = core::Placement::Cloud;
  opt.seed = 11;
  return opt;
}

ServeReport run_fleet(ml::ModelType type, bool compile_plans,
                      std::size_t shards = 1) {
  util::EventQueue queue;
  FleetOptions opt = small_fleet();
  opt.compile_plans = compile_plans;
  opt.shards = shards;
  if (shards > 1) {
    ReplicatedRegistry reg(shards);
    reg.publish_all(make_shared_model(type), "bootstrap");
    FleetService service(queue, reg, opt);
    return service.run();
  }
  ModelRegistry reg;
  reg.publish(make_shared_model(type), "bootstrap");
  FleetService service(queue, reg, opt);
  return service.run();
}

TEST(FleetServicePlan, ReportIsIdenticalWithPlansOnAndOff) {
  // The whole point of the bitwise contract: turning compilation on must
  // change nothing about WHAT the fleet computes, only how fast.
  for (ml::ModelType type :
       {ml::ModelType::Linear, ml::ModelType::Categorical}) {
    const ServeReport off = run_fleet(type, false);
    const ServeReport on = run_fleet(type, true);
    EXPECT_EQ(off.to_json().dump(), on.to_json().dump())
        << "model " << ml::to_string(type);
  }
}

TEST(FleetServicePlan, ShardedReportIsIdenticalWithPlansOnAndOff) {
  const ServeReport off = run_fleet(ml::ModelType::Linear, false, 2);
  const ServeReport on = run_fleet(ml::ModelType::Linear, true, 2);
  EXPECT_EQ(off.to_json().dump(), on.to_json().dump());
}

TEST(FleetServicePlan, DefaultOptionsCompileThePublishedModel) {
  util::EventQueue queue;
  FleetOptions opt = small_fleet();
  EXPECT_TRUE(opt.compile_plans);  // on by default
  ModelRegistry reg;
  auto model = make_shared_model();
  reg.publish(model, "bootstrap");
  FleetService service(queue, reg, opt);
  ASSERT_NE(model->plan(), nullptr);
  EXPECT_EQ(model->plan()->max_batch(), opt.batcher.max_batch);
}

}  // namespace
}  // namespace autolearn::serve
