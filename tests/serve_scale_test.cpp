// Fleet autoscaling: elastic consistent-hash ring resizes with bounded
// key churn, the AutoScaler control loop's hysteresis/cooldown/clamp
// stability, the unified ServeConfig collect-all validation surface, and
// end-to-end scale-up under a 4x load spike (deterministic timeline,
// zero failed requests, chaos partitions never flap the scaler).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/chaos.hpp"
#include "net/network.hpp"
#include "serve/config.hpp"
#include "serve/errors.hpp"
#include "serve/service.hpp"
#include "testbed/topology.hpp"
#include "util/event_queue.hpp"

namespace autolearn::serve {
namespace {

constexpr std::size_t kKeys = 256;

std::shared_ptr<ml::DrivingModel> make_shared_model(std::uint64_t seed = 42) {
  ml::ModelConfig cfg;
  cfg.seed = seed;
  return std::shared_ptr<ml::DrivingModel>(
      ml::make_model(ml::ModelType::Linear, cfg));
}

std::size_t moved_keys(const std::vector<std::size_t>& before,
                       const std::vector<std::size_t>& after) {
  std::size_t moved = 0;
  for (std::size_t k = 0; k < before.size(); ++k) {
    if (before[k] != after[k]) ++moved;
  }
  return moved;
}

// --- ring resize: bounded churn --------------------------------------------

TEST(ShardRouterResize, ExpectedRemapFractionMatchesShipsInTheRing) {
  EXPECT_DOUBLE_EQ(expected_remap_fraction(4, 5), 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(expected_remap_fraction(5, 4), 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(expected_remap_fraction(1, 2), 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(expected_remap_fraction(3, 3), 0.0);
  EXPECT_DOUBLE_EQ(expected_remap_fraction(0, 4), 0.0);
}

TEST(ShardRouterResize, GrowMovesKeysOnlyToNewShardsWithinExpectedFraction) {
  for (const std::size_t n : {1u, 2u, 3u, 4u, 6u}) {
    for (const std::uint64_t salt_xor : {0ull, 0xabcdefull, 0x5eedull}) {
      ShardRouterConfig cfg;
      cfg.shards = n;
      cfg.salt ^= salt_xor;
      ShardRouter r(cfg);
      const auto before = r.mapping(kKeys);

      r.resize(n + 1);
      ASSERT_EQ(r.shards(), n + 1);
      ASSERT_EQ(r.alive_count(), n + 1);
      const auto after = r.mapping(kKeys);

      std::size_t moved = 0;
      for (std::size_t k = 0; k < kKeys; ++k) {
        if (before[k] == after[k]) continue;
        ++moved;
        // Structural half of the churn contract: a grow only moves keys
        // TO the new shard, never between incumbents.
        EXPECT_EQ(after[k], n) << "n=" << n << " salt^=" << salt_xor;
      }
      EXPECT_GT(moved, 0u);
      // Statistical half: ~1/(n+1) of keys move; 64 virtual points per
      // shard leave variance, so allow 2x slack.
      const double frac =
          static_cast<double>(moved) / static_cast<double>(kKeys);
      EXPECT_LE(frac, 2.0 * expected_remap_fraction(n, n + 1))
          << "n=" << n << " salt^=" << salt_xor;
    }
  }
}

TEST(ShardRouterResize, ShrinkMovesOnlyTheRetiredShardsKeys) {
  for (const std::size_t n : {2u, 3u, 4u, 6u}) {
    ShardRouterConfig cfg;
    cfg.shards = n;
    ShardRouter r(cfg);
    const auto before = r.mapping(kKeys);

    r.resize(n - 1);
    ASSERT_EQ(r.shards(), n - 1);
    const auto after = r.mapping(kKeys);

    std::size_t moved = 0;
    for (std::size_t k = 0; k < kKeys; ++k) {
      if (before[k] == n - 1) {
        // The retired shard's keys spill to a survivor.
        EXPECT_LT(after[k], n - 1);
        ++moved;
      } else {
        // Everyone else keeps their shard.
        EXPECT_EQ(after[k], before[k]) << "n=" << n;
      }
    }
    EXPECT_GT(moved, 0u);
    EXPECT_LE(static_cast<double>(moved) / static_cast<double>(kKeys),
              2.0 * expected_remap_fraction(n, n - 1));
  }
}

TEST(ShardRouterResize, ShrinkThenGrowRestoresTheMappingBitwise) {
  for (const std::size_t n : {2u, 4u, 7u}) {
    ShardRouterConfig cfg;
    cfg.shards = n;
    ShardRouter r(cfg);
    const auto original = r.mapping(kKeys);

    r.resize(1);
    r.resize(n);
    EXPECT_EQ(r.mapping(kKeys), original) << "n=" << n;

    // Multi-step walk lands on the same ring as a direct resize: points
    // are a pure function of (salt, shard, replica).
    r.resize(n + 3);
    const auto grown = r.mapping(kKeys);
    ShardRouterConfig direct = cfg;
    direct.shards = n + 3;
    EXPECT_EQ(ShardRouter(direct).mapping(kKeys), grown) << "n=" << n;
  }
}

TEST(ShardRouterResize, ResizeInteractsWithLiveness) {
  ShardRouterConfig cfg;
  cfg.shards = 3;
  ShardRouter r(cfg);
  r.set_alive(2, false);
  EXPECT_EQ(r.alive_count(), 2u);

  // Retiring a dead shard must not double-decrement the live count.
  r.resize(2);
  EXPECT_EQ(r.alive_count(), 2u);
  // Retiring a live shard drops it.
  r.resize(1);
  EXPECT_EQ(r.alive_count(), 1u);

  // Grown shards enter live.
  r.resize(4);
  EXPECT_EQ(r.alive_count(), 4u);
  EXPECT_THROW(r.resize(0), std::invalid_argument);
}

// --- unified ServeConfig validation ----------------------------------------

TEST(ServeConfigTest, DefaultIsValidAndAliasesReachNestedStructs) {
  ServeConfig config;
  EXPECT_TRUE(config.issues().empty());
  EXPECT_NO_THROW(config.validate());

  config.batcher().max_batch = 12;
  config.health().timeout_s = 0.08;
  config.autoscaler().max_shards = 5;
  EXPECT_EQ(config.fleet.batcher.max_batch, 12u);
  EXPECT_EQ(config.fleet.health.timeout_s, 0.08);
  EXPECT_EQ(config.fleet.autoscaler.max_shards, 5u);
}

TEST(ServeConfigTest, ValidateCollectsEveryViolationWithFieldPaths) {
  ServeConfig config;
  config.fleet.cars = 0;
  config.fleet.duration_s = -1.0;
  config.fleet.queue_budget = 0;
  config.fleet.batcher.max_batch = 0;
  config.fleet.health.timeout_s = 0.0;
  config.fleet.autoscaler.sample_interval_s = 0.0;
  config.fleet.autoscaler.cooldown_s = -0.5;
  config.fleet.autoscaler.min_shards = 4;
  config.fleet.autoscaler.max_shards = 2;
  config.canary.max_error_rate = 2.0;

  try {
    config.validate();
    FAIL() << "expected ConfigErrorList";
  } catch (const ConfigErrorList& e) {
    EXPECT_GE(e.size(), 9u);
    for (const char* field :
         {"fleet.cars", "fleet.duration_s", "fleet.queue_budget",
          "batcher.max_batch", "health.timeout_s",
          "autoscaler.sample_interval_s", "autoscaler.cooldown_s",
          "autoscaler.max_shards", "canary.max_error_rate"}) {
      EXPECT_TRUE(e.has(field)) << "missing violation for " << field
                                << "; what(): " << e.what();
    }
    // Every entry is itself a typed ConfigError with a dotted path.
    for (const ConfigError& err : e.errors()) {
      EXPECT_NE(err.field().find('.'), std::string::npos) << err.field();
    }
  }
}

TEST(ServeConfigTest, StartingShardsMustSitInsideTheAutoscalerClamp) {
  ServeConfig config;
  config.fleet.shards = 6;
  config.fleet.autoscaler.enabled = true;
  config.fleet.autoscaler.min_shards = 1;
  config.fleet.autoscaler.max_shards = 4;
  ConfigIssues issues = config.issues();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues.front().field(), "fleet.shards");

  // Disabled scaler: the clamp is irrelevant.
  config.fleet.autoscaler.enabled = false;
  EXPECT_TRUE(config.issues().empty());
}

TEST(ServeConfigTest, LoadSpikesAreValidatedUpFrontWithIndexedPaths) {
  // These used to surface only at spike-attach time, as a mid-run throw
  // from set_load_factor; validate() now collects them with the rest.
  ServeConfig config;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  config.fleet.load_spikes.push_back({-1.0, 2.0, 4.0});   // negative at
  config.fleet.load_spikes.push_back({0.5, nan, 4.0});    // NaN duration
  config.fleet.load_spikes.push_back({0.5, 2.0, 0.0});    // non-positive factor
  config.fleet.load_spikes.push_back(
      {0.5, 2.0, std::numeric_limits<double>::infinity()});  // inf factor

  ConfigIssues issues = config.issues();
  EXPECT_GE(issues.size(), 4u);
  for (const char* field :
       {"fleet.load_spikes[0].at", "fleet.load_spikes[1].duration",
        "fleet.load_spikes[2].factor", "fleet.load_spikes[3].factor"}) {
    bool found = false;
    for (const ConfigError& err : issues) {
      if (err.field() == field) found = true;
    }
    EXPECT_TRUE(found) << "missing violation for " << field;
  }

  // A clean spike list stays clean.
  config.fleet.load_spikes.clear();
  config.fleet.load_spikes.push_back({0.5, 2.0, 4.0});
  EXPECT_TRUE(config.issues().empty());
}

TEST(ServeConfigTest, PerStructValidateStillThrowsFirstAsConfigError) {
  AutoScalerOptions opt;
  opt.cooldown_s = -1.0;
  try {
    opt.validate();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.field(), "autoscaler.cooldown_s");
  }
  BatcherConfig b;
  b.max_batch = 0;
  EXPECT_THROW(b.validate(), ConfigError);
}

// --- AutoScaler control loop (stubbed sampler/resizer) ----------------------

struct ScalerHarness {
  util::EventQueue queue;
  AutoScaler scaler;
  ScaleSignals signals;           // what the next tick will see
  std::vector<std::size_t> targets;  // resize requests, in order

  explicit ScalerHarness(AutoScalerOptions opt) : scaler(queue, opt) {
    signals.active_shards = 2;
    signals.live_shards = 2;
    signals.queue_budget = 10.0;
    scaler.set_sampler([this](double) { return signals; });
    scaler.set_resizer(
        [this](std::size_t target, double, const std::string&) {
          targets.push_back(target);
          signals.active_shards = target;
          signals.live_shards = target;
          return true;
        });
  }
};

AutoScalerOptions unit_options() {
  AutoScalerOptions opt;
  opt.enabled = true;
  opt.sample_interval_s = 0.05;
  opt.queue_high = 0.75;
  opt.queue_low = 0.10;
  opt.breach_samples = 2;
  opt.idle_samples = 3;
  opt.cooldown_s = 0.0;
  opt.min_shards = 1;
  opt.max_shards = 4;
  return opt;
}

TEST(AutoScalerLoop, HysteresisNeedsConsecutiveBreaches) {
  ScalerHarness h(unit_options());
  h.signals.mean_queue_depth = 9.0;  // 0.9 of budget: breach
  h.scaler.tick();
  EXPECT_TRUE(h.targets.empty());  // one breach is noise

  h.signals.mean_queue_depth = 1.5;  // back under the band
  h.scaler.tick();
  h.signals.mean_queue_depth = 9.0;
  h.scaler.tick();
  EXPECT_TRUE(h.targets.empty());  // streak was broken

  h.scaler.tick();  // second CONSECUTIVE breach
  ASSERT_EQ(h.targets.size(), 1u);
  EXPECT_EQ(h.targets[0], 3u);
  EXPECT_EQ(h.scaler.scale_ups(), 1u);
  ASSERT_EQ(h.scaler.decisions().size(), 1u);
  EXPECT_TRUE(h.scaler.decisions()[0].applied);
  EXPECT_NE(h.scaler.decisions()[0].reason.find("queue"), std::string::npos);
}

TEST(AutoScalerLoop, CooldownBlocksBackToBackScales) {
  AutoScalerOptions opt = unit_options();
  opt.breach_samples = 1;
  opt.cooldown_s = 10.0;  // longer than this test's virtual time
  ScalerHarness h(opt);
  h.signals.mean_queue_depth = 9.0;
  h.scaler.tick();  // t=0: cooled (no prior event), scales
  ASSERT_EQ(h.targets.size(), 1u);
  h.scaler.tick();
  h.scaler.tick();
  EXPECT_EQ(h.targets.size(), 1u);  // still saturated, still cooling
}

TEST(AutoScalerLoop, ClampNeverTargetsOutsideBounds) {
  AutoScalerOptions opt = unit_options();
  opt.breach_samples = 1;
  opt.idle_samples = 1;
  ScalerHarness h(opt);
  h.signals.active_shards = 4;  // at max
  h.signals.live_shards = 4;
  h.signals.mean_queue_depth = 10.0;
  h.scaler.tick();
  h.scaler.tick();
  EXPECT_TRUE(h.targets.empty());  // saturated at the clamp: no decision

  h.signals.active_shards = 1;  // at min
  h.signals.live_shards = 1;
  h.signals.mean_queue_depth = 0.0;
  h.signals.utilization = 0.0;
  h.scaler.tick();
  h.scaler.tick();
  EXPECT_TRUE(h.targets.empty());
}

TEST(AutoScalerLoop, PartitionMaskedCapacityIsNeverRetired) {
  AutoScalerOptions opt = unit_options();
  opt.idle_samples = 1;
  ScalerHarness h(opt);
  h.signals.active_shards = 3;
  h.signals.live_shards = 2;  // one shard dark behind a partition
  h.signals.mean_queue_depth = 0.0;
  h.signals.utilization = 0.0;
  for (int i = 0; i < 5; ++i) h.scaler.tick();
  EXPECT_TRUE(h.targets.empty());  // idle, but shrink is vetoed

  h.signals.live_shards = 3;  // partition healed
  h.scaler.tick();
  ASSERT_EQ(h.targets.size(), 1u);
  EXPECT_EQ(h.targets[0], 2u);
  EXPECT_EQ(h.scaler.scale_downs(), 1u);
}

TEST(AutoScalerLoop, ShedsVetoScaleDownAndCountAsBreach) {
  AutoScalerOptions opt = unit_options();
  opt.idle_samples = 1;
  opt.breach_samples = 1;
  opt.shed_high = 0.0;
  ScalerHarness h(opt);
  h.signals.mean_queue_depth = 0.0;
  h.signals.shed_rate = 0.05;  // any shed above the 0 watermark
  h.scaler.tick();
  ASSERT_EQ(h.targets.size(), 1u);
  EXPECT_EQ(h.targets[0], 3u);  // scaled UP on sheds alone
}

// --- end-to-end: load spike scales the fleet up -----------------------------

FleetOptions spike_fleet_options(std::uint64_t seed) {
  FleetOptions opt;
  opt.cars = 16;
  opt.shards = 1;
  opt.duration_s = 2.0;
  opt.mean_interarrival_s = 0.02;
  opt.batcher.max_batch = 8;
  opt.batcher.max_delay_s = 0.01;
  opt.placement = core::Placement::OnDevice;
  // Price the model so ONE shard rides comfortably at the base load but
  // saturates under the 4x spike — the scaler has real work to do.
  opt.continuum.flops_scale = 30.0;
  opt.queue_budget = 24;
  opt.seed = seed;
  opt.autoscaler.enabled = true;
  opt.autoscaler.sample_interval_s = 0.02;
  opt.autoscaler.queue_high = 0.25;
  opt.autoscaler.queue_low = 0.05;
  opt.autoscaler.breach_samples = 2;
  opt.autoscaler.idle_samples = 10;
  opt.autoscaler.cooldown_s = 0.1;
  opt.autoscaler.min_shards = 1;
  opt.autoscaler.max_shards = 4;
  // 4x offered load during the middle of the run.
  opt.load_spikes.push_back({0.5, 0.8, 4.0});
  return opt;
}

ServeReport run_spike_fleet(std::uint64_t seed) {
  util::EventQueue queue;
  ModelRegistry registry;
  registry.publish(make_shared_model());
  FleetService service(queue, registry, spike_fleet_options(seed));
  return service.run();
}

TEST(AutoscaledFleet, FourXSpikeScalesUpWithZeroFailedRequests) {
  const ServeReport r = run_spike_fleet(11);
  ASSERT_GE(r.scale_ups, 1u);
  EXPECT_EQ(r.initial_shards, 1u);
  EXPECT_GT(r.final_shards, 0u);
  ASSERT_FALSE(r.scale_events.empty());

  // Every scale event carries the churn accounting and a band reason.
  double last_t = -1.0;
  for (const ScaleEvent& e : r.scale_events) {
    EXPECT_GT(e.t, last_t);
    last_t = e.t;
    EXPECT_NE(e.from_shards, e.to_shards);
    EXPECT_FALSE(e.reason.empty());
    EXPECT_LE(e.churn_frac, 1.0);
  }
  const ScaleEvent& first = r.scale_events.front();
  EXPECT_TRUE(first.up);
  EXPECT_GE(first.t, 0.5);  // tripped by the spike, not the warmup

  // The invariant the whole design defends: degraded, never failed.
  EXPECT_GT(r.requests, 100u);
  EXPECT_EQ(r.requests, r.completed + r.shed);
  EXPECT_EQ(r.records.size(), r.requests);

  // Added capacity restores the queueing latency: the post-spike tail
  // must not be worse than the spike's own congestion.
  std::vector<double> during;
  std::vector<double> after;
  for (const ServeRecord& rec : r.records) {
    if (rec.shed) continue;
    if (rec.t_dispatch >= 0.5 && rec.t_dispatch < 0.9) {
      during.push_back(rec.queued_s());
    } else if (rec.t_dispatch >= 1.5) {
      after.push_back(rec.queued_s());
    }
  }
  ASSERT_FALSE(during.empty());
  ASSERT_FALSE(after.empty());
  std::sort(during.begin(), during.end());
  std::sort(after.begin(), after.end());
  const double p99_during = during[(during.size() - 1) * 99 / 100];
  const double p99_after = after[(after.size() - 1) * 99 / 100];
  EXPECT_LT(p99_after, p99_during);

  // Against the fixed-size control, added capacity absorbs most of the
  // spike instead of shedding it.
  FleetOptions fixed = spike_fleet_options(11);
  fixed.autoscaler.enabled = false;
  util::EventQueue queue;
  ModelRegistry registry;
  registry.publish(make_shared_model());
  FleetService control(queue, registry, fixed);
  const ServeReport c = control.run();
  EXPECT_EQ(c.requests, r.requests);  // same arrival schedule
  EXPECT_LT(r.shed * 2, c.shed);
}

TEST(AutoscaledFleet, ScaleTimelineIsBitwiseDeterministic) {
  const ServeReport a = run_spike_fleet(11);
  const ServeReport b = run_spike_fleet(11);
  ASSERT_EQ(a.scale_events.size(), b.scale_events.size());
  for (std::size_t i = 0; i < a.scale_events.size(); ++i) {
    EXPECT_EQ(a.scale_events[i].t, b.scale_events[i].t);
    EXPECT_EQ(a.scale_events[i].to_shards, b.scale_events[i].to_shards);
    EXPECT_EQ(a.scale_events[i].moved_cars, b.scale_events[i].moved_cars);
    EXPECT_EQ(a.scale_events[i].reason, b.scale_events[i].reason);
  }
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  EXPECT_EQ(a.summary(), b.summary());

  const ServeReport c = run_spike_fleet(12);
  EXPECT_NE(a.to_json().dump(), c.to_json().dump());
}

TEST(AutoscaledFleet, DisabledScalerLeavesTheFleetFixed) {
  FleetOptions opt = spike_fleet_options(11);
  opt.autoscaler.enabled = false;
  util::EventQueue queue;
  ModelRegistry registry;
  registry.publish(make_shared_model());
  FleetService service(queue, registry, opt);
  EXPECT_EQ(service.autoscaler(), nullptr);
  const ServeReport r = service.run();
  EXPECT_TRUE(r.scale_events.empty());
  EXPECT_EQ(r.initial_shards, r.final_shards);
  EXPECT_EQ(r.requests, r.completed + r.shed);
}

// --- end-to-end: replicated registries follow the scaler --------------------

TEST(AutoscaledFleet, ScaledInShardsServeTheIncumbentThroughNewReplicas) {
  util::EventQueue queue;
  ReplicatedRegistry registry(1);
  auto model = make_shared_model();
  const std::uint64_t version = registry.publish_all(model, "incumbent");

  FleetOptions opt = spike_fleet_options(11);
  FleetService service(queue, registry, opt);
  const ServeReport r = service.run();

  ASSERT_GE(r.scale_ups, 1u);
  ASSERT_GT(registry.shards(), 1u);
  // Every replica the scaler minted serves the incumbent snapshot —
  // same version, same model object, compiled plan attached.
  const auto incumbent = registry.shard(0).current();
  for (std::size_t s = 1; s < registry.shards(); ++s) {
    const auto replica = registry.shard(s).current();
    ASSERT_TRUE(replica);
    EXPECT_EQ(replica->version, incumbent->version);
    EXPECT_EQ(replica->model, incumbent->model);
  }
  EXPECT_NE(incumbent->model->plan(), nullptr);
  // All completed traffic ran the one published version.
  ASSERT_EQ(r.requests_by_version.size(), 1u);
  EXPECT_EQ(r.requests_by_version.begin()->first, version);
  // The grown shards actually served requests.
  std::size_t grown_completed = 0;
  for (std::size_t s = 1; s < r.shard_stats.size(); ++s) {
    grown_completed += r.shard_stats[s].completed;
    EXPECT_GT(r.shard_stats[s].admitted_at, 0.0);
  }
  EXPECT_GT(grown_completed, 0u);
  EXPECT_EQ(r.requests, r.completed + r.shed);
}

// --- end-to-end: manual resize + chaos partition mid-resize -----------------

TEST(FleetResize, ManualShrinkDrainsRetiringQueuesIntoSurvivors) {
  util::EventQueue queue;
  ModelRegistry registry;
  registry.publish(make_shared_model());

  FleetOptions opt;
  opt.cars = 16;
  opt.shards = 3;
  opt.duration_s = 1.0;
  opt.mean_interarrival_s = 0.005;
  opt.batcher.max_batch = 8;
  opt.batcher.max_delay_s = 0.01;
  opt.placement = core::Placement::OnDevice;
  opt.seed = 5;

  FleetService service(queue, registry, opt);
  queue.schedule_at(0.5, [&] {
    EXPECT_TRUE(service.resize(1, "manual shrink"));
    EXPECT_FALSE(service.resize(1, "no-op"));  // already there
  });
  const ServeReport r = service.run();

  ASSERT_EQ(r.scale_events.size(), 1u);
  const ScaleEvent& e = r.scale_events[0];
  EXPECT_FALSE(e.up);
  EXPECT_EQ(e.from_shards, 3u);
  EXPECT_EQ(e.to_shards, 1u);
  EXPECT_EQ(r.final_shards, 1u);
  EXPECT_EQ(r.shards, 3u);  // peak slots stay visible
  EXPECT_GE(r.shard_stats[1].retired_at, 0.5);
  EXPECT_GE(r.shard_stats[2].retired_at, 0.5);
  EXPECT_EQ(r.shard_stats[0].retired_at, -1.0);
  // Nothing queued on the retiring shards was lost.
  EXPECT_EQ(r.requests, r.completed + r.shed);
  // After the shrink every completion ran on shard 0.
  for (const ServeRecord& rec : r.records) {
    if (!rec.shed && rec.t_dispatch > 0.5) EXPECT_EQ(rec.shard, 0u);
  }
}

/// Chaos partitions CHI@TACC while a load spike (driven through the
/// chaos engine's LoadSpike fault) is pushing the scaler around: the
/// scaler must not retire partition-masked capacity, and no queued car
/// may be lost across the overlapping resize + failover churn.
ServeReport run_chaos_scaled_fleet(std::uint64_t seed) {
  util::EventQueue queue;
  net::Network net = testbed::chameleon_network();
  fault::ChaosEngine chaos(queue, 7);
  chaos.attach_network(net);

  ModelRegistry registry;
  registry.publish(make_shared_model());

  FleetOptions opt = spike_fleet_options(seed);
  opt.load_spikes.clear();  // the chaos engine drives the load instead
  opt.shards = 2;
  opt.site_probe = [&net](const std::string& site, double) {
    return net.route(testbed::kCampusGateway, site).has_value();
  };

  FleetService service(queue, registry, opt);
  chaos.attach_load([&service](double f) { service.set_load_factor(f); });

  fault::FaultSpec spike;
  spike.kind = fault::FaultKind::LoadSpike;
  spike.at = 0.4;
  spike.duration = 0.8;
  spike.load_mult = 4.0;
  chaos.inject(spike);

  fault::FaultSpec partition;
  partition.kind = fault::FaultKind::Partition;
  partition.at = 0.6;
  partition.duration = 0.5;
  partition.target = testbed::kSiteTACC;
  chaos.inject(partition);

  return service.run();
}

TEST(AutoscaledFleet, ChaosPartitionMidResizeNeitherFlapsNorLosesCars) {
  const ServeReport r = run_chaos_scaled_fleet(11);

  // Conservation across overlapping scale + failover churn.
  EXPECT_GT(r.requests, 100u);
  EXPECT_EQ(r.requests, r.completed + r.shed);
  EXPECT_EQ(r.records.size(), r.requests);

  // The spike still forced growth.
  EXPECT_GE(r.scale_ups, 1u);
  // No capacity was retired while the partition masked it: any down
  // event lands outside the dark window (detection starts after 0.6).
  for (const ScaleEvent& e : r.scale_events) {
    if (!e.up) {
      EXPECT_FALSE(e.t > 0.6 && e.t < 1.1)
          << "scaled down at t=" << e.t << " during the partition";
    }
  }

  // Determinism holds under chaos + elastic resize.
  const ServeReport again = run_chaos_scaled_fleet(11);
  EXPECT_EQ(r.to_json().dump(), again.to_json().dump());
}

}  // namespace
}  // namespace autolearn::serve
