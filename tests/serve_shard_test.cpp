// Geo-sharded fleet serving: consistent-hash router determinism and
// bounded churn, heartbeat health monitoring, chaos-partition failover
// with the zero-failed-requests invariant, and the gated canary rollout
// path (corrupted models roll back and never reach the rest of the
// fleet).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/chaos.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "serve/errors.hpp"
#include "serve/service.hpp"
#include "testbed/topology.hpp"
#include "util/event_queue.hpp"

namespace autolearn::serve {
namespace {

std::shared_ptr<ml::DrivingModel> make_shared_model(std::uint64_t seed = 42) {
  ml::ModelConfig cfg;
  cfg.seed = seed;
  return std::shared_ptr<ml::DrivingModel>(
      ml::make_model(ml::ModelType::Linear, cfg));
}

std::vector<ml::Sample> make_probes(std::size_t n) {
  std::vector<ml::Sample> probes(n);
  for (std::size_t i = 0; i < n; ++i) {
    probes[i].frames.emplace_back(32, 24,
                                  0.1f * static_cast<float>(i + 1));
  }
  return probes;
}

/// A model whose forward is corrupted (NaN steering) but whose shape and
/// cost match the wrapped model — the canary gate must catch it.
class BrokenModel : public ml::DrivingModel {
 public:
  explicit BrokenModel(std::shared_ptr<ml::DrivingModel> inner)
      : inner_(std::move(inner)) {}
  ml::ModelType type() const override { return inner_->type(); }
  std::size_t seq_len() const override { return inner_->seq_len(); }
  std::size_t history_len() const override { return inner_->history_len(); }
  ml::Prediction predict(const ml::Sample&) override {
    ml::Prediction p;
    p.steering = std::numeric_limits<double>::quiet_NaN();
    p.throttle = 0.0;
    return p;
  }
  void predict_batch(const ml::Sample* obs, std::size_t n,
                     ml::Prediction* out) override {
    for (std::size_t i = 0; i < n; ++i) out[i] = predict(obs[i]);
  }
  double train_batch(const std::vector<const ml::Sample*>& batch) override {
    return inner_->train_batch(batch);
  }
  double eval_batch(const std::vector<const ml::Sample*>& batch) override {
    return inner_->eval_batch(batch);
  }
  std::size_t num_parameters() override { return inner_->num_parameters(); }
  std::uint64_t flops_per_sample() const override {
    return inner_->flops_per_sample();
  }
  void save(std::ostream& os) override { inner_->save(os); }
  void load(std::istream& is) override { inner_->load(is); }

 private:
  std::shared_ptr<ml::DrivingModel> inner_;
};

// --- shard router ----------------------------------------------------------

TEST(ShardRouter, ValidatesConfig) {
  ShardRouterConfig bad;
  bad.shards = 0;
  EXPECT_THROW(ShardRouter{bad}, std::invalid_argument);
  bad = ShardRouterConfig{};
  bad.replicas = 0;
  EXPECT_THROW(ShardRouter{bad}, std::invalid_argument);
}

TEST(ShardRouter, MappingIsDeterministicAndCoversEveryShard) {
  ShardRouterConfig cfg;
  cfg.shards = 4;
  const ShardRouter a(cfg);
  const ShardRouter b(cfg);
  const auto map_a = a.mapping(256);
  EXPECT_EQ(map_a, b.mapping(256));

  std::vector<std::size_t> load(cfg.shards, 0);
  for (const std::size_t s : map_a) {
    ASSERT_LT(s, cfg.shards);
    ++load[s];
  }
  // 64 virtual points per shard keep the ring reasonably smooth: every
  // shard owns a real slice of the fleet.
  for (const std::size_t l : load) EXPECT_GE(l, 256u / cfg.shards / 4);

  ShardRouterConfig salted = cfg;
  salted.salt ^= 0xabcdef;
  EXPECT_NE(ShardRouter(salted).mapping(256), map_a);
}

TEST(ShardRouter, DeathMovesOnlyTheDeadShardsKeysAndRevivalRestoresThem) {
  ShardRouterConfig cfg;
  cfg.shards = 4;
  ShardRouter r(cfg);
  const auto before = r.mapping(256);

  r.set_alive(2, false);
  EXPECT_EQ(r.alive_count(), 3u);
  const auto during = r.mapping(256);
  std::size_t moved = 0;
  for (std::size_t car = 0; car < before.size(); ++car) {
    if (before[car] == 2) {
      EXPECT_NE(during[car], 2u);  // spilled to a survivor
      ++moved;
    } else {
      EXPECT_EQ(during[car], before[car]);  // bounded churn: nobody else moves
    }
  }
  EXPECT_GT(moved, 0u);

  r.set_alive(2, true);
  EXPECT_EQ(r.mapping(256), before);  // exactly those cars come home
}

TEST(ShardRouter, NoLiveShardThrowsAndIsVisible) {
  ShardRouterConfig cfg;
  cfg.shards = 2;
  ShardRouter r(cfg);
  r.set_alive(0, false);
  r.set_alive(1, false);
  EXPECT_FALSE(r.any_alive());
  EXPECT_THROW(r.shard_for(0), std::logic_error);
  r.set_alive(1, true);
  EXPECT_EQ(r.shard_for(0), 1u);  // every key drains to the lone survivor
}

// --- health monitor --------------------------------------------------------

TEST(HealthMonitor, TimesOutDeadSitesAndRevivesThemOnFirstHeartbeat) {
  util::EventQueue queue;
  HealthOptions opt;
  opt.check_interval_s = 0.02;
  opt.timeout_s = 0.05;
  HealthMonitor monitor(queue, opt);
  ASSERT_EQ(monitor.add_shard("site-a"), 0u);

  // Site dark during [0.10, 0.25).
  monitor.set_probe([](const std::string&, double now) {
    return now < 0.10 || now >= 0.25;
  });
  double down_at = -1.0;
  double up_at = -1.0;
  monitor.set_on_down([&](std::size_t shard) {
    EXPECT_EQ(shard, 0u);
    down_at = queue.now();
  });
  monitor.set_on_up([&](std::size_t shard) {
    EXPECT_EQ(shard, 0u);
    up_at = queue.now();
  });
  monitor.start(1.0);
  queue.run();

  // Last good heartbeat lands at 0.08; the 0.14 sweep is the first where
  // the site has been dark past the 0.05 timeout. The 0.26 sweep is the
  // first successful heartbeat after the heal.
  EXPECT_NEAR(down_at, 0.14, 1e-9);
  EXPECT_NEAR(up_at, 0.26, 1e-9);
  EXPECT_EQ(monitor.downs(), 1u);
  EXPECT_EQ(monitor.ups(), 1u);
  EXPECT_TRUE(monitor.alive(0));
}

// --- sharded fleet under chaos ---------------------------------------------

struct PartitionedOut {
  ServeReport report;
  std::size_t chaos_injected = 0;
};

/// 4 shards alternating across the two Chameleon sites; chaos partitions
/// CHI@TACC (shards 1 and 3) for [0.3, 0.7) of a 1.0 s run.
PartitionedOut run_partitioned_fleet(std::uint64_t seed) {
  util::EventQueue queue;
  net::Network net = testbed::chameleon_network();
  fault::ChaosEngine chaos(queue, 7);
  chaos.attach_network(net);
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::Partition;
  spec.at = 0.3;
  spec.duration = 0.4;
  spec.target = testbed::kSiteTACC;
  chaos.inject(spec);

  ModelRegistry registry;
  registry.publish(make_shared_model());

  FleetOptions opt;
  opt.cars = 8;
  opt.shards = 4;
  opt.duration_s = 1.0;
  opt.mean_interarrival_s = 0.005;
  opt.batcher.max_batch = 8;
  opt.batcher.max_delay_s = 0.01;
  opt.placement = core::Placement::Cloud;
  opt.seed = seed;
  opt.site_probe = [&net](const std::string& site, double) {
    return net.route(testbed::kCampusGateway, site).has_value();
  };

  FleetService service(queue, registry, opt);
  PartitionedOut out;
  out.report = service.run();
  out.chaos_injected = chaos.report().injected;
  return out;
}

TEST(ShardedFleet, SameSeedSamePartitionIsBitwiseIdentical) {
  const PartitionedOut a = run_partitioned_fleet(11);
  const PartitionedOut b = run_partitioned_fleet(11);
  EXPECT_EQ(a.report.batch_sizes, b.report.batch_sizes);
  EXPECT_EQ(a.report.to_json().dump(), b.report.to_json().dump());
  EXPECT_EQ(a.report.summary(), b.report.summary());

  const PartitionedOut c = run_partitioned_fleet(12);
  EXPECT_NE(a.report.to_json().dump(), c.report.to_json().dump());
}

TEST(ShardedFleet, SiteLossFailsOverWithZeroFailedRequests) {
  const PartitionedOut out = run_partitioned_fleet(11);
  const ServeReport& r = out.report;
  ASSERT_EQ(out.chaos_injected, 1u);
  ASSERT_EQ(r.shards, 4u);
  ASSERT_EQ(r.shard_stats.size(), 4u);

  // Shards 1 and 3 sit on CHI@TACC; the health monitor must declare both
  // dead during the partition and re-admit both after the heal.
  EXPECT_EQ(r.shard_stats[0].site, testbed::kSiteUC);
  EXPECT_EQ(r.shard_stats[1].site, testbed::kSiteTACC);
  EXPECT_EQ(r.shard_downs, 2u);
  EXPECT_EQ(r.shard_ups, 2u);
  EXPECT_EQ(r.shard_stats[1].downs, 1u);
  EXPECT_EQ(r.shard_stats[3].downs, 1u);
  EXPECT_EQ(r.shard_stats[0].downs, 0u);

  // The invariant the whole design defends: degraded, never failed.
  EXPECT_GT(r.requests, 1000u);
  EXPECT_EQ(r.requests, r.completed + r.shed);
  EXPECT_EQ(r.records.size(), r.requests);

  // Attribution sums must agree with the aggregates.
  std::size_t shed_sum = 0;
  for (const std::size_t s : r.shed_by_car) shed_sum += s;
  EXPECT_EQ(shed_sum, r.shed);
  std::size_t failover_sum = 0;
  for (const std::size_t s : r.failover_by_shard) failover_sum += s;
  EXPECT_EQ(failover_sum, r.rebalanced);
  std::size_t routed = 0;
  std::size_t rerouted_in = 0;
  for (const ShardStats& s : r.shard_stats) {
    routed += s.requests;
    rerouted_in += s.rerouted_in;
  }
  EXPECT_EQ(routed, r.requests);  // CHI@UC stayed up: nothing went unrouted
  EXPECT_LE(rerouted_in, r.rebalanced);  // the rest were shed on arrival

  // Survivors absorbed traffic: every shard answered requests, and the
  // dead shards' arrivals kept flowing (their stats freeze while dead, so
  // UC shards carry more).
  for (const ShardStats& s : r.shard_stats) EXPECT_GT(s.completed, 0u);
  EXPECT_GT(r.shard_stats[0].requests + r.shard_stats[2].requests,
            r.shard_stats[1].requests + r.shard_stats[3].requests);
}

TEST(ShardedFleet, ShardsOneIsTheSingleWorkerService) {
  // shards = 1 must stay bitwise-identical to the pre-sharding service:
  // one worker, no health monitor, no reroutes, empty failover vector sums.
  util::EventQueue queue;
  ModelRegistry registry;
  registry.publish(make_shared_model());
  FleetOptions opt;
  opt.cars = 4;
  opt.duration_s = 0.5;
  opt.mean_interarrival_s = 0.01;
  opt.batcher.max_batch = 8;
  opt.batcher.max_delay_s = 0.01;
  opt.seed = 11;
  FleetService service(queue, registry, opt);
  const ServeReport r = service.run();
  EXPECT_EQ(r.shards, 1u);
  EXPECT_EQ(r.shard_downs, 0u);
  EXPECT_EQ(r.rebalanced, 0u);
  EXPECT_EQ(service.health(), nullptr);
  EXPECT_EQ(r.shard_stats.size(), 1u);
  EXPECT_EQ(r.shard_stats[0].requests, r.requests);
  EXPECT_EQ(r.requests, r.completed + r.shed);
}

TEST(ShardedFleet, ReplicatedModeRequiresMatchingShardCount) {
  util::EventQueue queue;
  ReplicatedRegistry reg(2);
  reg.publish_all(make_shared_model());
  FleetOptions opt;
  opt.shards = 3;
  try {
    FleetService service(queue, reg, opt);
    FAIL() << "shard-count mismatch must throw";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.field(), "fleet.shards");
  }
}

// --- canary rollout --------------------------------------------------------

TEST(Canary, HealthyCandidatePromotesFleetWide) {
  ReplicatedRegistry reg(4);
  reg.publish_all(make_shared_model(42), "bootstrap");
  CanaryOptions opt;
  opt.canary_shards = 1;
  // Same weights as the incumbent: zero drift, zero errors.
  const auto outcome =
      reg.publish_canary(make_shared_model(42), "retrain", opt,
                         make_probes(8));
  ASSERT_TRUE(outcome->decided);
  EXPECT_TRUE(outcome->promoted);
  EXPECT_FALSE(outcome->rolled_back);
  EXPECT_DOUBLE_EQ(outcome->steering_drift, 0.0);
  EXPECT_DOUBLE_EQ(outcome->error_rate, 0.0);
  EXPECT_EQ(reg.promotions(), 1u);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(reg.shard(s).version(), 2u) << "shard " << s;
  }
}

TEST(Canary, CorruptedCandidateRollsBackAndNeverReachesTheFleet) {
  ReplicatedRegistry reg(4);
  const auto good = make_shared_model(42);
  reg.publish_all(good, "bootstrap");
  CanaryOptions opt;
  opt.canary_shards = 1;
  const auto outcome = reg.publish_canary(
      std::make_shared<BrokenModel>(make_shared_model(42)), "bad-retrain",
      opt, make_probes(8));
  ASSERT_TRUE(outcome->decided);
  EXPECT_TRUE(outcome->rolled_back);
  EXPECT_FALSE(outcome->promoted);
  EXPECT_DOUBLE_EQ(outcome->error_rate, 1.0);
  EXPECT_EQ(reg.rollbacks(), 1u);

  // Non-canary shards never saw the candidate; the slice reverted to the
  // incumbent model object.
  for (std::size_t s = 1; s < 4; ++s) {
    EXPECT_EQ(reg.shard(s).version(), 1u) << "shard " << s;
    EXPECT_EQ(reg.shard(s).current()->model.get(), good.get());
  }
  EXPECT_EQ(reg.shard(0).current()->model.get(), good.get());
  EXPECT_GT(reg.shard(0).version(), outcome->canary_version);
}

TEST(Canary, MidRunBakeGatesOnTheVirtualClockAndShieldsOtherShards) {
  util::EventQueue queue;
  ReplicatedRegistry reg(2);
  reg.publish_all(make_shared_model(42), "bootstrap");

  FleetOptions opt;
  opt.cars = 4;
  opt.shards = 2;
  opt.duration_s = 1.0;
  opt.mean_interarrival_s = 0.01;
  opt.batcher.max_batch = 8;
  opt.batcher.max_delay_s = 0.01;
  opt.seed = 11;
  FleetService service(queue, reg, opt);

  std::shared_ptr<const CanaryOutcome> outcome;
  queue.schedule_at(0.3, [&] {
    CanaryOptions copt;
    copt.canary_shards = 1;
    copt.bake_s = 0.2;  // gate fires at t = 0.5, mid-run
    outcome = reg.publish_canary(
        std::make_shared<BrokenModel>(make_shared_model(42)), "bad", copt,
        make_probes(8), &queue);
  });

  const ServeReport r = service.run();
  ASSERT_NE(outcome, nullptr);
  ASSERT_TRUE(outcome->decided);
  EXPECT_TRUE(outcome->rolled_back);

  // Requests kept flowing throughout the bake and rollback.
  EXPECT_EQ(r.requests, r.completed + r.shed);
  // Shard 1 (non-canary) never served the corrupted version; shard 0
  // served it only during the bake window.
  bool canary_served = false;
  for (const ServeRecord& rec : r.records) {
    if (rec.model_version == outcome->canary_version) {
      canary_served = true;
      EXPECT_EQ(rec.shard, 0u);
      EXPECT_GE(rec.t_dispatch, 0.3);
    }
  }
  EXPECT_TRUE(canary_served);
  EXPECT_EQ(reg.shard(1).version(), 1u);
}

}  // namespace
}  // namespace autolearn::serve
