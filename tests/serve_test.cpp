// Fleet serving tier: dynamic batcher unit tests, model registry hot-swap,
// and end-to-end FleetService runs on the simulated clock — determinism
// (same seed -> bitwise-identical batch boundaries and report), admission
// control / load shedding, and the circuit breaker guarding the cloud
// worker.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/batcher.hpp"
#include "serve/errors.hpp"
#include "serve/model_registry.hpp"
#include "serve/service.hpp"
#include "util/event_queue.hpp"

namespace autolearn::serve {
namespace {

std::shared_ptr<ml::DrivingModel> make_shared_model(
    ml::ModelType type = ml::ModelType::Linear, std::uint64_t seed = 42) {
  ml::ModelConfig cfg;
  cfg.seed = seed;
  return std::shared_ptr<ml::DrivingModel>(ml::make_model(type, cfg));
}

// --- dynamic batcher -------------------------------------------------------

TEST(DynamicBatcher, ValidatesConfig) {
  BatcherConfig bad;
  bad.max_batch = 0;
  EXPECT_THROW(DynamicBatcher{bad}, std::invalid_argument);
  bad = BatcherConfig{};
  bad.max_delay_s = -1.0;
  EXPECT_THROW(DynamicBatcher{bad}, std::invalid_argument);
}

TEST(DynamicBatcher, FlushesOnCapOrDeadline) {
  BatcherConfig cfg;
  cfg.max_batch = 3;
  cfg.max_delay_s = 0.5;
  DynamicBatcher b(cfg);
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.ready(0.0));
  EXPECT_TRUE(std::isinf(b.deadline()));

  ServeRequest r;
  r.id = 1;
  r.t_arrive = 1.0;
  b.push(r);
  // One request: not full, flushes only when the oldest ages out.
  EXPECT_FALSE(b.ready(1.0));
  EXPECT_DOUBLE_EQ(b.deadline(), 1.5);
  EXPECT_TRUE(b.ready(1.5));

  r.id = 2;
  b.push(r);
  EXPECT_FALSE(b.ready(1.2));
  r.id = 3;
  b.push(r);
  // Cap reached: ready regardless of age.
  EXPECT_TRUE(b.full());
  EXPECT_TRUE(b.ready(1.2));
}

TEST(DynamicBatcher, TakeIsFifoAndCapped) {
  BatcherConfig cfg;
  cfg.max_batch = 2;
  DynamicBatcher b(cfg);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    ServeRequest r;
    r.id = id;
    b.push(r);
  }
  const auto first = b.take();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].id, 1u);
  EXPECT_EQ(first[1].id, 2u);
  EXPECT_EQ(b.pending(), 3u);
  const auto second = b.take();
  EXPECT_EQ(second[0].id, 3u);
  const auto third = b.take();
  ASSERT_EQ(third.size(), 1u);
  EXPECT_EQ(third[0].id, 5u);
  EXPECT_TRUE(b.empty());
}

// --- model registry --------------------------------------------------------

TEST(ModelRegistry, VersionsAreMonotonicAndSwapIsAtomic) {
  ModelRegistry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.version(), 0u);
  EXPECT_THROW(reg.publish(nullptr), std::invalid_argument);

  EXPECT_EQ(reg.publish(make_shared_model(), "bootstrap"), 1u);
  const auto v1 = reg.current();
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->tag, "bootstrap");
  EXPECT_EQ(reg.swaps(), 0u);

  EXPECT_EQ(reg.publish(make_shared_model(ml::ModelType::Linear, 7),
                        "retrain-1"),
            2u);
  // The old snapshot stays valid for in-flight batches; the registry
  // serves the new one.
  EXPECT_EQ(v1->version, 1u);
  EXPECT_NE(v1->model, nullptr);
  EXPECT_EQ(reg.version(), 2u);
  EXPECT_EQ(reg.swaps(), 1u);
}

// --- fleet service ---------------------------------------------------------

struct FleetOut {
  ServeReport report;
  std::string metrics_json;
  fault::CircuitBreaker::State breaker_state{};
};

FleetOut run_fleet(FleetOptions options, std::uint64_t model_seed = 42,
                   double swap_at_s = -1.0) {
  util::EventQueue queue;
  obs::MetricsRegistry metrics;
  options.continuum.metrics = &metrics;
  ModelRegistry registry;
  registry.publish(make_shared_model(ml::ModelType::Linear, model_seed),
                   "bootstrap");
  if (swap_at_s >= 0.0) {
    queue.schedule_at(swap_at_s, [&registry] {
      registry.publish(make_shared_model(ml::ModelType::Linear, 1234),
                       "retrain-1");
    });
  }
  FleetService service(queue, registry, options);
  FleetOut out;
  out.report = service.run();
  out.metrics_json = metrics.to_json().dump();
  out.breaker_state = service.breaker().state();
  return out;
}

FleetOptions small_cloud_fleet() {
  FleetOptions opt;
  opt.cars = 4;
  opt.duration_s = 1.0;
  opt.mean_interarrival_s = 0.01;
  opt.batcher.max_batch = 8;
  opt.batcher.max_delay_s = 0.01;
  opt.placement = core::Placement::Cloud;
  opt.seed = 11;
  return opt;
}

TEST(FleetService, SameSeedIsBitwiseIdentical) {
  const FleetOut a = run_fleet(small_cloud_fleet());
  const FleetOut b = run_fleet(small_cloud_fleet());
  // Batch boundaries are the determinism fingerprint; the JSON snapshot
  // pins every aggregate, quantile, and the degradation block too.
  EXPECT_EQ(a.report.batch_sizes, b.report.batch_sizes);
  EXPECT_EQ(a.report.to_json().dump(), b.report.to_json().dump());
  EXPECT_EQ(a.report.summary(), b.report.summary());
  EXPECT_EQ(a.metrics_json, b.metrics_json);

  FleetOptions other = small_cloud_fleet();
  other.seed = 12;
  const FleetOut c = run_fleet(other);
  EXPECT_NE(a.report.to_json().dump(), c.report.to_json().dump());
}

TEST(FleetService, EveryArrivalIsAnswered) {
  const FleetOut out = run_fleet(small_cloud_fleet());
  const ServeReport& r = out.report;
  EXPECT_GT(r.requests, 100u);
  // Conservation: shed requests degrade to the edge, they never vanish.
  EXPECT_EQ(r.requests, r.completed + r.shed);
  EXPECT_EQ(r.records.size(), r.requests);
  EXPECT_GT(r.throughput_rps, 0.0);
  EXPECT_GE(r.duration_s, 1.0);
  std::size_t batched = 0;
  for (std::size_t s : r.batch_sizes) {
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 8u);
    batched += s;
  }
  EXPECT_EQ(batched, r.completed);
  EXPECT_GT(r.mean_batch(), 1.0);  // arrivals outpace the 10 ms age-out
  EXPECT_GE(r.queued_quantile_s(0.99), r.queued_quantile_s(0.50));
}

TEST(FleetService, MetricsMirrorTheReport) {
  util::EventQueue queue;
  obs::MetricsRegistry metrics;
  ModelRegistry registry;
  registry.publish(make_shared_model());
  FleetOptions opt = small_cloud_fleet();
  opt.continuum.metrics = &metrics;
  FleetService service(queue, registry, opt);
  const ServeReport r = service.run();
  EXPECT_EQ(metrics.counter_value("serve.requests"), r.requests);
  EXPECT_EQ(metrics.counter_value("serve.batches"), r.batches);
  const obs::Histogram* sizes = metrics.find_histogram("serve.batch_size");
  ASSERT_NE(sizes, nullptr);
  EXPECT_EQ(sizes->count(), r.batches);
  EXPECT_DOUBLE_EQ(metrics.gauge_value("serve.queue_depth"), 0.0);
}

TEST(FleetService, CapOneMeansNoBatching) {
  FleetOptions opt = small_cloud_fleet();
  opt.batcher.max_batch = 1;
  const FleetOut out = run_fleet(opt);
  for (std::size_t s : out.report.batch_sizes) EXPECT_EQ(s, 1u);
  EXPECT_EQ(out.report.batches, out.report.completed);
}

TEST(FleetService, OnDeviceNeverTouchesTheCloud) {
  FleetOptions opt = small_cloud_fleet();
  opt.placement = core::Placement::OnDevice;
  const FleetOut out = run_fleet(opt);
  EXPECT_EQ(out.report.cloud_batches, 0u);
  EXPECT_EQ(out.report.edge_batches, out.report.batches);
  EXPECT_DOUBLE_EQ(out.report.degradation.cloud_usage, 0.0);
  for (const ServeRecord& rec : out.report.records) {
    EXPECT_EQ(rec.tier, Tier::Edge);
  }
}

TEST(FleetService, OverloadShedsToEdgePerSample) {
  FleetOptions opt = small_cloud_fleet();
  // Scale FLOPs far past the arrival stream's service rate; with the
  // worker saturated, a tiny budget forces admission control to shed.
  opt.continuum.flops_scale = 30000.0;
  opt.mean_interarrival_s = 0.002;
  opt.duration_s = 0.3;
  opt.queue_budget = 4;
  opt.batcher.max_batch = 4;
  const FleetOut out = run_fleet(opt);
  const ServeReport& r = out.report;
  EXPECT_GT(r.shed, 0u);
  EXPECT_EQ(r.requests, r.completed + r.shed);
  for (const ServeRecord& rec : r.records) {
    if (rec.shed) {
      // Shed requests never queue: the car's own edge answers per-sample.
      EXPECT_EQ(rec.tier, Tier::Edge);
      EXPECT_EQ(rec.batch, 1u);
      EXPECT_GT(rec.total_s(), 0.0);
    }
  }
}

TEST(FleetService, BreakerTripsAndFailsOverToEdge) {
  FleetOptions opt = small_cloud_fleet();
  opt.continuum.cloud_probe = [](double) { return false; };
  opt.continuum.breaker.failure_threshold = 3;
  opt.continuum.breaker.open_duration_s = 0.2;
  const FleetOut out = run_fleet(opt);
  const ServeReport& r = out.report;
  // Probes fail -> failovers; the trip denies later batches outright.
  EXPECT_GE(r.failover_batches, 3u);
  EXPECT_GT(r.denied, 0u);
  EXPECT_EQ(r.cloud_batches, 0u);
  EXPECT_EQ(r.edge_batches, r.batches);
  EXPECT_GE(r.degradation.failovers, 1u);
  EXPECT_GT(r.degradation.denied_calls, 0u);
  EXPECT_GT(r.degradation.degraded_time_s, 0.0);
  // Degraded, not broken: every request still gets a command.
  EXPECT_EQ(r.requests, r.completed + r.shed);
  EXPECT_NE(out.breaker_state, fault::CircuitBreaker::State::Closed);
}

TEST(FleetService, BreakerRecoversWhenTheCloudComesBack) {
  FleetOptions opt = small_cloud_fleet();
  // Cloud dark for the first 300 ms, healthy afterwards.
  opt.continuum.cloud_probe = [](double now) { return now >= 0.3; };
  opt.continuum.breaker.failure_threshold = 2;
  opt.continuum.breaker.open_duration_s = 0.05;
  const FleetOut out = run_fleet(opt);
  const ServeReport& r = out.report;
  EXPECT_GE(r.degradation.failovers, 1u);
  EXPECT_GT(r.cloud_batches, 0u);  // service went back to the cloud
  EXPECT_GT(r.edge_batches, 0u);   // ... after riding out the outage on edge
  EXPECT_EQ(out.breaker_state, fault::CircuitBreaker::State::Closed);
  EXPECT_GE(r.degradation.recovery_latency_s, 0.0);
  EXPECT_EQ(r.requests, r.completed + r.shed);
}

TEST(FleetService, HotSwapServesBothVersions) {
  const FleetOut out =
      run_fleet(small_cloud_fleet(), /*model_seed=*/42, /*swap_at_s=*/0.5);
  const ServeReport& r = out.report;
  ASSERT_EQ(r.requests_by_version.size(), 2u);
  EXPECT_GT(r.requests_by_version.at(1), 0u);
  EXPECT_GT(r.requests_by_version.at(2), 0u);
  std::size_t by_version_total = 0;
  for (const auto& [version, count] : r.requests_by_version) {
    by_version_total += count;
  }
  EXPECT_EQ(by_version_total, r.requests);
  // Versions only move forward along the timeline.
  double last_v2_free_t = 0.0;
  for (const ServeRecord& rec : r.records) {
    if (rec.model_version == 1) {
      EXPECT_LE(rec.t_dispatch, 0.5 + 1e-9);
    } else {
      last_v2_free_t = std::max(last_v2_free_t, rec.t_dispatch);
      EXPECT_GE(rec.t_dispatch, 0.5 - 1e-9);
    }
  }
  EXPECT_GT(last_v2_free_t, 0.5);
}

TEST(FleetService, ValidatesOptionsAndLifecycle) {
  util::EventQueue queue;
  ModelRegistry registry;
  FleetOptions opt = small_cloud_fleet();
  opt.cars = 0;
  EXPECT_THROW(FleetService(queue, registry, opt), std::invalid_argument);
  opt = small_cloud_fleet();
  opt.queue_budget = 0;
  EXPECT_THROW(FleetService(queue, registry, opt), std::invalid_argument);

  // No published model: run() refuses instead of serving nothing.
  FleetService empty(queue, registry, small_cloud_fleet());
  EXPECT_THROW(empty.run(), std::logic_error);

  registry.publish(make_shared_model());
  util::EventQueue queue2;
  FleetService once(queue2, registry, small_cloud_fleet());
  once.run();
  EXPECT_THROW(once.run(), std::logic_error);
}

TEST(FleetService, ConfigErrorsNameTheOffendingField) {
  util::EventQueue queue;
  ModelRegistry registry;
  const auto field_of = [&](FleetOptions opt) -> std::string {
    try {
      FleetService service(queue, registry, opt);
    } catch (const ConfigError& e) {
      return e.field();
    }
    return "<no throw>";
  };
  FleetOptions opt = small_cloud_fleet();
  opt.cars = 0;
  EXPECT_EQ(field_of(opt), "fleet.cars");
  opt = small_cloud_fleet();
  opt.duration_s = 0.0;
  EXPECT_EQ(field_of(opt), "fleet.duration_s");
  opt = small_cloud_fleet();
  opt.mean_interarrival_s = -1.0;
  EXPECT_EQ(field_of(opt), "fleet.mean_interarrival_s");
  opt = small_cloud_fleet();
  opt.shards = 0;
  EXPECT_EQ(field_of(opt), "fleet.shards");
  opt = small_cloud_fleet();
  opt.ring_replicas = 0;
  EXPECT_EQ(field_of(opt), "fleet.ring_replicas");
  opt = small_cloud_fleet();
  opt.sites = {"chi-uc", ""};
  EXPECT_EQ(field_of(opt), "fleet.sites");
  opt = small_cloud_fleet();
  opt.health.timeout_s = 0.0;
  EXPECT_EQ(field_of(opt), "health.timeout_s");
  opt = small_cloud_fleet();
  opt.batcher.max_batch = 0;
  EXPECT_EQ(field_of(opt), "batcher.max_batch");
  // The typed error still reads as the message the old tests pinned.
  try {
    opt = small_cloud_fleet();
    opt.queue_budget = 0;
    FleetService service(queue, registry, opt);
    FAIL() << "must throw";
  } catch (const ConfigError& e) {
    EXPECT_STREQ(e.what(), "serve config: fleet.queue_budget: must be >= 1");
  }
}

TEST(ModelRegistry, PublishRacingAnInFlightBatchStaysOnItsPinnedSnapshot) {
  // A batch snapshots the registry at formation time; a publish() landing
  // while that batch is in flight must not change what the batch computes.
  ModelRegistry reg;
  reg.publish(make_shared_model(ml::ModelType::Linear, 42), "v1");
  const auto pinned = reg.current();  // batch formation
  ml::Sample obs;
  obs.frames.emplace_back(32, 24, 0.5f);
  ml::Prediction before;
  pinned->model->predict_batch(&obs, 1, &before);

  reg.publish(make_shared_model(ml::ModelType::Linear, 1234),
              "race");  // racing publish

  ml::Prediction after;
  pinned->model->predict_batch(&obs, 1, &after);
  EXPECT_EQ(pinned->version, 1u);
  EXPECT_EQ(pinned->tag, "v1");
  EXPECT_DOUBLE_EQ(after.steering, before.steering);
  EXPECT_DOUBLE_EQ(after.throttle, before.throttle);

  // The next batch to form sees the new version.
  EXPECT_EQ(reg.current()->version, 2u);
  ml::Prediction swapped;
  reg.current()->model->predict_batch(&obs, 1, &swapped);
  EXPECT_NE(swapped.steering, before.steering);
}

}  // namespace
}  // namespace autolearn::serve
