// Golden-trace regression for the fleet serving tier (ctest -L trace).
//
// A small serving scenario exercises the whole pipeline on the virtual
// clock — dynamic batching, a cloud outage tripping the breaker, load
// shedding under a full-scale flops profile, and a mid-run model hot-swap.
// The canonical trace is its behavioral fingerprint; any drift in batch
// boundaries, breaker timing, or shed decisions moves a span and fails the
// byte comparison.
//
// Regenerate after an *intended* behavioral change with:
//   AUTOLEARN_REGEN_GOLDEN=1 ./serve_trace_test
// and commit the updated tests/golden/ file with the change that moved it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/model_registry.hpp"
#include "serve/service.hpp"
#include "util/event_queue.hpp"
#include "util/json.hpp"

namespace autolearn {
namespace {

#ifndef AUTOLEARN_GOLDEN_DIR
#error "serve_trace_test requires AUTOLEARN_GOLDEN_DIR"
#endif

struct ServeOut {
  std::string trace;
  std::string metrics;
  serve::ServeReport report;
};

/// Three cars against a cloud-placed service for 0.3 virtual seconds at
/// full-scale FLOPs: the slow worker backs the queue up past the budget
/// (sheds), the cloud goes dark in [0.10, 0.20) (breaker trips, fails
/// over, recovers), and a retrained model hot-swaps in at 0.15.
ServeOut run_small_serve(std::uint64_t seed) {
  util::EventQueue queue;
  obs::Tracer tracer;
  tracer.use_clock([&queue] { return queue.now(); });
  obs::MetricsRegistry metrics;

  serve::ModelRegistry registry;
  registry.instrument(&tracer, &metrics);
  ml::ModelConfig cfg;
  cfg.seed = 42;
  registry.publish(
      std::shared_ptr<ml::DrivingModel>(
          ml::make_model(ml::ModelType::Linear, cfg)),
      "bootstrap");
  queue.schedule_at(0.15, [&registry] {
    ml::ModelConfig retrained;
    retrained.seed = 1234;
    registry.publish(
        std::shared_ptr<ml::DrivingModel>(
            ml::make_model(ml::ModelType::Linear, retrained)),
        "retrain-1");
  });

  serve::FleetOptions opt;
  opt.cars = 3;
  opt.duration_s = 0.3;
  opt.mean_interarrival_s = 0.008;
  opt.batcher.max_batch = 4;
  opt.batcher.max_delay_s = 0.01;
  opt.placement = core::Placement::Cloud;
  opt.queue_budget = 6;
  opt.seed = seed;
  opt.continuum.flops_scale = 1500.0;  // the paper's 160x120 full stack
  // One dark probe trips the breaker: the failover batch runs on the Pi,
  // which is slow enough at full scale that a second pre-recovery probe
  // would never happen.
  opt.continuum.breaker.failure_threshold = 1;
  opt.continuum.breaker.open_duration_s = 0.05;
  opt.continuum.cloud_probe = [](double now) {
    return now < 0.10 || now >= 0.20;
  };
  opt.continuum.tracer = &tracer;
  opt.continuum.metrics = &metrics;

  serve::FleetService service(queue, registry, opt);
  ServeOut out;
  out.report = service.run();
  out.trace = tracer.dump();
  out.metrics = metrics.to_json().dump();
  return out;
}

std::string golden_path() {
  return std::string(AUTOLEARN_GOLDEN_DIR) + "/serve_small.trace.json";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(GoldenServeTrace, SmallServeMatchesSnapshot) {
  const ServeOut run = run_small_serve(9);
  if (std::getenv("AUTOLEARN_REGEN_GOLDEN")) {
    std::ofstream out(golden_path(), std::ios::binary);
    out << run.trace;
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  EXPECT_EQ(run.trace, read_file(golden_path()))
      << "Canonical serve trace drifted from tests/golden/. If the "
         "behavioral change is intended, run AUTOLEARN_REGEN_GOLDEN=1 "
         "./serve_trace_test and commit the new snapshot.";
}

TEST(GoldenServeTrace, ScenarioCoversTheServeSpanCatalog) {
  const ServeOut run = run_small_serve(9);
  for (const char* needle :
       {"serve.request", "serve.batch", "serve.shed", "serve.model_swap",
        "fault.breaker"}) {
    EXPECT_NE(run.trace.find(needle), std::string::npos)
        << "missing " << needle;
  }
  // The scenario must actually exercise every degraded path it claims to.
  EXPECT_GT(run.report.shed, 0u);
  EXPECT_GE(run.report.degradation.failovers, 1u);
  EXPECT_GT(run.report.cloud_batches, 0u);
  EXPECT_GT(run.report.edge_batches, 0u);
  EXPECT_EQ(run.report.requests_by_version.size(), 2u);
}

TEST(ServeTraceDeterminism, SameSeedSameBytes) {
  const ServeOut a = run_small_serve(9);
  const ServeOut b = run_small_serve(9);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.report.to_json().dump(), b.report.to_json().dump());

  const ServeOut c = run_small_serve(10);
  EXPECT_NE(a.trace, c.trace);
}

TEST(ServeTraceDeterminism, ExportIsValidChromeTraceEventFormat) {
  const ServeOut run = run_small_serve(9);
  const util::Json parsed = util::Json::parse(run.trace);
  const auto& events = parsed.at("traceEvents").as_array();
  ASSERT_GT(events.size(), 10u);
  for (const util::Json& e : events) {
    ASSERT_TRUE(e.contains("name"));
    ASSERT_TRUE(e.contains("ph"));
    ASSERT_TRUE(e.contains("ts"));
  }
}

}  // namespace
}  // namespace autolearn
