#include <gtest/gtest.h>

#include "testbed/deployment.hpp"
#include "testbed/identity.hpp"
#include "testbed/inventory.hpp"
#include "testbed/lease.hpp"

namespace autolearn::testbed {
namespace {

// --- identity ---------------------------------------------------------------

TEST(Identity, UserRegistrationAndLogin) {
  IdentityService id;
  id.add_user("alice", "University of Missouri");
  EXPECT_TRUE(id.has_user("alice"));
  EXPECT_FALSE(id.has_user("bob"));
  const Session s = id.login("alice");
  EXPECT_EQ(s.username, "alice");
  EXPECT_EQ(id.user_for_token(s.token), "alice");
  EXPECT_FALSE(id.user_for_token("bogus").has_value());
  EXPECT_THROW(id.login("bob"), std::invalid_argument);
  EXPECT_THROW(id.add_user("", "x"), std::invalid_argument);
}

TEST(Identity, TokensAreUnique) {
  IdentityService id;
  id.add_user("alice", "MU");
  const Session a = id.login("alice");
  const Session b = id.login("alice");
  EXPECT_NE(a.token, b.token);
}

TEST(Identity, ProjectLifecycle) {
  IdentityService id;
  id.add_user("kate", "ANL");
  id.add_user("kyle", "MJC");
  Project& p = id.create_project("CHI-edu-1", "AutoLearn class",
                                 ProjectDomain::Education, "kate");
  EXPECT_EQ(p.members.size(), 1u);  // PI auto-member
  EXPECT_TRUE(id.is_member("CHI-edu-1", "kate"));
  EXPECT_FALSE(id.is_member("CHI-edu-1", "kyle"));
  id.add_member("CHI-edu-1", "kyle");
  EXPECT_TRUE(id.is_member("CHI-edu-1", "kyle"));
  id.deactivate_project("CHI-edu-1");
  EXPECT_FALSE(id.is_member("CHI-edu-1", "kyle"));  // inactive project
}

TEST(Identity, ProjectValidation) {
  IdentityService id;
  id.add_user("kate", "ANL");
  id.create_project("P1", "t", ProjectDomain::Research, "kate");
  EXPECT_THROW(id.create_project("P1", "t", ProjectDomain::Research, "kate"),
               std::invalid_argument);
  EXPECT_THROW(id.create_project("P2", "t", ProjectDomain::Research, "ghost"),
               std::invalid_argument);
  EXPECT_THROW(id.add_member("P1", "ghost"), std::invalid_argument);
  EXPECT_THROW(id.add_member("nope", "kate"), std::invalid_argument);
  EXPECT_THROW(id.project("nope"), std::invalid_argument);
}

// --- inventory ---------------------------------------------------------------

TEST(Inventory, ChameleonFleetMatchesPaper) {
  const Inventory inv = Inventory::chameleon();
  // "40 nodes with a single Nvidia RTX6000 GPU"
  EXPECT_EQ(inv.count_of_type("gpu_rtx6000"), 40u);
  // "sets of 4 nodes each with 4x Nvidia V100, P100, or A100"
  EXPECT_EQ(inv.count_of_type("gpu_v100"), 4u);
  EXPECT_EQ(inv.count_of_type("gpu_p100"), 4u);
  EXPECT_EQ(inv.count_of_type("gpu_a100"), 4u);
  EXPECT_EQ(inv.count_of_type("gpu_v100_nvlink"), 4u);
  // "Smaller numbers of nodes with other architectures (M40, K80, MI100)"
  EXPECT_GT(inv.count_of_type("gpu_m40"), 0u);
  EXPECT_GT(inv.count_of_type("gpu_k80"), 0u);
  EXPECT_GT(inv.count_of_type("gpu_mi100"), 0u);
  // Two principal sites.
  EXPECT_EQ(inv.sites().size(), 2u);
}

TEST(Inventory, NodeIdsUniqueAndResolvable) {
  const Inventory inv = Inventory::chameleon();
  std::set<std::string> ids;
  for (const Node& n : inv.nodes()) ids.insert(n.id);
  EXPECT_EQ(ids.size(), inv.nodes().size());
  const Node& first = inv.nodes().front();
  EXPECT_EQ(inv.node(first.id).id, first.id);
  EXPECT_THROW(inv.node("nope"), std::invalid_argument);
}

TEST(Inventory, FourGpuNodesHaveInterconnect) {
  const Inventory inv = Inventory::chameleon();
  for (const Node* n : inv.nodes_of_type("gpu_v100_nvlink")) {
    EXPECT_EQ(n->type.gpu_count, 4);
    EXPECT_EQ(n->type.interconnect, gpu::Interconnect::NVLink);
  }
}

TEST(Inventory, AddNodesValidatesGpuName) {
  Inventory inv;
  NodeType bad{"gpu_bogus", "NotAGpu", 1, gpu::Interconnect::None};
  EXPECT_THROW(inv.add_nodes("site", bad, 1), std::invalid_argument);
}

// --- lease ---------------------------------------------------------------------

TEST(Lease, GrantsWhenCapacityAvailable) {
  const Inventory inv = Inventory::chameleon();
  LeaseManager lm(inv);
  LeaseRequest req;
  req.project_id = "CHI-edu-1";
  req.node_type = "gpu_v100";
  req.count = 2;
  req.start = 0;
  req.duration = 3600;
  const auto id = lm.request(req);
  ASSERT_TRUE(id);
  const Lease& lease = lm.lease(*id);
  EXPECT_EQ(lease.node_ids.size(), 2u);
  EXPECT_EQ(lease.status, LeaseStatus::Pending);
  EXPECT_EQ(lm.available("gpu_v100", 0, 3600), 2u);  // 4 total - 2 leased
}

TEST(Lease, RejectsWhenOverCommitted) {
  const Inventory inv = Inventory::chameleon();
  LeaseManager lm(inv);
  LeaseRequest req;
  req.project_id = "p";
  req.node_type = "gpu_a100";
  req.count = 4;
  req.duration = 3600;
  ASSERT_TRUE(lm.request(req));
  EXPECT_FALSE(lm.request(req));  // all 4 taken
  EXPECT_EQ(lm.rejected_requests(), 1u);
}

TEST(Lease, NonOverlappingIntervalsShareNodes) {
  const Inventory inv = Inventory::chameleon();
  LeaseManager lm(inv);
  LeaseRequest morning;
  morning.project_id = "class-a";
  morning.node_type = "gpu_a100";
  morning.count = 4;
  morning.start = 0;
  morning.duration = 3600;
  LeaseRequest afternoon = morning;
  afternoon.project_id = "class-b";
  afternoon.start = 3600;
  EXPECT_TRUE(lm.request(morning));
  EXPECT_TRUE(lm.request(afternoon));  // back-to-back is fine
}

TEST(Lease, AdvanceReservationGuaranteesSlot) {
  // Reserve ahead for a class; later on-demand requests cannot steal it.
  const Inventory inv = Inventory::chameleon();
  LeaseManager lm(inv);
  LeaseRequest advance;
  advance.project_id = "class";
  advance.node_type = "gpu_p100";
  advance.count = 4;
  advance.start = 7200;  // class starts in 2 hours
  advance.duration = 3600;
  ASSERT_TRUE(lm.request(advance));
  // On-demand request that would overlap the class slot.
  const auto od = lm.request_on_demand("walkin", "gpu_p100", 1, 7000, 3600);
  EXPECT_FALSE(od);
  // But a request that ends before the class is fine.
  EXPECT_TRUE(lm.request_on_demand("walkin", "gpu_p100", 1, 3000, 3600));
}

TEST(Lease, CancelFreesCapacity) {
  const Inventory inv = Inventory::chameleon();
  LeaseManager lm(inv);
  LeaseRequest req;
  req.project_id = "p";
  req.node_type = "gpu_a100";
  req.count = 4;
  req.duration = 3600;
  const auto id = lm.request(req);
  ASSERT_TRUE(id);
  EXPECT_FALSE(lm.request(req));
  lm.cancel(*id);
  EXPECT_TRUE(lm.request(req));
}

TEST(Lease, TickAdvancesStates) {
  const Inventory inv = Inventory::chameleon();
  LeaseManager lm(inv);
  LeaseRequest req;
  req.project_id = "p";
  req.node_type = "gpu_v100";
  req.count = 1;
  req.start = 100;
  req.duration = 50;
  const auto id = lm.request(req);
  ASSERT_TRUE(id);
  lm.tick(50);
  EXPECT_EQ(lm.lease(*id).status, LeaseStatus::Pending);
  lm.tick(120);
  EXPECT_EQ(lm.lease(*id).status, LeaseStatus::Active);
  lm.tick(200);
  EXPECT_EQ(lm.lease(*id).status, LeaseStatus::Ended);
  EXPECT_THROW(lm.cancel(*id), std::logic_error);
}

TEST(Lease, UtilizationAccounting) {
  const Inventory inv = Inventory::chameleon();
  LeaseManager lm(inv);
  // Lease all 4 A100 nodes for half the window.
  LeaseRequest req;
  req.project_id = "p";
  req.node_type = "gpu_a100";
  req.count = 4;
  req.start = 0;
  req.duration = 1800;
  ASSERT_TRUE(lm.request(req));
  EXPECT_NEAR(lm.utilization("gpu_a100", 0, 3600), 0.5, 1e-9);
  EXPECT_NEAR(lm.utilization("gpu_rtx6000", 0, 3600), 0.0, 1e-9);
  EXPECT_THROW(lm.utilization("gpu_a100", 10, 10), std::invalid_argument);
}

TEST(Lease, Validation) {
  const Inventory inv = Inventory::chameleon();
  LeaseManager lm(inv);
  LeaseRequest bad;
  bad.count = 0;
  EXPECT_THROW(lm.request(bad), std::invalid_argument);
  EXPECT_THROW(lm.lease(42), std::invalid_argument);
  EXPECT_THROW(lm.cancel(42), std::invalid_argument);
}

// --- deployment -------------------------------------------------------------------

TEST(Deployment, FullProvisioningFlow) {
  const Inventory inv = Inventory::chameleon();
  LeaseManager lm(inv);
  util::EventQueue q;
  DeploymentService ds(lm, q);
  const auto lease_id =
      lm.request_on_demand("p", "gpu_v100", 1, q.now(), 7200);
  ASSERT_TRUE(lease_id);
  lm.tick(q.now());

  bool ready = false;
  const auto dep_id = ds.deploy(*lease_id, ImageSpec::autolearn_trainer(),
                                [&](const Deployment& d) {
                                  ready = true;
                                  EXPECT_EQ(d.state, DeployState::Active);
                                });
  EXPECT_EQ(ds.deployment(dep_id).state, DeployState::Provisioning);
  q.run_until(539);
  EXPECT_EQ(ds.deployment(dep_id).state, DeployState::Provisioning);
  q.run_until(600);
  EXPECT_EQ(ds.deployment(dep_id).state, DeployState::Configuring);
  q.run();
  EXPECT_TRUE(ready);
  EXPECT_EQ(ds.active_count(), 1u);
  // cudnn(120) + tensorflow(180) + donkey(90) after the 540 s provision.
  EXPECT_NEAR(ds.deployment(dep_id).ready_at, 540 + 390, 1e-9);
}

TEST(Deployment, RejectsCancelledLease) {
  const Inventory inv = Inventory::chameleon();
  LeaseManager lm(inv);
  util::EventQueue q;
  DeploymentService ds(lm, q);
  const auto lease_id = lm.request_on_demand("p", "gpu_v100", 1, 0, 3600);
  ASSERT_TRUE(lease_id);
  lm.cancel(*lease_id);
  EXPECT_THROW(ds.deploy(*lease_id, ImageSpec::jupyter_server()),
               std::logic_error);
}

TEST(Deployment, UnknownIdThrows) {
  const Inventory inv = Inventory::chameleon();
  LeaseManager lm(inv);
  util::EventQueue q;
  DeploymentService ds(lm, q);
  EXPECT_THROW(ds.deployment(9), std::invalid_argument);
}

TEST(Deployment, ImageSpecsHavePackages) {
  const ImageSpec trainer = ImageSpec::autolearn_trainer();
  EXPECT_EQ(trainer.name, "ubuntu20.04-cuda");
  EXPECT_EQ(trainer.packages.size(), 3u);  // cudnn, tensorflow, donkeycar
  const ImageSpec jupyter = ImageSpec::jupyter_server();
  EXPECT_FALSE(jupyter.packages.empty());
}

}  // namespace
}  // namespace autolearn::testbed
