#include "track/track.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "track/geometry.hpp"
#include "track/path_builder.hpp"
#include "util/units.hpp"

namespace autolearn::track {
namespace {

TEST(Vec2, Arithmetic) {
  Vec2 a{1, 2}, b{3, -1};
  EXPECT_DOUBLE_EQ((a + b).x, 4);
  EXPECT_DOUBLE_EQ((a - b).y, 3);
  EXPECT_DOUBLE_EQ((a * 2).y, 4);
  EXPECT_DOUBLE_EQ(a.dot(b), 1);
  EXPECT_DOUBLE_EQ(a.cross(b), -7);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}.norm()), 5);
}

TEST(Vec2, PerpRotatesLeft) {
  const Vec2 east{1, 0};
  EXPECT_NEAR(east.perp().x, 0, 1e-12);
  EXPECT_NEAR(east.perp().y, 1, 1e-12);
}

TEST(Vec2, RotatedQuarterTurn) {
  const Vec2 v{1, 0};
  const Vec2 r = v.rotated(M_PI / 2);
  EXPECT_NEAR(r.x, 0, 1e-12);
  EXPECT_NEAR(r.y, 1, 1e-12);
}

TEST(Vec2, NormalizedZeroVectorSafe) {
  const Vec2 z = Vec2{0, 0}.normalized();
  EXPECT_EQ(z.x, 0);
  EXPECT_EQ(z.y, 0);
}

TEST(Angles, WrapAngle) {
  EXPECT_NEAR(wrap_angle(3 * M_PI), M_PI, 1e-12);
  EXPECT_NEAR(wrap_angle(-3 * M_PI), M_PI, 1e-12);
  EXPECT_NEAR(wrap_angle(0.5), 0.5, 1e-12);
  EXPECT_NEAR(angle_diff(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(angle_diff(-M_PI + 0.05, M_PI - 0.05), 0.1, 1e-12);
}

TEST(PathBuilder, StraightLengthAndHeading) {
  PathBuilder b({0, 0}, 0.0);
  b.straight(2.0);
  EXPECT_NEAR(b.length(), 2.0, 1e-12);
  EXPECT_NEAR(b.position().x, 2.0, 1e-12);
  EXPECT_NEAR(b.position().y, 0.0, 1e-12);
}

TEST(PathBuilder, ArcTurnsLeftAndRight) {
  PathBuilder left({0, 0}, 0.0);
  left.arc(1.0, M_PI / 2);
  EXPECT_NEAR(left.position().x, 1.0, 1e-9);
  EXPECT_NEAR(left.position().y, 1.0, 1e-9);
  EXPECT_NEAR(left.heading(), M_PI / 2, 1e-9);

  PathBuilder right({0, 0}, 0.0);
  right.arc(1.0, -M_PI / 2);
  EXPECT_NEAR(right.position().x, 1.0, 1e-9);
  EXPECT_NEAR(right.position().y, -1.0, 1e-9);
  EXPECT_NEAR(right.heading(), -M_PI / 2, 1e-9);
}

TEST(PathBuilder, ArcLengthIsRTheta) {
  PathBuilder b({0, 0}, 0.0);
  b.arc(2.0, M_PI);
  EXPECT_NEAR(b.length(), 2.0 * M_PI, 1e-9);
}

TEST(PathBuilder, RejectsBadSegments) {
  PathBuilder b;
  EXPECT_THROW(b.straight(0), std::invalid_argument);
  EXPECT_THROW(b.straight(-1), std::invalid_argument);
  EXPECT_THROW(b.arc(0, 1), std::invalid_argument);
  EXPECT_THROW(b.arc(-1, 1), std::invalid_argument);
  EXPECT_THROW(b.arc(1, 0), std::invalid_argument);
}

TEST(PathBuilder, BuildRejectsOpenLoop) {
  PathBuilder b({0, 0}, 0.0);
  b.straight(1.0);
  EXPECT_THROW(b.build(/*close_loop=*/true), std::logic_error);
  EXPECT_NO_THROW(b.build(/*close_loop=*/false));
}

TEST(PathBuilder, BuildRejectsEmptyPath) {
  PathBuilder b;
  EXPECT_THROW(b.build(false), std::logic_error);
}

TEST(PathBuilder, StadiumCloses) {
  PathBuilder b({0, 0}, 0.0);
  b.straight(2).arc(1, M_PI).straight(2).arc(1, M_PI);
  EXPECT_NO_THROW(b.build(true));
  EXPECT_NEAR(b.length(), 4 + 2 * M_PI, 1e-9);
}

TEST(PathBuilder, SamplesMonotoneInS) {
  PathBuilder b({0, 0}, 0.0);
  b.straight(1).arc(0.5, M_PI).straight(1).arc(0.5, M_PI);
  const auto samples = b.build(true);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].s, samples[i - 1].s);
  }
}

// --- Track ---------------------------------------------------------------

TEST(Track, PaperOvalMatchesPublishedDimensions) {
  const Track t = Track::paper_oval();
  // Centerline perimeter = mean of the paper's inner (330 in) and outer
  // (509 in) line lengths.
  EXPECT_NEAR(t.length(), util::inches_to_meters(419.5), 0.02);
  EXPECT_NEAR(t.width(), util::inches_to_meters(27.59), 1e-9);
}

TEST(Track, WaveshareCloses) {
  const Track t = Track::waveshare();
  EXPECT_GT(t.length(), 8.0);
  EXPECT_NEAR(t.width(), 0.45, 1e-12);
}

TEST(Track, SquareLoopLength) {
  const Track t = Track::square_loop(3.0, 0.8, 0.7);
  EXPECT_NEAR(t.length(), 4 * (3.0 - 1.6) + 2 * M_PI * 0.8, 1e-6);
}

TEST(Track, SquareLoopRejectsImpossibleGeometry) {
  EXPECT_THROW(Track::square_loop(1.0, 0.8, 0.5), std::invalid_argument);
}

TEST(Track, WrapS) {
  const Track t = Track::paper_oval();
  const double L = t.length();
  EXPECT_NEAR(t.wrap_s(L + 1.0), 1.0, 1e-9);
  EXPECT_NEAR(t.wrap_s(-1.0), L - 1.0, 1e-9);
  EXPECT_NEAR(t.wrap_s(0.5), 0.5, 1e-12);
}

TEST(Track, PositionAtWrapsAround) {
  const Track t = Track::paper_oval();
  const Vec2 a = t.position_at(0.0);
  const Vec2 b = t.position_at(t.length());
  EXPECT_NEAR(distance(a, b), 0.0, 0.02);
}

TEST(Track, HeadingFollowsStraight) {
  const Track t = Track::paper_oval();
  // First samples lie on the initial straight, heading 0.
  EXPECT_NEAR(t.heading_at(0.1), 0.0, 1e-6);
  EXPECT_NEAR(t.curvature_at(0.1), 0.0, 1e-12);
}

TEST(Track, CurvatureOnTurnIsOneOverR) {
  const Track t = Track::paper_oval();
  // Midway through the first turn (straight is ~1.56 m, turn ~3.77 m).
  const double s_turn = 1.56 + 1.8;
  EXPECT_NEAR(t.curvature_at(s_turn), 1.0 / 1.20, 1e-6);
}

TEST(Track, BoundariesAreHalfWidthFromCenter) {
  const Track t = Track::paper_oval();
  for (double s = 0; s < t.length(); s += 0.5) {
    const Vec2 c = t.position_at(s);
    EXPECT_NEAR(distance(t.left_boundary_at(s), c), t.half_width(), 1e-9);
    EXPECT_NEAR(distance(t.right_boundary_at(s), c), t.half_width(), 1e-9);
  }
}

TEST(Track, ProjectPointOnCenterline) {
  const Track t = Track::paper_oval();
  const Vec2 p = t.position_at(2.0);
  const Projection pr = t.project(p);
  EXPECT_NEAR(pr.s, 2.0, 0.02);
  EXPECT_NEAR(pr.lateral, 0.0, 0.01);
  EXPECT_TRUE(pr.on_track);
}

TEST(Track, ProjectLateralSign) {
  const Track t = Track::paper_oval();
  // On the first straight (heading +x), left is +y.
  const Vec2 left_pt{0.5, 0.2};
  const Vec2 right_pt{0.5, -0.2};
  EXPECT_GT(t.project(left_pt).lateral, 0.15);
  EXPECT_LT(t.project(right_pt).lateral, -0.15);
}

TEST(Track, ProjectDetectsOffTrack) {
  const Track t = Track::paper_oval();
  const Vec2 far{0.5, 5.0};
  const Projection pr = t.project(far);
  EXPECT_FALSE(pr.on_track);
  EXPECT_GT(std::abs(pr.lateral), 1.0);
}

TEST(Track, ProjectFarOutsideGridStillWorks) {
  const Track t = Track::paper_oval();
  const Projection pr = t.project({500.0, -900.0});
  EXPECT_FALSE(pr.on_track);
  EXPECT_GE(pr.s, 0.0);
  EXPECT_LT(pr.s, t.length());
}

TEST(Track, ProgressDeltaAcrossSeam) {
  const Track t = Track::paper_oval();
  const double L = t.length();
  EXPECT_NEAR(t.progress_delta(L - 0.1, 0.1), 0.2, 1e-9);
  EXPECT_NEAR(t.progress_delta(0.1, L - 0.1), -0.2, 1e-9);
  EXPECT_NEAR(t.progress_delta(1.0, 3.0), 2.0, 1e-9);
}

TEST(Track, ConstructorValidation) {
  PathBuilder b({0, 0}, 0.0);
  b.straight(1).arc(0.5, M_PI).straight(1).arc(0.5, M_PI);
  auto samples = b.build(true);
  EXPECT_THROW(Track("bad", samples, 0.0), std::invalid_argument);
  EXPECT_THROW(Track("bad", samples, -1.0), std::invalid_argument);
  EXPECT_THROW(Track("bad", {}, 0.5), std::invalid_argument);
}

// Property sweep over all presets: geometric invariants hold everywhere.
class TrackInvariantTest : public ::testing::TestWithParam<const char*> {
 protected:
  static Track make(const std::string& name) {
    if (name == "paper-oval") return Track::paper_oval();
    if (name == "waveshare") return Track::waveshare();
    return Track::square_loop();
  }
};

TEST_P(TrackInvariantTest, CenterlinePointsProjectToThemselves) {
  const Track t = make(GetParam());
  for (double s = 0.05; s < t.length(); s += t.length() / 37) {
    const Projection pr = t.project(t.position_at(s));
    EXPECT_NEAR(std::abs(t.progress_delta(s, pr.s)), 0.0, 0.03) << "s=" << s;
    EXPECT_NEAR(pr.lateral, 0.0, 0.02);
    EXPECT_TRUE(pr.on_track);
  }
}

TEST_P(TrackInvariantTest, LateralOffsetRecovered) {
  const Track t = make(GetParam());
  for (double s = 0.1; s < t.length(); s += t.length() / 23) {
    const double off = 0.15;
    const Vec2 p = t.position_at(s) + heading_vec(t.heading_at(s)).perp() * off;
    const Projection pr = t.project(p);
    EXPECT_NEAR(pr.lateral, off, 0.03) << "s=" << s;
  }
}

TEST_P(TrackInvariantTest, HeadingIsTangent) {
  const Track t = make(GetParam());
  const double ds = 0.02;
  for (double s = 0.5; s < t.length() - 0.5; s += t.length() / 19) {
    const Vec2 d = t.position_at(s + ds) - t.position_at(s - ds);
    const double tangent_heading = std::atan2(d.y, d.x);
    EXPECT_NEAR(std::abs(angle_diff(tangent_heading, t.heading_at(s))), 0.0,
                0.05)
        << "s=" << s;
  }
}

TEST_P(TrackInvariantTest, SamplesEquallyIndexable) {
  const Track t = make(GetParam());
  EXPECT_GT(t.centerline().size(), 100u);
  EXPECT_GT(t.length(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Presets, TrackInvariantTest,
                         ::testing::Values("paper-oval", "waveshare",
                                           "square-loop"));

}  // namespace
}  // namespace autolearn::track
