#include "util/delay_line.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autolearn::util {
namespace {

TEST(DelayLine, ReturnsInitialBeforeFirstValueMatures) {
  DelayLine<int> dl(0.1, -1);
  dl.push(5, 0.35);
  EXPECT_EQ(dl.step(), -1);  // t=0.1
  EXPECT_EQ(dl.step(), -1);  // t=0.2
  EXPECT_EQ(dl.step(), -1);  // t=0.3
  EXPECT_EQ(dl.step(), 5);   // t=0.4 >= 0.35
}

TEST(DelayLine, ZeroDelayVisibleNextStep) {
  DelayLine<int> dl(0.05, 0);
  dl.push(7, 0.0);
  EXPECT_EQ(dl.step(), 7);
}

TEST(DelayLine, HoldsLastValueWhenNothingNew) {
  DelayLine<int> dl(0.1, 0);
  dl.push(3, 0.0);
  dl.step();
  EXPECT_EQ(dl.step(), 3);
  EXPECT_EQ(dl.step(), 3);
}

TEST(DelayLine, FreshestMaturedValueWins) {
  DelayLine<int> dl(1.0, 0);
  dl.push(1, 0.2);
  dl.push(2, 0.5);
  // Both mature within the first step: the newer one is reported.
  EXPECT_EQ(dl.step(), 2);
}

TEST(DelayLine, OutOfOrderDeliveryDropsStale) {
  DelayLine<int> dl(1.0, 0);
  dl.push(1, 2.5);  // slow path, matures at 2.5
  dl.push(2, 0.2);  // fast path, matures at 0.2
  EXPECT_EQ(dl.step(), 2);  // t=1: fast value in effect
  EXPECT_EQ(dl.in_flight(), 0u);  // the older, slower value was discarded
  // t=2, t=3: the stale slow value never overrides the fresher command.
  EXPECT_EQ(dl.step(), 2);
  EXPECT_EQ(dl.step(), 2);
}

TEST(DelayLine, ConstantDelayPipelineShiftsSequence) {
  DelayLine<int> dl(0.1, -1);
  // Push i at step i with delay 0.25 (2.5 periods -> visible 3 steps later).
  for (int i = 0; i < 10; ++i) {
    dl.push(i, 0.25);
    const int got = dl.step();
    if (i < 2) {
      EXPECT_EQ(got, -1);
    } else {
      EXPECT_EQ(got, i - 2);
    }
  }
}

TEST(DelayLine, ValuePeeksWithoutAdvancing) {
  DelayLine<int> dl(0.1, 9);
  EXPECT_EQ(dl.value(), 9);
  EXPECT_DOUBLE_EQ(dl.now(), 0.0);
}

TEST(DelayLine, InFlightCount) {
  DelayLine<int> dl(0.1, 0);
  dl.push(1, 1.0);
  dl.push(2, 1.0);
  EXPECT_EQ(dl.in_flight(), 2u);
  for (int i = 0; i < 10; ++i) dl.step();
  EXPECT_EQ(dl.in_flight(), 0u);
}

TEST(DelayLine, RejectsBadConstruction) {
  EXPECT_THROW(DelayLine<int>(0.0, 0), std::invalid_argument);
  EXPECT_THROW(DelayLine<int>(-1.0, 0), std::invalid_argument);
}

TEST(DelayLine, RejectsNegativeDelay) {
  DelayLine<int> dl(0.1, 0);
  EXPECT_THROW(dl.push(1, -0.5), std::invalid_argument);
}

TEST(DelayLine, WorksWithNonTrivialTypes) {
  DelayLine<std::pair<double, double>> dl(0.1, {0.0, 0.0});
  dl.push({0.5, 1.0}, 0.0);
  const auto& v = dl.step();
  EXPECT_DOUBLE_EQ(v.first, 0.5);
  EXPECT_DOUBLE_EQ(v.second, 1.0);
}

// Property: pushing at step i and reading at the end of the same control
// period, a constant delay d with period dt is observed ceil(d/dt) - 1
// steps later (a value with d <= dt is visible within its own period).
class DelayLagTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(DelayLagTest, LagMatchesCeil) {
  const auto [dt, d] = GetParam();
  DelayLine<int> dl(dt, -1);
  const int expected_lag = std::max(
      0, static_cast<int>(std::ceil(d / dt - 1e-6)) - 1);
  for (int i = 0; i < 50; ++i) {
    dl.push(i, d);
    const int got = dl.step();
    if (i >= expected_lag) {
      EXPECT_EQ(got, i - expected_lag) << "dt=" << dt << " d=" << d;
    } else {
      EXPECT_EQ(got, -1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Lags, DelayLagTest,
    ::testing::Values(std::pair{0.05, 0.0}, std::pair{0.05, 0.05},
                      std::pair{0.05, 0.1}, std::pair{0.05, 0.12},
                      std::pair{0.1, 0.25}, std::pair{0.02, 0.3}));

}  // namespace
}  // namespace autolearn::util
