#include "util/event_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace autolearn::util {
namespace {

TEST(EventQueue, StartsAtZeroAndEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0.0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1;
  q.schedule_at(2.0, [&] {
    q.schedule_in(0.5, [&] { fired_at = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(4.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive) {
  EventQueue q;
  std::vector<double> fired;
  q.schedule_at(1.0, [&] { fired.push_back(1.0); });
  q.schedule_at(2.0, [&] { fired.push_back(2.0); });
  q.schedule_at(3.0, [&] { fired.push_back(3.0); });
  const auto n = q.run_until(2.0);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  q.run_until(7.5);
  EXPECT_EQ(q.now(), 7.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const auto id = q.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  q.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(9999));
  EXPECT_FALSE(q.cancel(0));
}

TEST(EventQueue, DoubleCancelReturnsFalse) {
  EventQueue q;
  const auto id = q.schedule_at(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, StepRunsExactlyOne) {
  EventQueue q;
  int count = 0;
  q.schedule_at(1.0, [&] { ++count; });
  q.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(q.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, EventsScheduledDuringRunExecute) {
  EventQueue q;
  int depth = 0;
  q.schedule_at(1.0, [&] {
    ++depth;
    q.schedule_in(1.0, [&] {
      ++depth;
      q.schedule_in(1.0, [&] { ++depth; });
    });
  });
  q.run();
  EXPECT_EQ(depth, 3);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, RunWithLimit) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(static_cast<double>(i + 1), [&] { ++count; });
  }
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.schedule_at(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, NextTimeOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, CancelledEventSkippedInRunUntil) {
  EventQueue q;
  bool a = false, b = false;
  const auto id = q.schedule_at(1.0, [&] { a = true; });
  q.schedule_at(2.0, [&] { b = true; });
  q.cancel(id);
  q.run_until(3.0);
  EXPECT_FALSE(a);
  EXPECT_TRUE(b);
}

// Property: any random schedule executes in nondecreasing time order.
class EventQueueOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueOrderTest, MonotoneExecution) {
  EventQueue q;
  std::vector<double> fired;
  // Deterministic pseudo-random times from the seed parameter.
  unsigned state = static_cast<unsigned>(GetParam());
  auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return static_cast<double>(state % 1000) / 10.0;
  };
  for (int i = 0; i < 200; ++i) {
    const double t = next();
    q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); });
  }
  q.run();
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
  EXPECT_EQ(fired.size(), 200u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueOrderTest,
                         ::testing::Values(1, 7, 42, 123, 999));

}  // namespace
}  // namespace autolearn::util
