#include "util/json.hpp"

#include <gtest/gtest.h>

namespace autolearn::util {
namespace {

TEST(Json, ScalarConstructionAndAccess) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(nullptr).is_null());
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_DOUBLE_EQ(Json(3.25).as_number(), 3.25);
  EXPECT_EQ(Json(7).as_int(), 7);
  EXPECT_EQ(Json("hi").as_string(), "hi");
}

TEST(Json, TypeMismatchThrows) {
  const Json j(1.0);
  EXPECT_THROW(j.as_string(), JsonError);
  EXPECT_THROW(j.as_bool(), JsonError);
  EXPECT_THROW(j.as_array(), JsonError);
  EXPECT_THROW(j.as_object(), JsonError);
  EXPECT_THROW(j.size(), JsonError);
}

TEST(Json, ObjectSetGetPreservesInsertionOrder) {
  Json o = Json::object();
  o.set("b", Json(2));
  o.set("a", Json(1));
  o.set("c", Json(3));
  ASSERT_EQ(o.size(), 3u);
  EXPECT_EQ(o.as_object()[0].first, "b");
  EXPECT_EQ(o.as_object()[1].first, "a");
  EXPECT_EQ(o.at("a").as_int(), 1);
  EXPECT_EQ(o.get("missing"), nullptr);
  EXPECT_THROW(o.at("missing"), JsonError);
}

TEST(Json, ObjectSetReplaces) {
  Json o = Json::object();
  o.set("k", Json(1));
  o.set("k", Json(2));
  EXPECT_EQ(o.size(), 1u);
  EXPECT_EQ(o.at("k").as_int(), 2);
}

TEST(Json, ArrayPushAndIndex) {
  Json a = Json::array();
  a.push_back(Json(1));
  a.push_back(Json("two"));
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].as_int(), 1);
  EXPECT_EQ(a[1].as_string(), "two");
  EXPECT_THROW(a[2], JsonError);
}

TEST(Json, DumpCompact) {
  Json o = Json::object();
  o.set("n", Json(1));
  o.set("s", Json("x"));
  Json arr = Json::array();
  arr.push_back(Json(true));
  arr.push_back(Json(nullptr));
  o.set("a", std::move(arr));
  EXPECT_EQ(o.dump(), R"({"n":1,"s":"x","a":[true,null]})");
}

TEST(Json, DumpIntegersWithoutDecimalPoint) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-3).dump(), "-3");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
}

TEST(Json, StringEscaping) {
  Json s(std::string("a\"b\\c\nd\te"));
  EXPECT_EQ(s.dump(), R"("a\"b\\c\nd\te")");
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e2").as_number(), -250.0);
  EXPECT_EQ(Json::parse(R"("hello")").as_string(), "hello");
}

TEST(Json, ParseNested) {
  const auto j = Json::parse(
      R"({"user": "kz", "runs": [1, 2, 3], "meta": {"ok": true}})");
  EXPECT_EQ(j.at("user").as_string(), "kz");
  EXPECT_EQ(j.at("runs").size(), 3u);
  EXPECT_EQ(j.at("runs")[2].as_int(), 3);
  EXPECT_TRUE(j.at("meta").at("ok").as_bool());
}

TEST(Json, ParseEmptyContainers) {
  EXPECT_EQ(Json::parse("[]").size(), 0u);
  EXPECT_EQ(Json::parse("{}").size(), 0u);
  EXPECT_EQ(Json::parse("[ ]").size(), 0u);
  EXPECT_EQ(Json::parse("{ }").size(), 0u);
}

TEST(Json, ParseWhitespaceTolerant) {
  const auto j = Json::parse(" {\n\t\"a\" : [ 1 , 2 ] }\n");
  EXPECT_EQ(j.at("a").size(), 2u);
}

TEST(Json, ParseEscapes) {
  const auto j = Json::parse(R"("line\nbreak\t\"q\" A")");
  EXPECT_EQ(j.as_string(), "line\nbreak\t\"q\" A");
}

TEST(Json, RoundTripStable) {
  const std::string text =
      R"({"cam/image_array":"1_cam.jpg","user/angle":-0.52,"user/throttle":0.3,"deleted":false})";
  const auto j = Json::parse(text);
  EXPECT_EQ(Json::parse(j.dump()), j);
  EXPECT_EQ(j.dump(), text);
}

TEST(Json, ParseErrorsThrowWithOffset) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1} extra"), JsonError);
  EXPECT_THROW(Json::parse("{'a':1}"), JsonError);
  EXPECT_THROW(Json::parse("nan"), JsonError);
}

TEST(Json, PrettyPrintIndents) {
  Json o = Json::object();
  o.set("a", Json(1));
  const std::string pretty = o.dump(2);
  EXPECT_NE(pretty.find("\n  \"a\": 1"), std::string::npos);
}

TEST(Json, Equality) {
  EXPECT_EQ(Json(1.0), Json(1));
  EXPECT_NE(Json(1.0), Json("1"));
  EXPECT_EQ(Json::parse("[1,2]"), Json::parse("[1, 2]"));
  EXPECT_NE(Json::parse("[1,2]"), Json::parse("[2,1]"));
}

}  // namespace
}  // namespace autolearn::util
