// Coverage for the small util pieces (logging, units) and the eval pilot
// wrappers.
#include <gtest/gtest.h>

#include "cv/pilots.hpp"
#include "eval/evaluator.hpp"
#include "eval/wrappers.hpp"
#include "track/track.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"

namespace autolearn {
namespace {

TEST(Units, InchesRoundTrip) {
  EXPECT_NEAR(util::inches_to_meters(330.0), 8.382, 1e-9);
  EXPECT_NEAR(util::meters_to_inches(util::inches_to_meters(27.59)), 27.59,
              1e-9);
  EXPECT_DOUBLE_EQ(util::ms_to_s(250.0), 0.25);
  EXPECT_DOUBLE_EQ(util::s_to_ms(0.05), 50.0);
  EXPECT_NEAR(util::mph_to_mps(10.0), 4.4704, 1e-9);
  EXPECT_DOUBLE_EQ(util::mib(1), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(util::gib(2), 2.0 * 1024 * 1024 * 1024);
}

TEST(Logging, ThresholdFilters) {
  const util::LogLevel old = util::log_level();
  util::set_log_level(util::LogLevel::Error);
  EXPECT_EQ(util::log_level(), util::LogLevel::Error);
  // Below-threshold lines are dropped without side effects.
  AUTOLEARN_LOG(Info, "test") << "dropped";
  AUTOLEARN_LOG(Warn, "test") << "dropped too";
  util::set_log_level(util::LogLevel::Off);
  AUTOLEARN_LOG(Error, "test") << "also dropped at Off";
  util::set_log_level(old);
}

TEST(FixedThrottlePilot, PinsThrottleKeepsSteering) {
  cv::LineFollowPilot inner;
  eval::FixedThrottlePilot pilot(inner, 0.33);
  camera::Image frame(32, 24, 0.2f);
  // The inner line follower searches (steers) on a dark frame; the wrapper
  // must keep that steering but override its throttle.
  const vehicle::DriveCommand inner_cmd = inner.act(frame);
  inner.reset();
  const vehicle::DriveCommand cmd = pilot.act(frame);
  EXPECT_DOUBLE_EQ(cmd.throttle, 0.33);
  EXPECT_DOUBLE_EQ(cmd.steering, inner_cmd.steering);
  EXPECT_EQ(pilot.name(), "line-follow+fixed-throttle");
  EXPECT_THROW(eval::FixedThrottlePilot(inner, 1.5), std::invalid_argument);
  EXPECT_THROW(eval::FixedThrottlePilot(inner, -0.1), std::invalid_argument);
}

TEST(FixedThrottlePilot, RaceModeDrivesTheTrack) {
  const track::Track t = track::Track::paper_oval();
  cv::LineFollowPilot inner;
  eval::FixedThrottlePilot pilot(inner, 0.40);
  eval::EvalOptions opt;
  opt.duration_s = 45.0;
  const eval::EvalResult r = eval::run_evaluation(t, pilot, opt);
  EXPECT_GT(r.laps, 1.0);
  EXPECT_LT(r.errors, 5u);
}

}  // namespace
}  // namespace autolearn
