#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace autolearn::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedWorks) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 30u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.5);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, UniformIntSingleValue) {
  Rng r(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(7, 7), 7);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng r(13);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift) {
  Rng r(17);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng r(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng r(29);
  const int n = 200000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(0.05);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.05, 0.002);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // Child stream should not replay the parent stream.
  Rng parent2(31);
  parent2.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child.next_u64() == parent.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(101), b(101);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, ShufflePermutes) {
  Rng r(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng r(41);
  std::vector<int> empty;
  r.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  r.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(Rng, WorksWithStdDistributions) {
  Rng r(43);
  std::uniform_int_distribution<int> dist(0, 9);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(dist(r));
  EXPECT_EQ(seen.size(), 10u);
}

// Property sweep: uniform_int over many ranges never escapes bounds and
// covers all values of small ranges.
class RngRangeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RngRangeTest, CoversRange) {
  const auto [lo, hi] = GetParam();
  Rng r(static_cast<std::uint64_t>(lo * 31 + hi));
  std::set<std::int64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto v = r.uniform_int(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(hi - lo + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, RngRangeTest,
    ::testing::Values(std::pair{0, 1}, std::pair{-5, 5}, std::pair{0, 15},
                      std::pair{-1, 0}, std::pair{100, 107}));

}  // namespace
}  // namespace autolearn::util
