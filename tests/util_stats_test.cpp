#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace autolearn::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(OnlineStats, KnownMeanAndVariance) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i * 0.7) * 10;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Samples, MeanStddev) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Samples, PercentileEndpoints) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 15.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 12.5);
}

TEST(Samples, PercentileSingle) {
  Samples s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
}

TEST(Samples, PercentileErrors) {
  Samples s;
  EXPECT_THROW(s.percentile(50), std::logic_error);
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), std::invalid_argument);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
}

TEST(Samples, UnsortedInputHandled) {
  Samples s;
  for (double v : {9.0, 1.0, 5.0, 3.0, 7.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

}  // namespace
}  // namespace autolearn::util
