#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace autolearn::util {
namespace {

TEST(TablePrinter, RequiresHeaders) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, BasicRender) {
  TablePrinter t({"model", "loss"});
  t.add_row({"linear", "0.12"});
  t.add_row({"rnn", "0.08"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("model"), std::string::npos);
  EXPECT_NE(out.find("linear"), std::string::npos);
  EXPECT_NE(out.find("0.08"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TablePrinter, TitleRendered) {
  TablePrinter t({"a"});
  t.add_row({"1"});
  EXPECT_NE(t.to_string("E1").find("== E1 =="), std::string::npos);
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  // Should not throw when rendering padded row.
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(TablePrinter, WideRowRejected) {
  TablePrinter t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(TablePrinter, NumFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::num(static_cast<long long>(42)), "42");
}

TEST(TablePrinter, ColumnsAlignToWidestCell) {
  TablePrinter t({"x", "yyyy"});
  t.add_row({"longvalue", "1"});
  const std::string out = t.to_string();
  // Every data line should have the same length (monospace alignment).
  std::istringstream is(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] != '|') continue;
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << out;
  }
}

}  // namespace
}  // namespace autolearn::util
