#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

namespace autolearn::util {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> x{0};
  pool.submit([&] { x = 42; }).get();
  EXPECT_EQ(x, 42);
}

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&] { count.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count, 200);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndicesOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  pool.parallel_for(3, 4, [&](std::size_t i) {
    EXPECT_EQ(i, 3u);
    hits.fetch_add(1);
  });
  EXPECT_EQ(hits, 1);
}

TEST(ThreadPool, ParallelForChunksPartitionIsDisjointAndComplete) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(10, 1010, [&](std::size_t b, std::size_t e) {
    std::scoped_lock lock(mu);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 10u);
  EXPECT_EQ(chunks.back().second, 1010u);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
  }
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<double> v(100000);
  std::iota(v.begin(), v.end(), 1.0);
  std::atomic<long long> sum{0};
  pool.parallel_for_chunks(0, v.size(), [&](std::size_t b, std::size_t e) {
    long long local = 0;
    for (std::size_t i = b; i < e; ++i) local += static_cast<long long>(v[i]);
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum, 100000LL * 100001LL / 2);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { count.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(count, 50);
}

TEST(ThreadPool, SharedPoolSingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
}

TEST(ThreadPool, GrainRunsSmallRangeInlineAsOneChunk) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::tuple<std::size_t, std::size_t, std::thread::id>> chunks;
  // n == 64 <= grain == 64: must run as a single inline chunk, so the
  // unsynchronized vector push is safe by construction.
  pool.parallel_for_chunks(
      0, 64,
      [&](std::size_t b, std::size_t e) {
        chunks.emplace_back(b, e, std::this_thread::get_id());
      },
      /*grain=*/64);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(std::get<0>(chunks[0]), 0u);
  EXPECT_EQ(std::get<1>(chunks[0]), 64u);
  EXPECT_EQ(std::get<2>(chunks[0]), caller);
}

TEST(ThreadPool, SingleWorkerPoolRunsParallelForInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(100);
  pool.parallel_for(0, seen.size(),
                    [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ScopedOverrideRedirectsShared) {
  ThreadPool& original = ThreadPool::shared();
  {
    ThreadPool mine(2);
    ThreadPool::ScopedOverride guard(mine);
    EXPECT_EQ(&ThreadPool::shared(), &mine);
    {
      ThreadPool inner(3);
      ThreadPool::ScopedOverride nested(inner);
      EXPECT_EQ(&ThreadPool::shared(), &inner);
    }
    EXPECT_EQ(&ThreadPool::shared(), &mine);  // nesting restores in order
  }
  EXPECT_EQ(&ThreadPool::shared(), &original);
}

TEST(ThreadPool, EnvThreadOverrideParsing) {
  ASSERT_EQ(unsetenv("AUTOLEARN_THREADS"), 0);
  EXPECT_EQ(ThreadPool::env_thread_override(), 0u);
  ASSERT_EQ(setenv("AUTOLEARN_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::env_thread_override(), 3u);
  ASSERT_EQ(setenv("AUTOLEARN_THREADS", "", 1), 0);
  EXPECT_EQ(ThreadPool::env_thread_override(), 0u);
  ASSERT_EQ(setenv("AUTOLEARN_THREADS", "banana", 1), 0);
  EXPECT_EQ(ThreadPool::env_thread_override(), 0u);
  ASSERT_EQ(unsetenv("AUTOLEARN_THREADS"), 0);
}

TEST(ThreadPool, NestedSubmitFromTask) {
  ThreadPool pool(2);
  std::atomic<int> x{0};
  auto outer = pool.submit([&] {
    x.fetch_add(1);
  });
  outer.get();
  pool.submit([&] { x.fetch_add(10); }).get();
  EXPECT_EQ(x, 11);
}

}  // namespace
}  // namespace autolearn::util
