#include <gtest/gtest.h>

#include <cmath>

#include "track/track.hpp"
#include "vehicle/car.hpp"
#include "vehicle/expert.hpp"

namespace autolearn::vehicle {
namespace {

Car make_sim_car() { return Car(CarConfig{}, util::Rng(7)); }

TEST(DriveCommand, Clamped) {
  const DriveCommand c = DriveCommand{2.0, -3.0}.clamped();
  EXPECT_DOUBLE_EQ(c.steering, 1.0);
  EXPECT_DOUBLE_EQ(c.throttle, -1.0);
}

TEST(Car, ConfigValidation) {
  CarConfig bad;
  bad.wheelbase = 0;
  EXPECT_THROW(Car(bad, util::Rng(1)), std::invalid_argument);
  bad = CarConfig{};
  bad.max_speed = -1;
  EXPECT_THROW(Car(bad, util::Rng(1)), std::invalid_argument);
}

TEST(Car, ResetPlacesCar) {
  Car car = make_sim_car();
  car.reset({1.0, 2.0}, M_PI / 2, 0.5);
  EXPECT_DOUBLE_EQ(car.state().pos.x, 1.0);
  EXPECT_DOUBLE_EQ(car.state().pos.y, 2.0);
  EXPECT_DOUBLE_EQ(car.state().heading, M_PI / 2);
  EXPECT_DOUBLE_EQ(car.state().speed, 0.5);
}

TEST(Car, StepRequiresPositiveDt) {
  Car car = make_sim_car();
  EXPECT_THROW(car.step({0, 0}, 0.0), std::invalid_argument);
  EXPECT_THROW(car.step({0, 0}, -0.1), std::invalid_argument);
}

TEST(Car, AcceleratesTowardThrottleTarget) {
  Car car = make_sim_car();
  car.reset({0, 0}, 0.0);
  for (int i = 0; i < 200; ++i) car.step({0.0, 0.5}, 0.05);
  // After many time constants the speed settles at throttle * max_speed.
  EXPECT_NEAR(car.state().speed, 0.5 * car.config().max_speed, 0.02);
}

TEST(Car, BrakesFasterThanAccelerates) {
  // Time for the speed to cover half the gap to its target is ln(2) * tau;
  // braking uses the smaller brake_tau.
  Car braking = make_sim_car();
  braking.reset({0, 0}, 0.0, 2.0);
  double t_half_brake = 0;
  while (braking.state().speed > 1.0) {
    braking.step({0, -1.0}, 0.01);
    t_half_brake += 0.01;
    ASSERT_LT(t_half_brake, 5.0);
  }
  Car accel = make_sim_car();
  accel.reset({0, 0}, 0.0, 0.0);
  const double half_target = accel.config().max_speed / 2;
  double t_half_accel = 0;
  while (accel.state().speed < half_target) {
    accel.step({0, 1.0}, 0.01);
    t_half_accel += 0.01;
    ASSERT_LT(t_half_accel, 5.0);
  }
  EXPECT_LT(t_half_brake, t_half_accel);
}

TEST(Car, NeverReverses) {
  Car car = make_sim_car();
  car.reset({0, 0}, 0.0, 0.5);
  for (int i = 0; i < 100; ++i) {
    car.step({0, -1.0}, 0.05);
    ASSERT_GE(car.state().speed, 0.0);
  }
}

TEST(Car, DrivesStraightWithZeroSteering) {
  Car car = make_sim_car();
  car.reset({0, 0}, 0.0, 1.0);
  for (int i = 0; i < 100; ++i) car.step({0.0, 0.5}, 0.02);
  EXPECT_NEAR(car.state().pos.y, 0.0, 1e-9);
  EXPECT_GT(car.state().pos.x, 1.0);
  EXPECT_NEAR(car.state().heading, 0.0, 1e-9);
}

TEST(Car, PositiveSteeringTurnsLeft) {
  Car car = make_sim_car();
  car.reset({0, 0}, 0.0, 1.0);
  for (int i = 0; i < 40; ++i) car.step({0.5, 0.5}, 0.02);
  EXPECT_GT(car.state().heading, 0.2);
  EXPECT_GT(car.state().pos.y, 0.05);
}

TEST(Car, NegativeSteeringTurnsRight) {
  Car car = make_sim_car();
  car.reset({0, 0}, 0.0, 1.0);
  for (int i = 0; i < 40; ++i) car.step({-0.5, 0.5}, 0.02);
  EXPECT_LT(car.state().heading, -0.2);
  EXPECT_LT(car.state().pos.y, -0.05);
}

TEST(Car, TurningRadiusMatchesBicycleModel) {
  // At constant wheel angle delta and speed v, the car traces a circle of
  // radius R = wheelbase / tan(delta).
  CarConfig cfg;
  cfg.steer_tau = 1e-4;  // effectively instant servo for this test
  Car car(cfg, util::Rng(3));
  car.reset({0, 0}, 0.0, 1.0);
  const double steering_cmd = 0.6;
  const double delta = steering_cmd * cfg.max_wheel_angle;
  const double expected_r = cfg.wheelbase / std::tan(delta);
  // Drive a half-circle with speed held via full model; track max |pos|.
  const double dt = 0.005;
  double max_y = 0;
  for (int i = 0; i < 4000; ++i) {
    car.step({steering_cmd, 1.0 / cfg.max_speed * 1.0}, dt);
    max_y = std::max(max_y, car.state().pos.y);
  }
  // The chord height of the circle equals its diameter.
  EXPECT_NEAR(max_y, 2 * expected_r, 0.15 * expected_r);
}

TEST(Car, SimProfileIsDeterministicAcrossSeeds) {
  Car a(CarConfig{}, util::Rng(1));
  Car b(CarConfig{}, util::Rng(999));
  a.reset({0, 0}, 0, 0);
  b.reset({0, 0}, 0, 0);
  for (int i = 0; i < 50; ++i) {
    a.step({0.3, 0.5}, 0.05);
    b.step({0.3, 0.5}, 0.05);
  }
  EXPECT_DOUBLE_EQ(a.state().pos.x, b.state().pos.x);
  EXPECT_DOUBLE_EQ(a.state().pos.y, b.state().pos.y);
}

TEST(Car, RealProfileDivergesFromSim) {
  CarConfig real_cfg;
  real_cfg.noise = NoiseProfile::real_car();
  Car real(real_cfg, util::Rng(5));
  Car sim(CarConfig{}, util::Rng(5));
  real.reset({0, 0}, 0, 0);
  sim.reset({0, 0}, 0, 0);
  for (int i = 0; i < 200; ++i) {
    real.step({0.0, 0.5}, 0.05);
    sim.step({0.0, 0.5}, 0.05);
  }
  const double div = track::distance(real.state().pos, sim.state().pos);
  EXPECT_GT(div, 0.01);
}

TEST(Car, GripLimitCausesUndersteer) {
  CarConfig low_grip;
  low_grip.noise.grip_limit = 1.0;
  CarConfig high_grip;  // effectively infinite
  Car limited(low_grip, util::Rng(2));
  Car gripped(high_grip, util::Rng(2));
  limited.reset({0, 0}, 0, 2.5);
  gripped.reset({0, 0}, 0, 2.5);
  for (int i = 0; i < 60; ++i) {
    limited.step({1.0, 0.9}, 0.02);
    gripped.step({1.0, 0.9}, 0.02);
  }
  // The grip-limited car turns less.
  EXPECT_LT(std::abs(limited.state().heading),
            std::abs(gripped.state().heading));
}

TEST(Car, LateralAccelComputed) {
  Car car = make_sim_car();
  car.reset({0, 0}, 0, 2.0);
  EXPECT_DOUBLE_EQ(car.lateral_accel(), 0.0);  // wheel angle 0
  for (int i = 0; i < 50; ++i) car.step({1.0, 0.7}, 0.02);
  EXPECT_GT(car.lateral_accel(), 0.5);
}

// --- ExpertPilot -----------------------------------------------------------

TEST(ExpertPilot, KeepsCarOnPaperOval) {
  const track::Track t = track::Track::paper_oval();
  Car car(CarConfig{}, util::Rng(11));
  car.reset(t.position_at(0), t.heading_at(0));
  ExpertPilot expert(t, ExpertConfig{}, util::Rng(12));
  const double dt = 0.05;
  double worst_lat = 0;
  for (int i = 0; i < 2400; ++i) {  // 2 minutes of driving
    const DriveCommand cmd = expert.decide(car.state(), dt);
    car.step(cmd, dt);
    const auto proj = t.project(car.state().pos);
    worst_lat = std::max(worst_lat, std::abs(proj.lateral));
    ASSERT_TRUE(proj.on_track) << "left track at step " << i;
  }
  EXPECT_LT(worst_lat, t.half_width());
}

TEST(ExpertPilot, KeepsCarOnWaveshare) {
  const track::Track t = track::Track::waveshare();
  Car car(CarConfig{}, util::Rng(21));
  car.reset(t.position_at(0), t.heading_at(0));
  ExpertPilot expert(t, ExpertConfig{}, util::Rng(22));
  const double dt = 0.05;
  for (int i = 0; i < 2400; ++i) {
    car.step(expert.decide(car.state(), dt), dt);
    ASSERT_TRUE(t.project(car.state().pos).on_track)
        << "left track at step " << i;
  }
}

TEST(ExpertPilot, CompletesLaps) {
  const track::Track t = track::Track::paper_oval();
  Car car(CarConfig{}, util::Rng(31));
  car.reset(t.position_at(0), t.heading_at(0));
  ExpertPilot expert(t, ExpertConfig{}, util::Rng(32));
  const double dt = 0.05;
  double progress = 0;
  double s_prev = 0;
  for (int i = 0; i < 2400; ++i) {
    car.step(expert.decide(car.state(), dt), dt);
    const double s_now = t.project(car.state().pos).s;
    progress += t.progress_delta(s_prev, s_now);
    s_prev = s_now;
  }
  EXPECT_GT(progress, 2 * t.length());  // at least two laps in 2 minutes
}

TEST(ExpertPilot, SlowsForCorners) {
  const track::Track t = track::Track::paper_oval();
  Car car(CarConfig{}, util::Rng(41));
  car.reset(t.position_at(0), t.heading_at(0));
  ExpertPilot expert(t, ExpertConfig{}, util::Rng(42));
  const double dt = 0.05;
  double straight_speed = 0, corner_speed = 1e9;
  for (int i = 0; i < 2400; ++i) {
    car.step(expert.decide(car.state(), dt), dt);
    if (i < 400) continue;  // let it settle
    const auto proj = t.project(car.state().pos);
    if (std::abs(proj.curvature) < 1e-6) {
      straight_speed = std::max(straight_speed, car.state().speed);
    } else {
      corner_speed = std::min(corner_speed, car.state().speed);
    }
  }
  EXPECT_GT(straight_speed, corner_speed);
}

TEST(ExpertPilot, MistakesOccurAtConfiguredRate) {
  const track::Track t = track::Track::paper_oval();
  ExpertConfig cfg;
  cfg.mistake_rate = 30.0;  // 30 per minute -> plenty in 60 s
  ExpertPilot expert(t, cfg, util::Rng(55));
  Car car(CarConfig{}, util::Rng(56));
  car.reset(t.position_at(0), t.heading_at(0));
  const double dt = 0.05;
  int mistake_steps = 0;
  for (int i = 0; i < 1200; ++i) {
    car.step(expert.decide(car.state(), dt), dt);
    mistake_steps += expert.in_mistake();
  }
  EXPECT_GT(mistake_steps, 10);
}

TEST(ExpertPilot, NoMistakesByDefault) {
  const track::Track t = track::Track::paper_oval();
  ExpertPilot expert(t, ExpertConfig{}, util::Rng(55));
  Car car(CarConfig{}, util::Rng(56));
  car.reset(t.position_at(0), t.heading_at(0));
  for (int i = 0; i < 600; ++i) {
    car.step(expert.decide(car.state(), 0.05), 0.05);
    ASSERT_FALSE(expert.in_mistake());
  }
}

// Property: the expert keeps the car on every preset track with the real
// noise profile too.
class ExpertTrackTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ExpertTrackTest, StaysOnTrackWithRealNoise) {
  const std::string name = GetParam();
  const track::Track t = name == "paper-oval" ? track::Track::paper_oval()
                         : name == "waveshare"
                             ? track::Track::waveshare()
                             : track::Track::square_loop();
  CarConfig cfg;
  cfg.noise = NoiseProfile::real_car();
  Car car(cfg, util::Rng(61));
  car.reset(t.position_at(0), t.heading_at(0));
  ExpertPilot expert(t, ExpertConfig{}, util::Rng(62));
  const double dt = 0.05;
  int off_track = 0;
  for (int i = 0; i < 2400; ++i) {
    car.step(expert.decide(car.state(), dt), dt);
    off_track += !t.project(car.state().pos).on_track;
  }
  // The real car may clip an edge occasionally but must mostly stay on.
  EXPECT_LT(off_track, 24);
}

INSTANTIATE_TEST_SUITE_P(Tracks, ExpertTrackTest,
                         ::testing::Values("paper-oval", "waveshare",
                                           "square-loop"));

}  // namespace
}  // namespace autolearn::vehicle
