#include "workflow/notebook.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace autolearn::workflow {
namespace {

TEST(Notebook, AddAndRunSingleCell) {
  Notebook nb("quickstart");
  const auto i = nb.add_cell("hello", [] { return "hi"; });
  EXPECT_EQ(i, 0u);
  EXPECT_EQ(nb.cell(0).status, CellStatus::NotRun);
  EXPECT_TRUE(nb.run_cell(0));
  EXPECT_EQ(nb.cell(0).status, CellStatus::Ok);
  EXPECT_EQ(nb.cell(0).output, "hi");
}

TEST(Notebook, RunAllStopsAtFirstError) {
  Notebook nb("pipeline");
  int third_ran = 0;
  nb.add_cell("ok", [] { return "1"; });
  nb.add_cell("boom", []() -> std::string {
    throw std::runtime_error("lease unavailable");
  });
  nb.add_cell("after", [&]() -> std::string {
    ++third_ran;
    return "3";
  });
  const std::size_t ok = nb.run_all();
  EXPECT_EQ(ok, 1u);
  EXPECT_EQ(third_ran, 0);
  EXPECT_EQ(nb.cell(1).status, CellStatus::Error);
  EXPECT_NE(nb.cell(1).output.find("lease unavailable"), std::string::npos);
  EXPECT_EQ(nb.cell(2).status, CellStatus::NotRun);
  EXPECT_FALSE(nb.all_ok());
}

TEST(Notebook, RerunAfterFixSucceeds) {
  Notebook nb("retry");
  bool broken = true;
  nb.add_cell("flaky", [&]() -> std::string {
    if (broken) throw std::runtime_error("transient");
    return "fixed";
  });
  EXPECT_EQ(nb.run_all(), 0u);
  broken = false;
  EXPECT_EQ(nb.run_all(), 1u);
  EXPECT_TRUE(nb.all_ok());
}

TEST(Notebook, ClearStateResets) {
  Notebook nb("reset");
  nb.add_cell("a", [] { return "x"; });
  nb.run_all();
  nb.clear_state();
  EXPECT_EQ(nb.cell(0).status, CellStatus::NotRun);
  EXPECT_TRUE(nb.cell(0).output.empty());
}

TEST(Notebook, SuccessCallbackFires) {
  Notebook nb("metrics");
  int successes = 0;
  nb.set_on_cell_success([&](const Cell&) { ++successes; });
  nb.add_cell("a", [] { return ""; });
  nb.add_cell("b", [] { return ""; });
  nb.run_all();
  EXPECT_EQ(successes, 2);
}

TEST(Notebook, Validation) {
  Notebook nb("v");
  EXPECT_THROW(nb.add_cell("bad", nullptr), std::invalid_argument);
  EXPECT_THROW(nb.run_cell(0), std::out_of_range);
  EXPECT_THROW(nb.cell(0), std::out_of_range);
}

TEST(Notebook, StatusNames) {
  EXPECT_STREQ(to_string(CellStatus::NotRun), "not-run");
  EXPECT_STREQ(to_string(CellStatus::Ok), "ok");
  EXPECT_STREQ(to_string(CellStatus::Error), "error");
}

}  // namespace
}  // namespace autolearn::workflow
