#include "workflow/notebook.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "ckpt/checkpoint.hpp"
#include "objectstore/objectstore.hpp"

namespace autolearn::workflow {
namespace {

TEST(Notebook, AddAndRunSingleCell) {
  Notebook nb("quickstart");
  const auto i = nb.add_cell("hello", [] { return "hi"; });
  EXPECT_EQ(i, 0u);
  EXPECT_EQ(nb.cell(0).status, CellStatus::NotRun);
  EXPECT_TRUE(nb.run_cell(0));
  EXPECT_EQ(nb.cell(0).status, CellStatus::Ok);
  EXPECT_EQ(nb.cell(0).output, "hi");
}

TEST(Notebook, RunAllStopsAtFirstError) {
  Notebook nb("pipeline");
  int third_ran = 0;
  nb.add_cell("ok", [] { return "1"; });
  nb.add_cell("boom", []() -> std::string {
    throw std::runtime_error("lease unavailable");
  });
  nb.add_cell("after", [&]() -> std::string {
    ++third_ran;
    return "3";
  });
  const std::size_t ok = nb.run_all();
  EXPECT_EQ(ok, 1u);
  EXPECT_EQ(third_ran, 0);
  EXPECT_EQ(nb.cell(1).status, CellStatus::Error);
  EXPECT_NE(nb.cell(1).output.find("lease unavailable"), std::string::npos);
  EXPECT_EQ(nb.cell(2).status, CellStatus::NotRun);
  EXPECT_FALSE(nb.all_ok());
}

TEST(Notebook, RerunAfterFixSucceeds) {
  Notebook nb("retry");
  bool broken = true;
  nb.add_cell("flaky", [&]() -> std::string {
    if (broken) throw std::runtime_error("transient");
    return "fixed";
  });
  EXPECT_EQ(nb.run_all(), 0u);
  broken = false;
  EXPECT_EQ(nb.run_all(), 1u);
  EXPECT_TRUE(nb.all_ok());
}

TEST(Notebook, ClearStateResets) {
  Notebook nb("reset");
  nb.add_cell("a", [] { return "x"; });
  nb.run_all();
  nb.clear_state();
  EXPECT_EQ(nb.cell(0).status, CellStatus::NotRun);
  EXPECT_TRUE(nb.cell(0).output.empty());
}

TEST(Notebook, SuccessCallbackFires) {
  Notebook nb("metrics");
  int successes = 0;
  nb.set_on_cell_success([&](const Cell&) { ++successes; });
  nb.add_cell("a", [] { return ""; });
  nb.add_cell("b", [] { return ""; });
  nb.run_all();
  EXPECT_EQ(successes, 2);
}

TEST(Notebook, Validation) {
  Notebook nb("v");
  EXPECT_THROW(nb.add_cell("bad", nullptr), std::invalid_argument);
  EXPECT_THROW(nb.run_cell(0), std::out_of_range);
  EXPECT_THROW(nb.cell(0), std::out_of_range);
}

TEST(Notebook, StatusNames) {
  EXPECT_STREQ(to_string(CellStatus::NotRun), "not-run");
  EXPECT_STREQ(to_string(CellStatus::Ok), "ok");
  EXPECT_STREQ(to_string(CellStatus::Error), "error");
}

// --- durable cell checkpoints ----------------------------------------------

TEST(Notebook, RerunSkipsCheckpointedCellsAndReplaysOutputs) {
  objectstore::ObjectStore os;
  ckpt::CheckpointStore store(os);
  {
    Notebook nb("etl");
    nb.enable_checkpoints(store, "nb.etl");
    nb.add_cell("collect", [] { return "42 tubs"; });
    nb.add_cell("train", [] { return "loss 0.01"; });
    EXPECT_EQ(nb.run_all(), 2u);
    EXPECT_EQ(nb.cells_skipped(), 0u);
  }  // the process dies; only the checkpoint store survives

  Notebook nb("etl");
  nb.enable_checkpoints(store, "nb.etl");
  int successes = 0;
  nb.set_on_cell_success([&](const Cell&) { ++successes; });
  int reran = 0;
  nb.add_cell("collect", [&]() -> std::string {
    ++reran;
    return "would-recollect";
  });
  nb.add_cell("train", [&]() -> std::string {
    ++reran;
    return "would-retrain";
  });
  EXPECT_EQ(nb.run_all(), 2u);
  EXPECT_EQ(nb.cells_skipped(), 2u);
  EXPECT_EQ(reran, 0);
  EXPECT_EQ(successes, 0);  // replays are not fresh successes
  // Outputs come back from the checkpoint, not from re-execution.
  EXPECT_EQ(nb.cell(0).output, "42 tubs");
  EXPECT_EQ(nb.cell(1).output, "loss 0.01");
  EXPECT_TRUE(nb.all_ok());
}

TEST(Notebook, ResumesAfterAMidRunFailure) {
  objectstore::ObjectStore os;
  ckpt::CheckpointStore store(os);
  bool lease_dead = true;
  int collected = 0, trained = 0, deployed = 0;
  const auto build = [&](Notebook& nb) {
    nb.enable_checkpoints(store, "nb.pipe");
    nb.add_cell("collect", [&] {
      ++collected;
      return "ok";
    });
    nb.add_cell("train", [&]() -> std::string {
      if (lease_dead) throw std::runtime_error("lease expired");
      ++trained;
      return "fit done";
    });
    nb.add_cell("deploy", [&] {
      ++deployed;
      return "published";
    });
  };

  {
    Notebook nb("pipe");
    build(nb);
    EXPECT_EQ(nb.run_all(), 1u);  // collect lands, train dies
  }

  lease_dead = false;
  Notebook nb("pipe");
  build(nb);
  EXPECT_EQ(nb.run_all(), 3u);
  EXPECT_EQ(nb.cells_skipped(), 1u);  // collect was not re-executed
  EXPECT_EQ(collected, 1);
  EXPECT_EQ(trained, 1);
  EXPECT_EQ(deployed, 1);
  EXPECT_TRUE(nb.all_ok());
}

TEST(Notebook, MismatchedCellLabelsAreNotTrusted) {
  objectstore::ObjectStore os;
  ckpt::CheckpointStore store(os);
  {
    Notebook nb("pipe");
    nb.enable_checkpoints(store, "nb.pipe");
    nb.add_cell("collect", [] { return "old"; });
    nb.add_cell("train", [] { return "old"; });
    EXPECT_EQ(nb.run_all(), 2u);
  }

  // The notebook was edited: the first cell changed identity, so the
  // whole recorded prefix is stale and must re-execute.
  Notebook nb("pipe");
  nb.enable_checkpoints(store, "nb.pipe");
  int reran = 0;
  nb.add_cell("collect-v2", [&] {
    ++reran;
    return "new";
  });
  nb.add_cell("train", [&] {
    ++reran;
    return "new";
  });
  EXPECT_EQ(nb.run_all(), 2u);
  EXPECT_EQ(nb.cells_skipped(), 0u);
  EXPECT_EQ(reran, 2);
  EXPECT_EQ(nb.cell(1).output, "new");
}

TEST(Notebook, CheckpointValidation) {
  objectstore::ObjectStore os;
  ckpt::CheckpointStore store(os);
  Notebook nb("v");
  EXPECT_THROW(nb.enable_checkpoints(store, ""), std::invalid_argument);
}

}  // namespace
}  // namespace autolearn::workflow
